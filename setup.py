"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in environments whose setuptools/pip combination
cannot build editable installs through PEP 517 alone (e.g. offline machines
without the ``wheel`` package, where ``pip install -e . --no-build-isolation``
falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
