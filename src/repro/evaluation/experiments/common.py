"""Shared configuration and helpers for the experiment drivers.

The paper's setup (Section 6.1): relative error averaged over 10 independent
runs, privacy budgets ε ∈ {0.1, 0.2, 0.5, 0.8, 1}, SSB data at scale factors
0.25–1, and the Customer / Supplier / Part dimension tables as the realistic
private relations (the paper notes "sensitive information is mostly contained
in the dimension tables ... e.g. Customer").

:class:`ExperimentConfig` bundles those knobs; the defaults favour quick
laptop runs (smaller fact tables, 5 trials) and every driver accepts a custom
configuration (``ExperimentConfig.paper_scale()``) for higher-fidelity runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional
from zlib import crc32

import numpy as np

from repro.datagen.ssb import SSBConfig, SSBGenerator
from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.dp.neighboring import PrivacyScenario

__all__ = [
    "ExperimentConfig",
    "DEFAULT_PRIVATE_DIMENSIONS",
    "build_ssb_database",
    "cell_seed",
    "cell_stream",
    "engine_for",
    "clear_database_cache",
]


def cell_seed(*parts, modulus: int = 10_000) -> int:
    """A deterministic per-*dataset* seed offset derived from labels.

    CRC32 over the stringified labels is stable across processes and
    platforms.  This remains the scheme for data-generation seed offsets
    (which identify an *instance*); the noise streams of experiment cells use
    :func:`cell_stream` instead — the additive ``seed + crc32 % modulus``
    scheme folds the label space onto ``modulus`` values, so two cells can
    collide and share their noise.
    """
    text = "|".join(str(part) for part in parts)
    return crc32(text.encode("utf-8")) % modulus


def cell_stream(master_seed: int, *parts) -> np.random.SeedSequence:
    """The per-cell random stream for the experiment cell labelled ``parts``.

    The full cell label (experiment name, mechanism, query, ε, …) is hashed
    with SHA-256 into a :class:`numpy.random.SeedSequence` spawn key, giving
    every cell a collision-free stream (128 bits of key) that is a pure
    function of ``(master_seed, label)`` — independent of evaluation order
    and of which process runs the cell.  Per-trial generators are then split
    off with ``SeedSequence.spawn`` (see :func:`repro.rng.spawn`), which is
    what makes the parallel trial runner produce results identical to the
    serial loop.
    """
    label = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    spawn_key = tuple(
        int.from_bytes(digest[index : index + 4], "little") for index in range(0, 16, 4)
    )
    return np.random.SeedSequence(entropy=int(master_seed), spawn_key=spawn_key)

#: The dimension tables treated as private in the evaluation: the entity
#: tables.  Date carries no personal information and is treated as public.
DEFAULT_PRIVATE_DIMENSIONS: tuple[str, ...] = ("Customer", "Supplier", "Part")

#: The privacy budgets of Table 1 / Figure 9 / Figure 11.
PAPER_EPSILONS: tuple[float, ...] = (0.1, 0.2, 0.5, 0.8, 1.0)

#: The scale factors of Figures 4 and 5.
PAPER_SCALES: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)


@dataclass
class ExperimentConfig:
    """Common experiment knobs.

    Parameters
    ----------
    epsilons:
        Privacy budgets to sweep.
    trials:
        Independent runs per (mechanism, query, ε) cell; the paper uses 10.
    scale_factor:
        SSB scale factor for single-scale experiments.
    rows_per_scale_factor:
        Fact rows per unit of scale factor (see
        :class:`repro.datagen.ssb.SSBConfig`).
    seed:
        Master seed; every cell derives its own stream from it.
    private_dimensions:
        The dimension tables considered private (drives R2T / LS / TM
        calibration).
    jobs:
        Worker processes for the trial scheduler; 1 (the default) evaluates
        every cell serially in-process.  Results are identical for any value
        (see :mod:`repro.evaluation.parallel`).
    cache_backend:
        Cache backend of the run's execution engines: ``"local"``
        (in-process, the default), ``"shared"`` (pool workers share
        selection masks, cubes and exact answers through a
        ``multiprocessing.Manager`` tier) or ``"remote"`` (an
        out-of-process persistent cache server shared with other runs and
        serving processes — see :mod:`repro.db.cache`).  Results are
        identical for every value.
    cache_size:
        Maximum entries per bounded cache region (masks, contributions,
        results); statistics regions are unbounded.
    cache_policy:
        Eviction policy of every bounded cache tier: ``"cost"`` (the
        default) keeps the entries that are expensive to recompute per
        byte; ``"lru"`` is classical recency.  Results are byte-identical
        under either policy — eviction only changes what gets recomputed.
    cache_max_bytes:
        Optional byte budget per bounded in-process cache region alongside
        the entry bound (cross-process tiers are bounded at 16 × this,
        mirroring the entry convention).  ``None`` (the default) bounds by
        entry count only.
    warm_ahead:
        Replay observed exact-answer misses through the engine after each
        experiment, pre-populating put-through cache tiers (shared /
        remote) for the experiments that follow.  Off by default; results
        are byte-identical either way.
    cache_url:
        ``host:port`` of a running cache server
        (``python -m repro.db.cache.server``); only meaningful with
        ``cache_backend="remote"``.  A comma-separated list shards the
        keyspace across those servers on a consistent-hash ring (results
        are byte-identical either way; see ``docs/CACHE.md``).
    cache_replicas:
        With a sharded ``cache_url`` list: how many distinct shards hold
        each entry.  Reads fail over to a replica when the primary shard's
        circuit breaker is open, before degrading to local-only.
    cache_path:
        Alternative to ``cache_url``: a sqlite file an *embedded* cache
        server (started and stopped with the run) persists entries to, so a
        later run — batch or serving — starts warm.
    ledger_path:
        Sqlite journal the serving budget ledger persists charges to
        (``--serve`` runs only): spent ε survives server restarts and
        crashes (see :mod:`repro.serving.durable`).  Batch experiments
        ignore it — their privacy accounting is per-run by design.
    storage:
        Where generated instances live: ``"memory"`` (eager arrays, the
        default) or ``"mapped"`` (each instance is spilled once to the
        mapped on-disk layout under ``data_dir`` and attached read-only, so
        the engine streams the fact table chunk-wise and fork workers share
        one copy through the page cache — see ``docs/STORAGE.md``).  Results
        are byte-identical for either value.
    data_dir:
        Directory the mapped instances are spilled to / attached from.
        Required when ``storage="mapped"``.
    trace_path:
        Record request traces (one JSON line per span) to this file for the
        whole run — experiments, scheduler cells, engine kernels and cache
        round-trips land in one connected trace per experiment.  ``None``
        (the default) disables tracing; answers are byte-identical either
        way (see ``docs/OBSERVABILITY.md``).
    metrics_path:
        Append one unified telemetry snapshot (JSON line) per experiment to
        this file — the batch-run counterpart of the serving ``telemetry``
        op.  With ``jobs > 1`` the session installs a fork-shared registry,
        so worker increments aggregate into the dumped snapshots.
    """

    epsilons: tuple[float, ...] = PAPER_EPSILONS
    trials: int = 5
    scale_factor: float = 1.0
    rows_per_scale_factor: int = 240_000
    seed: int = 20230711
    private_dimensions: tuple[str, ...] = DEFAULT_PRIVATE_DIMENSIONS
    jobs: int = 1
    cache_backend: str = "local"
    cache_size: int = 192
    cache_policy: str = "cost"
    cache_max_bytes: Optional[int] = None
    warm_ahead: bool = False
    cache_url: Optional[str] = None
    cache_replicas: int = 1
    cache_path: Optional[str] = None
    ledger_path: Optional[str] = None
    storage: str = "memory"
    data_dir: Optional[str] = None
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A minutes-scale configuration for CI and pytest-benchmark runs."""
        return cls(epsilons=(0.1, 0.5, 1.0), trials=3, rows_per_scale_factor=60_000)

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """A higher-fidelity configuration (larger fact table, 10 trials)."""
        return cls(trials=10, rows_per_scale_factor=1_200_000)

    @property
    def scenario(self) -> PrivacyScenario:
        return PrivacyScenario.dimensions(*self.private_dimensions)

    def ssb_config(
        self,
        scale_factor: Optional[float] = None,
        key_distribution: str = "uniform",
        measure_distribution: str = "uniform",
        seed_offset: int = 0,
    ) -> SSBConfig:
        return SSBConfig(
            scale_factor=scale_factor if scale_factor is not None else self.scale_factor,
            rows_per_scale_factor=self.rows_per_scale_factor,
            key_distribution=key_distribution,
            measure_distribution=measure_distribution,
            seed=self.seed + seed_offset,
        )


#: Generated instances cached by their full generator configuration, so the
#: experiment drivers (which rebuild the same instances figure after figure)
#: share one database — and therefore one ExecutionEngine — per configuration.
_DATABASE_CACHE: dict[tuple, StarDatabase] = {}
_DATABASE_CACHE_MAX = 6


def clear_database_cache() -> None:
    """Drop the generated-instance cache (frees memory between suites)."""
    _DATABASE_CACHE.clear()


def _mapped_instance(ssb_config: SSBConfig, key: tuple, data_dir: str) -> StarDatabase:
    """Attach (spilling first if absent) the mapped copy of one instance.

    The instance directory name is a pure function of the generator knobs, so
    every process — the driver, each fork worker resolving the same builder,
    a later run with the same configuration — lands on the same files.  The
    spill itself is idempotent and race-safe (see
    :func:`repro.db.storage.spill_database`), so concurrent workers resolve
    to one copy and share it through the page cache.
    """
    from repro.db.storage import MANIFEST_NAME, attach_database

    scale, rows, key_dist, measure_dist, seed = key
    instance_dir = Path(data_dir) / (
        f"ssb-sf{scale}-rows{rows}-{key_dist}-{measure_dist}-seed{seed}"
    )
    manifest = instance_dir / MANIFEST_NAME
    if not manifest.is_file():
        SSBGenerator(ssb_config).spill_to(instance_dir)
    return attach_database(instance_dir)


def build_ssb_database(
    config: ExperimentConfig,
    scale_factor: Optional[float] = None,
    key_distribution: str = "uniform",
    measure_distribution: str = "uniform",
    seed_offset: int = 0,
) -> StarDatabase:
    """Generate (or reuse) the SSB instance an experiment runs on.

    Generation is deterministic in the configuration, so instances are cached
    by their knobs; distribution objects (rather than names) bypass the cache.
    With ``config.storage == "mapped"`` the instance is spilled once under
    ``config.data_dir`` and attached read-only instead of being held as eager
    arrays — answers are byte-identical either way (sampler *objects* cannot
    be named deterministically on disk, so they always build in memory).
    """
    ssb_config = config.ssb_config(
        scale_factor=scale_factor,
        key_distribution=key_distribution,
        measure_distribution=measure_distribution,
        seed_offset=seed_offset,
    )
    cacheable = isinstance(key_distribution, str) and isinstance(measure_distribution, str)
    if not cacheable:
        return SSBGenerator(ssb_config).build()
    mapped = config.storage == "mapped"
    if mapped and not config.data_dir:
        raise ValueError('storage="mapped" requires data_dir')
    key = (
        ssb_config.scale_factor,
        ssb_config.rows_per_scale_factor,
        key_distribution,
        measure_distribution,
        ssb_config.seed,
    )
    cache_key = key + ((config.storage, config.data_dir) if mapped else ())
    database = _DATABASE_CACHE.get(cache_key)
    if database is None:
        if mapped:
            database = _mapped_instance(ssb_config, key, config.data_dir)
        else:
            database = SSBGenerator(ssb_config).build()
        while len(_DATABASE_CACHE) >= _DATABASE_CACHE_MAX:
            _DATABASE_CACHE.pop(next(iter(_DATABASE_CACHE)))
        _DATABASE_CACHE[cache_key] = database
    return database


def engine_for(database: StarDatabase) -> ExecutionEngine:
    """The shared execution engine of ``database`` (one per instance)."""
    return ExecutionEngine.for_database(database)
