"""Quickstart: answer a star-join query under differential privacy.

The script generates a synthetic Star Schema Benchmark instance, opens a
DP-starJ session with a total privacy budget, and answers the paper's Qc3
query (ASIA customers and suppliers, years 1992-1997) three ways:

* exactly (no privacy — for reference only),
* with the Predicate Mechanism through the session API,
* from raw SQL text, to show the parser.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import DPStarJoin, generate_ssb, ssb_query
from repro.evaluation.metrics import relative_error


def main() -> None:
    print("Generating a synthetic SSB instance (scale factor 0.5)...")
    database = generate_ssb(scale_factor=0.5, seed=2023, rows_per_scale_factor=120_000)
    print(f"  fact table: {database.num_fact_rows} rows")
    for name, table in database.dimensions.items():
        print(f"  {name}: {table.num_rows} rows")

    session = DPStarJoin(database, total_epsilon=2.0, rng=7)
    query = ssb_query("Qc3")
    print(f"\nQuery Qc3: {query.describe()}")

    exact = session.exact(query)
    print(f"exact answer (not released): {exact:.0f}")

    answer = session.answer(query, epsilon=0.5)
    print(f"DP answer at epsilon=0.5:    {answer.value:.0f}")
    print(f"relative error:              {relative_error(exact, answer.value):.2f}%")
    print("noisy predicates actually evaluated:")
    for original, noisy in zip(query.predicates, answer.noisy_query.predicates):
        print(f"  {original.describe():45s} ->  {noisy.describe()}")

    sql = """
        SELECT count(*) FROM Date, Lineorder, Customer, Supplier
        WHERE Lineorder.CK = Customer.CK
          AND Lineorder.SK = Supplier.SK
          AND Lineorder.DK = Date.DK
          AND Customer.region = 'ASIA'
          AND Supplier.region = 'ASIA'
          AND Date.year BETWEEN 1992 AND 1997
    """
    sql_answer = session.answer_sql(sql, epsilon=0.5, name="Qc3-from-sql")
    print(f"\nsame query from SQL text:    {sql_answer.value:.0f}")
    print(f"remaining session budget:    epsilon = {session.remaining_epsilon:.2f}")


if __name__ == "__main__":
    main()
