"""Seeded random-number plumbing shared by every randomized component.

Every mechanism, generator and experiment in the library accepts either an
integer seed, a :class:`numpy.random.Generator`, or ``None``.  This module
provides the single helper that normalises those three options, so results
are reproducible whenever a seed is supplied and independent across
components when it is not.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed, or
        an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int or numpy Generator, got {type(rng)!r}")


def spawn(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by experiment runners so that each trial has an independent but
    reproducible stream.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: RngLike) -> Optional[int]:
    """Return an integer seed derived from ``rng`` (or ``None`` if unseeded)."""
    if rng is None:
        return None
    base = ensure_rng(rng)
    return int(base.integers(0, 2**63 - 1))
