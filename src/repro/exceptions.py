"""Exception hierarchy for the DP-starJ reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses are used where a caller
may plausibly want to react differently (e.g. an unsupported query type versus
an exhausted privacy budget).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A table or star schema is malformed or referenced inconsistently."""


class DomainError(ReproError):
    """A value or code is outside its attribute domain."""


class QueryError(ReproError):
    """A query is malformed or references unknown tables/attributes."""


class UnsupportedQueryError(QueryError):
    """A mechanism cannot answer the given query type.

    The paper's Table 1 marks several (mechanism, query-type) combinations as
    "Not supported" (e.g. LS on SUM queries, R2T on GROUP BY).  Mechanisms
    raise this exception in those cases and the evaluation harness reports
    the combination as unsupported rather than crashing.
    """


class PrivacyBudgetError(ReproError):
    """A privacy budget is invalid (non-positive) or has been exhausted."""


class SensitivityError(ReproError):
    """A sensitivity bound could not be computed or is invalid."""


class DataGenerationError(ReproError):
    """A synthetic data generator received inconsistent parameters."""
