"""The in-process cache backend (the default).

Storage layout: namespaces (one per database content fingerprint) hold one
store per region — a bounded :class:`UtilityCache` for the regions in
:data:`~repro.db.cache.backend.BOUNDED_REGIONS` (cost-normalized utility
eviction by default, ``policy="lru"`` for the pre-cost behaviour), a plain
dict for the small unbounded statistics regions.  This reproduces the cache
structure the execution engine owned before the backend layer was extracted,
with hit / miss / eviction counters added.  :class:`LruCache` is the original
recency-only store, kept as the reference implementation the LRU policy is
measured against.

Namespaces themselves are also a bounded LRU (``max_namespaces``).  The
pre-refactor engine freed its caches when its database was garbage-collected
(the engine registry is weak-keyed); a process-global backend cannot rely on
that, so instead the least-recently-touched namespace is dropped whole when
a database sweep (figure7 alone builds 12 instances) would otherwise pin
every instance's artefacts for the life of the process.  Dropping a live
namespace is always safe — the engine recomputes on the next miss.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Union

from repro.db.cache.backend import (
    BOUNDED_REGIONS,
    DEFAULT_EVICTION_POLICY,
    EVICTION_POLICIES,
    CacheStats,
    telemetry_from_stats,
    value_nbytes,
)

__all__ = ["LocalCacheBackend", "LruCache", "UtilityCache"]


class LruCache:
    """A tiny insertion-ordered LRU built on dict ordering."""

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._data: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any:
        try:
            value = self._data.pop(key)
        except KeyError:
            return None
        self._data[key] = value  # move to the fresh end
        return value

    def put(self, key: Hashable, value: Any) -> int:
        """Insert ``value``; return the number of entries evicted."""
        self._data.pop(key, None)
        self._data[key] = value
        evicted = 0
        while len(self._data) > self.max_entries:
            self._data.pop(next(iter(self._data)))
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class UtilityCache:
    """Bounded store with cost-normalized utility eviction.

    The policy is GreedyDual-Size-Frequency: each entry carries a priority
    ``H = L + frequency × cost / bytes`` where ``L`` is an inflating logical
    clock — on every eviction ``L`` rises to the evicted entry's priority, so
    long-untouched entries decay relative to fresh ones without any
    wall-clock time entering the decision.  Entries stored without a cost
    compete with a neutral utility term of ``1.0`` (pure frequency-aged
    FIFO), which keeps cost-less callers' eviction order deterministic and
    byte-size-independent.  Ties break on insertion sequence (oldest first),
    so eviction order is a pure function of the operation history.

    ``policy="lru"`` keeps the same mechanism but sets the priority to a
    monotonic access counter — exactly least-recently-used — so both
    policies share one code path and one byte budget.

    Bounds: ``max_entries`` caps the entry count, ``max_bytes`` (optional)
    caps the summed value sizes.  A value larger than the whole byte budget
    is not admitted at all — caching it would evict everything else for a
    single entry that cannot pay rent.
    """

    def __init__(
        self,
        max_entries: int,
        max_bytes: Optional[int] = None,
        policy: str = DEFAULT_EVICTION_POLICY,
    ):
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r} (use one of {EVICTION_POLICIES})")
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.policy = policy
        self._data: dict[Hashable, Any] = {}
        #: key -> [priority, seq, nbytes, freq, term]
        self._meta: dict[Hashable, list] = {}
        self._clock = 0.0  # the inflating GDSF clock L
        self._seq = 0  # insertion/access sequence: tie-break + LRU counter
        self._bytes = 0

    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _priority(self, freq: int, term: float) -> float:
        if self.policy == "lru":
            return float(self._seq)  # most recent access wins, nothing else
        return self._clock + freq * term

    def get(self, key: Hashable) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            return None
        meta = self._meta[key]
        meta[3] += 1  # frequency
        meta[1] = self._next_seq()
        meta[0] = self._priority(meta[3], meta[4])
        return value

    def put(self, key: Hashable, value: Any, cost: Optional[float] = None) -> int:
        """Insert ``value``; return the number of entries evicted."""
        self._discard(key)
        nbytes = value_nbytes(value)
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return 0  # cannot pay rent: not admitted
        term = 1.0 if cost is None else max(float(cost), 0.0) / max(nbytes, 1)
        self._seq += 1
        seq = self._seq
        self._data[key] = value
        self._meta[key] = [self._priority(1, term), seq, nbytes, 1, term]
        self._bytes += nbytes
        evicted = 0
        while len(self._data) > self.max_entries or (
            self.max_bytes is not None and self._bytes > self.max_bytes and len(self._data) > 1
        ):
            victim, (priority, _, _, _, _) = min(
                self._meta.items(), key=lambda item: (item[1][0], item[1][1])
            )
            self._discard(victim)
            if self.policy != "lru":
                self._clock = max(self._clock, priority)
            evicted += 1
        return evicted

    def _discard(self, key: Hashable) -> None:
        if self._data.pop(key, None) is not None:
            self._bytes -= self._meta.pop(key)[2]

    def clear(self) -> None:
        self._data.clear()
        self._meta.clear()
        self._bytes = 0
        self._clock = 0.0

    @property
    def nbytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._data)


class LocalCacheBackend:
    """In-process cache storage with namespaced regions and counters."""

    name = "local"

    def __init__(
        self,
        max_entries: int = 192,
        max_namespaces: int = 8,
        policy: str = DEFAULT_EVICTION_POLICY,
        max_bytes: Optional[int] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_namespaces < 1:
            raise ValueError("max_namespaces must be at least 1")
        if policy not in EVICTION_POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r} (use one of {EVICTION_POLICIES})")
        self.max_entries = int(max_entries)
        self.max_namespaces = int(max_namespaces)
        self.policy = policy
        #: Optional byte budget of each bounded (namespace, region) store,
        #: mirroring how ``max_entries`` bounds each store individually.
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        #: namespace -> region -> store, insertion-ordered by recency of use.
        self._namespaces: dict[str, dict[str, Union[UtilityCache, dict]]] = {}
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    def _regions(self, namespace: str) -> dict[str, Union[UtilityCache, dict]]:
        """The namespace's region map, freshened in the namespace LRU."""
        regions = self._namespaces.pop(namespace, None)
        if regions is None:
            regions = {}
            while len(self._namespaces) >= self.max_namespaces:
                stale = self._namespaces.pop(next(iter(self._namespaces)))
                self._stats.evictions += sum(len(store) for store in stale.values())
        self._namespaces[namespace] = regions
        return regions

    def _store(self, namespace: str, region: str) -> Union[UtilityCache, dict]:
        regions = self._regions(namespace)
        store = regions.get(region)
        if store is None:
            if region in BOUNDED_REGIONS:
                store = UtilityCache(self.max_entries, self.max_bytes, self.policy)
            else:
                store = {}
            regions[region] = store
        return store

    # ------------------------------------------------------------------
    def get(self, namespace: str, region: str, key: Hashable) -> Any:
        # Lookups never create (or evict) namespaces; only ``put`` does.
        value = None
        regions = self._namespaces.get(namespace)
        if regions is not None:
            self._namespaces.pop(namespace)  # freshen in the namespace LRU
            self._namespaces[namespace] = regions
            store = regions.get(region)
            if store is not None:
                value = store.get(key)
        if value is None:
            self._stats.misses += 1
        else:
            self._stats.hits += 1
        return value

    def put(
        self,
        namespace: str,
        region: str,
        key: Hashable,
        value: Any,
        cost: Optional[float] = None,
    ) -> None:
        self._put(namespace, region, key, value, cost)
        self._stats.puts += 1

    def _put(
        self,
        namespace: str,
        region: str,
        key: Hashable,
        value: Any,
        cost: Optional[float] = None,
    ) -> None:
        """Insert without counting a put (used for cross-tier promotions)."""
        store = self._store(namespace, region)
        if isinstance(store, UtilityCache):
            self._stats.evictions += store.put(key, value, cost)
        else:
            store[key] = value

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop one namespace, or — with no argument — everything.

        A full clear is a fresh start and also zeroes the statistics
        counters; a namespace clear leaves them accumulating.  This is the
        cross-backend contract pinned by the conformance suite (the backends
        used to disagree on it).
        """
        if namespace is None:
            self._namespaces.clear()
            self.reset_stats()
        else:
            self._namespaces.pop(namespace, None)

    def release(self, namespace: str) -> None:
        """Everything here is in-process storage, so releasing == clearing."""
        self.clear(namespace)

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        return CacheStats(**self._stats.as_dict())

    def reset_stats(self) -> None:
        self._stats = CacheStats()

    def entry_count(self, namespace: Optional[str] = None) -> int:
        return sum(
            len(store)
            for ns, regions in self._namespaces.items()
            if namespace is None or ns == namespace
            for store in regions.values()
        )

    def byte_count(self, namespace: Optional[str] = None) -> int:
        """Summed size estimate of the bounded stores' values."""
        return sum(
            store.nbytes
            for ns, regions in self._namespaces.items()
            if namespace is None or ns == namespace
            for store in regions.values()
            if isinstance(store, UtilityCache)
        )

    def telemetry_snapshot(self) -> dict:
        """This backend's counters in the unified telemetry schema
        (``stats()`` remains the legacy-shaped compatibility surface)."""
        return telemetry_from_stats(
            self.stats(),
            self.name,
            gauges={
                "entries": self.entry_count(),
                "bytes": self.byte_count(),
            },
            subsystem_extra={
                "policy": self.policy,
                "max_entries": self.max_entries,
                "degraded": False,
            },
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalCacheBackend(max_entries={self.max_entries}, "
            f"namespaces={len(self._namespaces)}/{self.max_namespaces}, "
            f"entries={self.entry_count()}, {self._stats.summary()})"
        )
