"""Tests for the sensitivity notions (global, local, smooth, k-star)."""

import math

import numpy as np
import pytest

from repro.db.query import StarJoinQuery
from repro.db.predicates import PointPredicate
from repro.dp.sensitivity import (
    binomial,
    count_query_global_sensitivity,
    kstar_local_sensitivity,
    kstar_local_sensitivity_at_distance,
    local_sensitivity_at_distance,
    local_sensitivity_star_count,
    smooth_sensitivity_from_local,
    smooth_sensitivity_kstar,
    smooth_sensitivity_truncated_kstar,
    sum_query_global_sensitivity,
)
from repro.exceptions import SensitivityError


class TestGlobalSensitivity:
    def test_fact_only_count_is_one(self):
        bound = count_query_global_sensitivity(True, ())
        assert bound.value == 1.0
        assert bound.is_bounded

    def test_private_dimension_is_unbounded(self):
        bound = count_query_global_sensitivity(False, ("Customer",))
        assert not bound.is_bounded

    def test_no_private_table_rejected(self):
        with pytest.raises(SensitivityError):
            count_query_global_sensitivity(False, ())

    def test_sum_bound_uses_measure_bound(self):
        bound = sum_query_global_sensitivity(True, (), measure_bound=100.0)
        assert bound.value == 100.0

    def test_sum_negative_measure_bound_rejected(self):
        with pytest.raises(SensitivityError):
            sum_query_global_sensitivity(True, (), measure_bound=-1.0)


class TestLocalSensitivityStarCount:
    def test_count_local_sensitivity_is_max_fanout(self, tiny_db):
        query = StarJoinQuery.count("all")
        assert local_sensitivity_star_count(tiny_db, query, "Color") == 2.0
        assert local_sensitivity_star_count(tiny_db, query, "Size") == 3.0

    def test_other_predicates_restrict_fanout(self, tiny_db):
        size_domain = tiny_db.dimension("Size").domain("size")
        query = StarJoinQuery.count(
            "sized", [PointPredicate("Size", "size", size_domain, value=1)]
        )
        # Only 3 fact rows have size 1; they reference 3 distinct colour keys.
        assert local_sensitivity_star_count(tiny_db, query, "Color") == 1.0

    def test_own_predicate_is_ignored(self, tiny_db):
        color_domain = tiny_db.dimension("Color").domain("color")
        query = StarJoinQuery.count(
            "red", [PointPredicate("Color", "color", color_domain, value="red")]
        )
        # The colour predicate must not reduce the colour table's own bound.
        assert local_sensitivity_star_count(tiny_db, query, "Color") == 2.0

    def test_sum_local_sensitivity_uses_measure(self, tiny_db):
        query = StarJoinQuery.sum("s", "amount")
        # Size key 3 collects amounts 4 + 8 + 12 = 24 (the maximum).
        assert local_sensitivity_star_count(tiny_db, query, "Size") == 24.0


class TestSmoothSensitivity:
    def test_local_at_distance_grows_linearly(self):
        assert local_sensitivity_at_distance(5.0, 3) == 8.0
        assert local_sensitivity_at_distance(5.0, 0) == 5.0
        with pytest.raises(SensitivityError):
            local_sensitivity_at_distance(5.0, -1)

    def test_smooth_bound_at_least_local(self):
        smooth = smooth_sensitivity_from_local(lambda t: 5.0 + t, beta=0.5)
        assert smooth >= 5.0

    def test_smooth_bound_decreasing_in_beta(self):
        loose = smooth_sensitivity_from_local(lambda t: 5.0 + t, beta=0.1)
        tight = smooth_sensitivity_from_local(lambda t: 5.0 + t, beta=1.0)
        assert tight <= loose

    def test_invalid_beta_rejected(self):
        with pytest.raises(SensitivityError):
            smooth_sensitivity_from_local(lambda t: 1.0, beta=0.0)

    def test_constant_local_gives_constant_smooth(self):
        assert smooth_sensitivity_from_local(lambda t: 7.0, beta=0.3) == pytest.approx(7.0)


class TestKStarSensitivity:
    def test_binomial_extension(self):
        assert binomial(5, 2) == 10.0
        assert binomial(1, 2) == 0.0
        assert binomial(4, 0) == 1.0

    def test_local_sensitivity_formula(self):
        degrees = np.array([1, 3, 5])
        assert kstar_local_sensitivity(degrees, 2) == 2 * math.comb(5, 1)
        assert kstar_local_sensitivity(degrees, 3) == 2 * math.comb(5, 2)

    def test_local_sensitivity_at_distance_monotone(self):
        degrees = np.array([2, 4])
        values = [kstar_local_sensitivity_at_distance(degrees, 2, t) for t in range(5)]
        assert values == sorted(values)

    def test_invalid_k_rejected(self):
        with pytest.raises(SensitivityError):
            kstar_local_sensitivity(np.array([1, 2]), 0)

    def test_smooth_kstar_bounded_by_local_at_zero_distance(self):
        degrees = np.array([3, 3, 6, 10])
        smooth = smooth_sensitivity_kstar(degrees, 2, beta=0.5)
        assert smooth >= kstar_local_sensitivity(degrees, 2)

    def test_truncated_smooth_sensitivity(self):
        value = smooth_sensitivity_truncated_kstar(threshold=4, k=2, beta=0.2)
        assert value == pytest.approx(math.comb(4, 2) + 4 * math.comb(3, 1))

    def test_truncated_invalid_arguments(self):
        with pytest.raises(SensitivityError):
            smooth_sensitivity_truncated_kstar(-1, 2, 0.5)
        with pytest.raises(SensitivityError):
            smooth_sensitivity_truncated_kstar(3, 2, 0.0)
