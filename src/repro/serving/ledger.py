"""Per-analyst privacy-budget ledger with admission control.

The offline harness uses :class:`~repro.dp.accountant.PrivacyAccountant` to
*verify* that a mechanism's internal budget split adds up; the serving layer
uses it to *gate* work: every analyst session gets an accountant with the
server's per-analyst total, and a query request must be admitted — charged
against that accountant — before any engine work runs.

Composition rules (the classical ones the accountant implements):

* **Sequential** — scalar queries compose by addition across an analyst's
  session: k admitted queries at ε_1..ε_k cost Σ ε_i.
* **Parallel** — a GROUP BY query runs its mechanism on *disjoint partitions*
  of the private entities (each entity contributes to exactly one group), so
  the whole grouped answer costs max over the partitions = ε, not ε × groups.
  The ledger records those admissions through
  :meth:`~repro.dp.accountant.PrivacyAccountant.charge_parallel` so the audit
  trail distinguishes them.

Once an analyst's ε (or δ) is exhausted the ledger **refuses** with a
structured :class:`~repro.serving.protocol.ServingError` (code
``budget_exhausted``) carrying the spent/remaining totals — the server turns
it into a JSON error object, never an exception trace.  Charges whose
execution fails without releasing an answer are refunded
(:meth:`BudgetLedger.refund_admission`).

With ``path=`` the ledger is **durable**: every admission writes a pending
record to a :class:`~repro.serving.durable.LedgerJournal` (sqlite/WAL,
``synchronous=FULL``) before the engine may run, the server settles or
voids it afterwards, and a restart replays the journal — charges a crash
stranded mid-query replay as *spent*, so an analyst can never re-spend
budget by crashing the server.  A journal write failure refuses the
admission (fail closed) rather than executing an unjournalled charge.

All entry points take the ledger's lock, because the asyncio server executes
engine work on a thread pool: admission (check *and* charge) is atomic, so
two concurrent requests can never both squeeze through one remaining slot.
"""

from __future__ import annotations

import sqlite3
import threading
import warnings
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.dp.accountant import PrivacyAccountant, PrivacyBudget
from repro.exceptions import PrivacyBudgetError
from repro.serving.durable import LedgerJournal
from repro.serving.protocol import ServingError

__all__ = ["Admission", "BudgetLedger", "DEFAULT_ANALYST_BUDGET"]

#: Per-analyst total installed when the server is not configured otherwise.
DEFAULT_ANALYST_BUDGET = PrivacyBudget(epsilon=10.0)


@dataclass(frozen=True)
class Admission:
    """Receipt for one admitted charge.

    Returned by :meth:`BudgetLedger.admit` and handed back to
    :meth:`BudgetLedger.settle` (answer released) or
    :meth:`BudgetLedger.refund_admission` (execution failed), which is what
    lets a durable ledger tie the lifecycle of the in-memory charge to its
    journal row (``charge_id`` is ``None`` on a memory-only ledger).
    """

    analyst: str
    charge: PrivacyBudget
    label: str
    parallel: bool = False
    charge_id: Optional[int] = None


class BudgetLedger:
    """Admission control over one :class:`PrivacyAccountant` per analyst.

    ``max_analysts`` bounds the number of accountants the ledger will ever
    allocate: analyst names arrive unauthenticated over the wire, so without
    a cap a client cycling through fresh names could grow server memory
    without bound.  Reads (:meth:`summary`) never allocate an account.
    """

    def __init__(
        self,
        analyst_budget: PrivacyBudget = DEFAULT_ANALYST_BUDGET,
        max_analysts: int = 10_000,
        path: Optional[str] = None,
    ):
        if max_analysts < 1:
            raise ValueError("max_analysts must be at least 1")
        self.analyst_budget = analyst_budget
        self.max_analysts = int(max_analysts)
        self._accounts: dict[str, PrivacyAccountant] = {}
        self._lock = threading.Lock()
        self.journal: Optional[LedgerJournal] = None
        self.recovered_analysts = 0
        if path is not None:
            self.journal = LedgerJournal(path)
            self._replay_journal()

    def _replay_journal(self) -> None:
        """Reinstall spend from the journal (warm reload after a restart).

        Replayed accounts are created even past ``max_analysts`` — they
        represent real historical spend, and dropping one would forget
        charges — but a ledger that starts over its cap admits no *new*
        analysts until names are reused.
        """
        replayed = self.journal.replay()
        for analyst, account_state in replayed.items():
            account = PrivacyAccountant(self.analyst_budget)
            account.restore_spend(
                account_state.spent_epsilon,
                account_state.spent_delta,
                label="restored:journal",
            )
            self._accounts[analyst] = account
        self.recovered_analysts = len(replayed)
        if len(self._accounts) > self.max_analysts:
            warnings.warn(
                f"ledger journal replayed {len(self._accounts)} analysts, over "
                f"the max_analysts cap of {self.max_analysts}; existing spend "
                "is kept, new analyst names will be refused",
                RuntimeWarning,
                stacklevel=3,
            )

    @property
    def durable(self) -> bool:
        return self.journal is not None and self.journal.persisted

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------
    def _account(self, analyst: str) -> PrivacyAccountant:
        account = self._accounts.get(analyst)
        if account is None:
            if len(self._accounts) >= self.max_analysts:
                raise ServingError(
                    "bad_request",
                    f"analyst capacity exhausted ({self.max_analysts} accounts); "
                    "reuse an existing analyst name",
                    max_analysts=self.max_analysts,
                )
            account = PrivacyAccountant(self.analyst_budget)
            self._accounts[analyst] = account
        return account

    def analysts(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._accounts))

    # ------------------------------------------------------------------
    def admit(
        self,
        analyst: str,
        budget: PrivacyBudget,
        label: str = "query",
        parallel: bool = False,
    ) -> Admission:
        """Charge ``budget`` to ``analyst`` or refuse; returns a receipt.

        ``parallel=True`` records the admission as a parallel composition over
        disjoint GROUP BY partitions (cost = max = ``budget``); the amount is
        the same, the ledger label distinguishes the rule applied.  Refusal
        raises :class:`ServingError` (``budget_exhausted``) with the spent /
        remaining / total ε so the analyst can re-plan; the accountant is left
        untouched on refusal.  On a durable ledger the charge is journalled
        (pending) before this returns; a journal-write failure undoes the
        in-memory charge and refuses with an ``internal`` error — no query
        ever executes on a charge that is not on disk.
        """
        with self._lock:
            account = self._account(analyst)
            try:
                if parallel:
                    account.charge_parallel([budget], label=f"parallel:{label}")
                else:
                    account.charge(budget, label=label)
            except PrivacyBudgetError as error:
                raise ServingError(
                    "budget_exhausted",
                    f"analyst {analyst!r} refused: {error}",
                    analyst=analyst,
                    requested_epsilon=budget.epsilon,
                    requested_delta=budget.delta,
                    spent_epsilon=account.spent_epsilon,
                    remaining_epsilon=account.remaining_epsilon,
                    total_epsilon=account.total.epsilon,
                ) from None
            charge_id = None
            if self.journal is not None:
                try:
                    charge_id = self.journal.record_charge(
                        analyst, budget.epsilon, budget.delta, label, parallel=parallel
                    )
                except sqlite3.Error as error:
                    account.refund(budget, label=f"journal-failed:{label}")
                    raise ServingError(
                        "internal",
                        f"budget journal write failed ({error}); charge refused",
                    ) from None
            return Admission(
                analyst=analyst,
                charge=budget,
                label=label,
                parallel=parallel,
                charge_id=charge_id,
            )

    def settle(self, admission: Admission) -> None:
        """Mark an admitted charge as released (its answer went out)."""
        if self.journal is not None:
            self.journal.settle(admission.charge_id)

    def refund_admission(self, admission: Admission) -> None:
        """Return an admitted charge whose execution released no answer."""
        with self._lock:
            account = self._accounts.get(admission.analyst)
            if account is not None:
                account.refund(admission.charge, label=admission.label)
        if self.journal is not None:
            self.journal.void(admission.charge_id)

    def refund(self, analyst: str, budget: PrivacyBudget, label: str = "query") -> None:
        """Return a charge to an analyst by name (prefer
        :meth:`refund_admission`, which also reconciles the journal row).

        A refund for an analyst the ledger never charged is a caller bug —
        it must not allocate a fresh account (that would burn an analyst
        slot) and must never refuse with the capacity error, so it warns
        and does nothing.
        """
        with self._lock:
            account = self._accounts.get(analyst)
            if account is None:
                warnings.warn(
                    f"refund for unknown analyst {analyst!r} ignored "
                    "(no charge was ever admitted for it)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
            account.refund(budget, label=label)
        if self.journal is not None:
            self.journal.record_refund(analyst, budget.epsilon, budget.delta, label)

    # ------------------------------------------------------------------
    def summary(self, analyst: Optional[str] = None) -> dict:
        """JSON-serialisable budget state (the ``budget`` op's payload).

        A read-only operation: asking about an analyst the ledger has never
        charged reports a fresh untouched budget without allocating an
        account (budget probes must not consume the analyst capacity).
        """
        with self._lock:
            if analyst is not None:
                account = self._accounts.get(analyst)
                if account is None:
                    account = PrivacyAccountant(self.analyst_budget)  # transient
                return self._summarise(analyst, account)
            return {
                "analyst_budget_epsilon": self.analyst_budget.epsilon,
                "analyst_budget_delta": self.analyst_budget.delta,
                "durable": self.durable,
                "journal": self.journal.stats() if self.journal is not None else None,
                "analysts": {
                    name: self._summarise(name, account)
                    for name, account in sorted(self._accounts.items())
                },
            }

    @staticmethod
    def _summarise(analyst: str, account: PrivacyAccountant) -> dict:
        return {
            "analyst": analyst,
            "spent_epsilon": account.spent_epsilon,
            "spent_delta": account.spent_delta,
            "remaining_epsilon": account.remaining_epsilon,
            "total_epsilon": account.total.epsilon,
            "total_delta": account.total.delta,
            "charges": len(account.ledger),
        }
