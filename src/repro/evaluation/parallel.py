"""Batched, process-parallel evaluation of experiment cells.

The experiment drivers answer every (mechanism, query, ε) cell over repeated
trials.  With the shared :class:`~repro.db.engine.ExecutionEngine` the
per-trial query work is cheap, so the harness bottleneck is the serial cell
loop itself.  This module fans cells out over a ``ProcessPoolExecutor``:

* :class:`TrialScheduler` maps a picklable cell function over a cell list
  and returns results **in input order** — parallelism never reorders rows.
* Determinism comes from the seeding scheme, not from scheduling: each cell
  carries its full label, and the cell function derives the cell's
  :class:`~numpy.random.SeedSequence` with
  :func:`~repro.evaluation.experiments.common.cell_stream` — a pure function
  of ``(master seed, label)``.  All trials of a cell run inside one
  :func:`~repro.evaluation.runner.evaluate_mechanism` call from generators
  split off that sequence, so ``jobs=1`` and ``jobs=N`` produce identical
  numbers.
* Workers warm up their own databases and engine caches once per database
  and reuse them across every cell of that database:
  :func:`resolve_database` memoizes ``(builder, args)`` per process.  On
  platforms whose process start method is ``fork`` (Linux, the CI platform)
  the pool is created after the parent has already built the database and
  computed the exact answers, so workers *inherit* the warm database and
  engine caches through copy-on-write memory instead of rebuilding them.

Cell functions must be importable module-level callables (the pool pickles
them by qualified name); drivers bind their configuration with
``functools.partial``.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, cell_stream
from repro.evaluation.runner import (
    EvaluationResult,
    evaluate_kstar_mechanism,
    evaluate_mechanism,
    make_kstar_mechanism,
    make_star_mechanism,
)
from repro.graph.kstar import kstar_count

__all__ = [
    "TrialScheduler",
    "StarCell",
    "KStarCell",
    "run_star_cell",
    "run_kstar_cell",
    "resolve_database",
    "clear_worker_cache",
]


# ----------------------------------------------------------------------
# per-process database / warm-engine cache
# ----------------------------------------------------------------------
#: Databases (and anything else a cell function wants to pay for once per
#: process) keyed by the builder's qualified name and its pickled arguments.
#: Under the ``fork`` start method a pre-populated parent cache is inherited
#: by every worker, so the parent can warm it before the pool is created.
#: Bounded like ``common._DATABASE_CACHE`` (oldest entry evicted) so a
#: many-database sweep — figure7 alone builds 12 instances — cannot pin
#: every instance it ever touched for the life of the process.
_WORKER_CACHE: dict = {}
_WORKER_CACHE_MAX = 8


def clear_worker_cache() -> None:
    """Drop this process's memoized databases (frees memory between suites)."""
    _WORKER_CACHE.clear()


def resolve_database(builder: Callable, args: tuple):
    """Build (or reuse) the database described by ``(builder, args)``.

    The result is memoized per process and its
    :class:`~repro.db.engine.ExecutionEngine` is attached on first build, so
    all cells of the same database share one set of selection/cube caches —
    each worker pays them once.
    """
    key = (builder.__module__, builder.__qualname__, pickle.dumps(args))
    database = _WORKER_CACHE.get(key)
    if database is None:
        database = builder(*args)
        if hasattr(database, "fact"):  # star/snowflake databases have engines
            ExecutionEngine.for_database(database)
        while len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
        _WORKER_CACHE[key] = database
    return database


# ----------------------------------------------------------------------
# cell descriptions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StarCell:
    """One (mechanism, query, ε) cell of a star-join experiment.

    Everything is picklable and declarative: the query and database are
    described by module-level builder callables plus positional arguments,
    resolved inside the worker; ``stream`` is the full cell label the
    per-cell seed stream is derived from.
    """

    mechanism: str
    epsilon: float
    query_builder: Callable
    query_args: tuple
    database_builder: Callable
    database_args: tuple
    stream: tuple
    mechanism_kwargs: tuple = ()


@dataclass(frozen=True)
class KStarCell:
    """One (mechanism, query, ε) cell of a k-star (graph) experiment."""

    mechanism: str
    epsilon: float
    query_builder: Callable  # called with the resolved graph
    database_builder: Callable
    database_args: tuple
    stream: tuple
    mechanism_kwargs: tuple = ()


def run_star_cell(config: ExperimentConfig, cell: StarCell) -> EvaluationResult:
    """Evaluate one star-join cell (importable worker entry point)."""
    database = resolve_database(cell.database_builder, cell.database_args)
    query = cell.query_builder(*cell.query_args)
    mechanism = make_star_mechanism(
        cell.mechanism,
        cell.epsilon,
        scenario=config.scenario,
        **dict(cell.mechanism_kwargs),
    )
    # Engine-cached by query fingerprint: computed once per (database, query)
    # per process, shared by every mechanism and ε of the cell's query.
    exact = QueryExecutor(database).execute(query)
    return evaluate_mechanism(
        mechanism,
        database,
        query,
        trials=config.trials,
        rng=cell_stream(config.seed, *cell.stream),
        exact_answer=exact,
    )


def run_kstar_cell(config: ExperimentConfig, cell: KStarCell) -> EvaluationResult:
    """Evaluate one k-star cell (importable worker entry point)."""
    graph = resolve_database(cell.database_builder, cell.database_args)
    query = cell.query_builder(graph)
    mechanism = make_kstar_mechanism(
        cell.mechanism, cell.epsilon, **dict(cell.mechanism_kwargs)
    )
    exact = kstar_count(graph, query)  # O(1) after the graph's first count
    return evaluate_kstar_mechanism(
        mechanism,
        graph,
        query,
        trials=config.trials,
        rng=cell_stream(config.seed, *cell.stream),
        exact_answer=exact,
    )


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
class TrialScheduler:
    """Maps cell functions over worker processes, preserving input order.

    ``jobs=1`` (the default) runs every cell in-process — byte-for-byte the
    serial behaviour, with no pool or pickling involved.  ``jobs>1`` fans
    cells out over a ``ProcessPoolExecutor``; chunks keep cells of the same
    database together (drivers emit them contiguously) without starving load
    balancing.
    """

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs

    def map(self, fn: Callable[[Any], Any], cells: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every cell; results come back in input order."""
        cells = list(cells)
        jobs = min(self.jobs, len(cells))
        if jobs <= 1:
            return [fn(cell) for cell in cells]
        # ``fork`` lets workers inherit the parent's already-built databases
        # and warm engine caches; fall back to the platform default elsewhere.
        try:
            context = get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = None
        chunksize = max(1, len(cells) // (jobs * 4))
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            return list(pool.map(fn, cells, chunksize=chunksize))
