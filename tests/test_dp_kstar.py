"""Tests for the DP k-star mechanisms (PM, R2T, TM on graphs)."""

import numpy as np
import pytest

from repro.graph.dp_kstar import KStarPM, KStarR2T, KStarTM
from repro.graph.edge_table import Graph
from repro.graph.kstar import KStarQuery, kstar_count
from repro.exceptions import PrivacyBudgetError


@pytest.fixture()
def query(small_graph):
    return KStarQuery(k=2, low=0, high=small_graph.num_nodes - 1, name="Q2*")


class TestKStarPM:
    def test_requires_positive_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            KStarPM(epsilon=0.0)

    def test_answer_is_a_valid_restricted_count(self, small_graph, query):
        """PM answers an exact count over some noisy node range, so the value
        must lie between 0 and the full-range count."""
        full = kstar_count(small_graph, query)
        mechanism = KStarPM(epsilon=0.5)
        for seed in range(10):
            value = mechanism.answer_value(small_graph, query, rng=seed)
            assert 0.0 <= value <= full

    def test_reproducible(self, small_graph, query):
        a = KStarPM(epsilon=0.5).answer_value(small_graph, query, rng=9)
        b = KStarPM(epsilon=0.5).answer_value(small_graph, query, rng=9)
        assert a == b

    def test_partial_range_query(self, small_graph):
        query = KStarQuery(k=2, low=0, high=small_graph.num_nodes // 3)
        value = KStarPM(epsilon=0.5).answer_value(small_graph, query, rng=4)
        assert value >= 0.0


class TestKStarR2T:
    def test_never_negative(self, small_graph, query):
        mechanism = KStarR2T(epsilon=0.5)
        for seed in range(5):
            assert mechanism.answer_value(small_graph, query, rng=seed) >= 0.0

    def test_never_far_above_truth(self, small_graph, query):
        exact = kstar_count(small_graph, query)
        mechanism = KStarR2T(epsilon=1.0, global_sensitivity_bound=2**20)
        values = [mechanism.answer_value(small_graph, query, rng=seed) for seed in range(10)]
        assert np.median(values) <= exact * 1.5

    def test_large_epsilon_approaches_truth(self, small_graph, query):
        exact = kstar_count(small_graph, query)
        mechanism = KStarR2T(epsilon=200.0, global_sensitivity_bound=2**16)
        value = mechanism.answer_value(small_graph, query, rng=3)
        assert value == pytest.approx(exact, rel=0.25)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            KStarR2T(epsilon=1.0, alpha=0.0)


class TestKStarTM:
    def test_threshold_quantile_validation(self):
        with pytest.raises(ValueError):
            KStarTM(epsilon=1.0, threshold_quantile=1.5)

    def test_answer_is_float(self, small_graph, query):
        value = KStarTM(epsilon=0.5).answer_value(small_graph, query, rng=1)
        assert isinstance(value, float)

    def test_explicit_threshold_controls_bias(self, small_graph, query):
        """With a threshold above the maximum degree and a huge ε the
        truncated count equals the exact count (note that the smooth
        sensitivity still grows with the threshold, so ε must dominate it)."""
        exact = kstar_count(small_graph, query)
        threshold = small_graph.max_degree()
        mechanism = KStarTM(epsilon=1e9, threshold=threshold)
        assert mechanism.answer_value(small_graph, query, rng=2) == pytest.approx(exact, rel=0.01)

    def test_small_threshold_is_downward_biased(self, small_graph, query):
        exact = kstar_count(small_graph, query)
        mechanism = KStarTM(epsilon=1e6, threshold=1)
        assert mechanism.answer_value(small_graph, query, rng=2) < exact


class TestComparativeBehaviour:
    def test_pm_is_fastest(self, query):
        """Table 2's efficiency claim: PM does not need truncation passes."""
        import time

        graph = Graph(
            num_nodes=20_000,
            edges=np.random.default_rng(0).integers(0, 20_000, size=(60_000, 2)),
            name="timing",
        )
        timings = {}
        for name, mechanism in (
            ("PM", KStarPM(epsilon=0.5)),
            ("R2T", KStarR2T(epsilon=0.5)),
            ("TM", KStarTM(epsilon=0.5)),
        ):
            start = time.perf_counter()
            mechanism.answer_value(graph, KStarQuery(k=2), rng=1)
            timings[name] = time.perf_counter() - start
        assert timings["PM"] <= timings["TM"]
