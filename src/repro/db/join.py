"""Reference join implementations.

The production plan in :mod:`repro.db.executor` answers star-join queries via
semi-joins.  To make sure that plan is correct, this module provides an
independent reference implementation that *materialises* the star join
(fact ⋈ R1 ⋈ ... ⋈ Rn) as a wide table and then filters it — the classic
hash-join / denormalisation plan.  The two plans must agree on every query;
the test suite checks that, including on GROUP BY and SUM queries.

It also exposes the join-size helpers used in sensitivity analyses.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.db.database import StarDatabase
from repro.db.predicates import ConjunctionPredicate
from repro.db.query import AggregateKind, StarJoinQuery
from repro.exceptions import QueryError

__all__ = [
    "materialise_star_join",
    "execute_by_materialised_join",
    "join_result_size",
]


def materialise_star_join(database: StarDatabase) -> dict[str, np.ndarray]:
    """Materialise the full star join as a mapping ``"table.attribute" → array``.

    Every returned array has one entry per fact row; dimension attributes are
    gathered onto fact rows through the foreign keys (and through snowflake
    edges, so outer-dimension attributes are also available).  Because every
    foreign key references a primary key, the join result has exactly one row
    per fact row.
    """
    wide: dict[str, np.ndarray] = {}
    fact = database.fact
    for column_name in fact.column_names:
        wide[f"{fact.name}.{column_name}"] = fact.codes(column_name)

    # Direct dimensions.
    dimension_row_of_fact: dict[str, np.ndarray] = {}
    for dim_name in database.schema.dimension_names:
        if dim_name not in database.schema.foreign_keys:
            continue
        fk_codes = database.fact_foreign_key_codes(dim_name)
        dimension_row_of_fact[dim_name] = fk_codes
        dim = database.dimension(dim_name)
        for column_name in dim.column_names:
            wide[f"{dim_name}.{column_name}"] = dim.codes(column_name)[fk_codes]

    # Snowflaked dimensions: repeatedly resolve parents whose child is known.
    remaining = [
        name
        for name in database.schema.dimension_names
        if name not in dimension_row_of_fact
    ]
    progress = True
    while remaining and progress:
        progress = False
        for parent_name in list(remaining):
            edge = next(
                (
                    e
                    for e in database.schema.snowflake_edges
                    if e.parent_table == parent_name
                    and e.child_table in dimension_row_of_fact
                ),
                None,
            )
            if edge is None:
                continue
            child_rows = dimension_row_of_fact[edge.child_table]
            child = database.dimension(edge.child_table)
            parent_rows = child.codes(edge.child_column)[child_rows]
            dimension_row_of_fact[parent_name] = parent_rows
            parent = database.dimension(parent_name)
            for column_name in parent.column_names:
                wide[f"{parent_name}.{column_name}"] = parent.codes(column_name)[parent_rows]
            remaining.remove(parent_name)
            progress = True
    if remaining:
        raise QueryError(f"could not materialise snowflaked dimensions: {remaining}")
    return wide


def _selection_mask(
    wide: dict[str, np.ndarray],
    predicates: ConjunctionPredicate,
    num_rows: int,
) -> np.ndarray:
    mask = np.ones(num_rows, dtype=bool)
    for predicate in predicates:
        key = f"{predicate.table}.{predicate.attribute}"
        if key not in wide:
            raise QueryError(f"materialised join has no column {key!r}")
        mask &= predicate.evaluate_codes(wide[key])
    return mask


def execute_by_materialised_join(
    database: StarDatabase, query: StarJoinQuery
) -> Any:
    """Execute ``query`` on the materialised join (reference implementation).

    Returns a float for scalar aggregates, or a ``dict`` mapping decoded group
    keys to values for GROUP BY queries (matching
    :class:`repro.db.executor.GroupedResult.groups`).
    """
    wide = materialise_star_join(database)
    num_rows = database.num_fact_rows
    mask = _selection_mask(wide, query.predicates, num_rows)

    if query.kind is AggregateKind.COUNT:
        weights = np.ones(num_rows, dtype=np.float64)
    else:
        measure = query.aggregate.measure
        weights = np.asarray(
            wide[f"{database.fact.name}.{measure.column}"], dtype=np.float64
        )
        if measure.subtract is not None:
            weights = weights - np.asarray(
                wide[f"{database.fact.name}.{measure.subtract}"], dtype=np.float64
            )

    if not query.is_grouped:
        selected = weights[mask]
        if query.kind is AggregateKind.AVG:
            return float(selected.mean()) if selected.size else 0.0
        return float(selected.sum())

    group_arrays = []
    for table_name, attribute in query.group_by:
        group_arrays.append(wide[f"{table_name}.{attribute}"][mask])
    stacked = (
        np.stack(group_arrays, axis=1)
        if group_arrays
        else np.zeros((int(mask.sum()), 0), dtype=np.int64)
    )
    unique_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
    sums = np.bincount(inverse, weights=weights[mask], minlength=unique_rows.shape[0])
    if query.kind is AggregateKind.AVG:
        counts = np.bincount(inverse, minlength=unique_rows.shape[0])
        sums = np.divide(sums, np.maximum(counts, 1))

    groups: dict[tuple[Any, ...], float] = {}
    for row, value in zip(unique_rows, sums):
        decoded = []
        for (table_name, attribute), code in zip(query.group_by, row):
            domain = database.table(table_name).domain(attribute)
            decoded.append(domain.decode(int(code)) if domain is not None else int(code))
        groups[tuple(decoded)] = float(value)
    return groups


def join_result_size(
    database: StarDatabase, predicates: Optional[ConjunctionPredicate] = None
) -> int:
    """Number of tuples in the (filtered) star-join result.

    With primary-key foreign keys the unfiltered join has exactly one tuple
    per fact row; with a filter Φ it is the number of selected fact rows.
    """
    if predicates is None or len(predicates) == 0:
        return database.num_fact_rows
    wide = materialise_star_join(database)
    return int(_selection_mask(wide, predicates, database.num_fact_rows).sum())
