"""Suite for the pluggable cache-backend layer (:mod:`repro.db.cache`).

The heart of the file is the **cross-backend conformance harness**: one
suite parameterized over every backend — ``local``, ``shared`` (Manager
tier) and ``remote`` (out-of-process cache server) — pinning the protocol
semantics all of them must agree on (see docs/CACHE.md):

* misses are ``None``; values round-trip bit-identically;
* hit / miss / put / eviction counters, and the ``clear()`` contract —
  a full ``clear()`` resets the counters, a namespace ``clear(ns)`` leaves
  them accumulating (the backends used to disagree on this);
* content-derived namespacing, isolation and cross-tier clearing;
* bounded-region LRU eviction under ``--cache-size``;
* ``invalidate()`` after an in-place database mutation leaves no stale
  cube, mask or memoized answer reachable and resets the stats counters.

Backend-specific behaviour (the shared tier's fork semantics, the namespace
LRU of the local backend) keeps its own sections below; the cache *server*
itself — wire formats, persistence, failure injection — is covered in
``tests/test_cache_server.py``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.db.cache import (
    BOUNDED_REGIONS,
    CacheBackend,
    CacheStats,
    LocalCacheBackend,
    LruCache,
    REGIONS,
    RemoteCacheBackend,
    SHARED_REGIONS,
    SharedMemoryCacheBackend,
    active_backend,
    backend_scope,
    database_fingerprint,
    make_backend,
    set_active_backend,
)
from repro.db.cache.backend import value_nbytes
from repro.db.cache.local import UtilityCache
from repro.db.cache.server import CacheServerThread
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.db.join import execute_by_materialised_join
from repro.datagen.ssb import ssb_schema
from repro.workloads.ssb_queries import ssb_query

#: Every backend the conformance suite runs over.
ALL_BACKENDS = ("local", "shared", "remote")

#: A bounded region that stays in-process on every backend (not replicated
#: to a shared/remote tier), so LRU and entry-count assertions read the same
#: storage everywhere.
LOCAL_BOUNDED_REGION = "predicate_mask"

#: An unbounded region that stays in-process on every backend.
LOCAL_UNBOUNDED_REGION = "fan_out"


@pytest.fixture(params=ALL_BACKENDS)
def any_backend(request):
    """A small instance of each backend; remote gets its own live server."""
    if request.param == "remote":
        with CacheServerThread(max_entries=512) as handle:
            backend = RemoteCacheBackend(
                host="127.0.0.1", port=handle.server.port, max_entries=32
            )
            yield backend
            backend.close()
    else:
        backend = make_backend(request.param, max_entries=32)
        yield backend
        _close(backend)


@pytest.fixture()
def shared_backend():
    backend = SharedMemoryCacheBackend(max_entries=32, max_shared_entries=64)
    yield backend
    backend.close()


def _close(backend) -> None:
    close = getattr(backend, "close", None)
    if close is not None:
        close()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_backend("redis")

    def test_remote_without_server_address_rejected(self):
        with pytest.raises(ValueError):
            make_backend("remote")

    def test_every_engine_region_is_declared(self):
        # The engine's regions and the registry must not drift apart.
        assert BOUNDED_REGIONS <= set(REGIONS)
        assert SHARED_REGIONS <= set(REGIONS)
        assert LOCAL_BOUNDED_REGION in BOUNDED_REGIONS - SHARED_REGIONS
        assert LOCAL_UNBOUNDED_REGION in set(REGIONS) - BOUNDED_REGIONS - SHARED_REGIONS

    def test_active_backend_scope(self):
        original = active_backend()
        replacement = LocalCacheBackend(8)
        with backend_scope(replacement):
            assert active_backend() is replacement
        assert active_backend() is original

    def test_set_active_backend_returns_previous(self):
        original = active_backend()
        replacement = LocalCacheBackend(8)
        assert set_active_backend(replacement) is original
        assert set_active_backend(original) is replacement
        assert active_backend() is original


# ----------------------------------------------------------------------
# the cross-backend conformance suite
# ----------------------------------------------------------------------
class TestConformanceProtocol:
    def test_satisfies_protocol(self, any_backend):
        assert isinstance(any_backend, CacheBackend)
        assert any_backend.name in ALL_BACKENDS

    def test_miss_is_none(self, any_backend):
        assert any_backend.get("ns", "cube", "missing") is None

    def test_round_trip_preserves_bits(self, any_backend):
        values = np.array([1.25, -3.5e300, 0.0, 7e-17])
        any_backend.put("ns", "cube", ("k", 1, 0.5), values)
        fetched = any_backend.get("ns", "cube", ("k", 1, 0.5))
        np.testing.assert_array_equal(fetched, values)
        assert fetched.dtype == values.dtype

    def test_tuple_values_round_trip(self, any_backend):
        value = (np.arange(6, dtype=np.int64), np.linspace(0.0, 1.0, 6), 41.5)
        any_backend.put("ns", "sorted_contribution", "q", value)
        fetched = any_backend.get("ns", "sorted_contribution", "q")
        assert isinstance(fetched, tuple) and fetched[2] == 41.5
        np.testing.assert_array_equal(fetched[0], value[0])
        np.testing.assert_array_equal(fetched[1], value[1])


class TestConformanceStats:
    def test_hit_miss_put_counters(self, any_backend):
        assert any_backend.get("ns", "cube", "k") is None
        any_backend.put("ns", "cube", "k", 1.5)
        assert any_backend.get("ns", "cube", "k") == 1.5
        stats = any_backend.stats()
        assert stats.misses == 1 and stats.hits == 1 and stats.puts == 1
        any_backend.reset_stats()
        zeroed = any_backend.stats()
        assert (zeroed.hits, zeroed.misses, zeroed.puts) == (0, 0, 0)

    def test_bounded_region_evicts_at_cache_size(self, any_backend):
        small = (
            any_backend
            if any_backend.name == "local"
            else any_backend._local  # the in-process tier enforces the bound
        )
        for index in range(4):
            any_backend.put("ns", LOCAL_BOUNDED_REGION, index, float(index))
        # The two oldest entries were evicted from the bounded LRU ...
        assert small.entry_count("ns") <= small.max_entries
        assert any_backend.get("ns", LOCAL_BOUNDED_REGION, 3) == 3.0

    def test_eviction_counter_counts_lru_overflow(self):
        # The eviction counter itself, at a tiny bound, on every backend.
        for name in ALL_BACKENDS:
            if name == "remote":
                with CacheServerThread(max_entries=512) as handle:
                    backend = RemoteCacheBackend(
                        host="127.0.0.1", port=handle.server.port, max_entries=2
                    )
                    self._assert_evictions(backend)
                    backend.close()
            else:
                backend = make_backend(name, max_entries=2)
                try:
                    self._assert_evictions(backend)
                finally:
                    _close(backend)

    @staticmethod
    def _assert_evictions(backend) -> None:
        for index in range(4):
            backend.put("ns", LOCAL_BOUNDED_REGION, index, float(index))
        assert backend.stats().evictions == 2
        assert backend.entry_count("ns") == 2

    def test_unbounded_region_never_evicts(self, any_backend):
        for index in range(50):
            any_backend.put("ns", LOCAL_UNBOUNDED_REGION, index, float(index))
        assert any_backend.stats().evictions == 0
        assert any_backend.entry_count("ns") == 50


class TestConformanceClearContract:
    """``clear()`` resets the counters; ``clear(namespace)`` does not."""

    def test_full_clear_resets_stats_and_storage(self, any_backend):
        any_backend.put("ns", "cube", "k", 1.0)
        any_backend.get("ns", "cube", "k")
        any_backend.get("ns", "cube", "missing")
        assert any_backend.stats().puts == 1
        any_backend.clear()
        assert any_backend.entry_count() == 0
        stats = any_backend.stats()
        assert (stats.hits, stats.misses, stats.puts, stats.evictions) == (0, 0, 0, 0)
        assert (stats.shared_hits, stats.shared_misses, stats.shared_puts) == (0, 0, 0)

    def test_namespace_clear_preserves_stats(self, any_backend):
        any_backend.put("ns", "cube", "k", 1.0)
        any_backend.get("ns", "cube", "k")
        any_backend.get("ns", "cube", "missing")
        before = any_backend.stats()
        any_backend.clear("ns")
        after = any_backend.stats()
        assert after.hits == before.hits == 1
        assert after.misses == before.misses
        assert after.puts == before.puts == 1
        assert any_backend.get("ns", "cube", "k") is None


class TestConformanceNamespacing:
    def test_namespaces_are_isolated(self, any_backend):
        any_backend.put("ns-a", "result", "k", 1.0)
        assert any_backend.get("ns-b", "result", "k") is None
        any_backend.put("ns-b", "result", "k", 2.0)
        assert any_backend.get("ns-a", "result", "k") == 1.0
        any_backend.clear("ns-a")
        assert any_backend.get("ns-a", "result", "k") is None
        assert any_backend.get("ns-b", "result", "k") == 2.0

    def test_namespace_clear_reaches_every_tier(self, any_backend):
        """A cleared namespace must not resurface from a shared/remote tier."""
        any_backend.put("ns", "result", "k", 3.0)  # "result" is cross-tier
        any_backend.clear("ns")
        # Even with the in-process tier emptied, nothing may come back.
        if hasattr(any_backend, "_local"):
            any_backend._local.clear()
        assert any_backend.get("ns", "result", "k") is None
        assert any_backend.entry_count("ns") == 0


class TestConformanceInvalidate:
    def test_mutation_then_invalidate_leaves_no_stale_answer(self, ssb_small, any_backend):
        engine = ExecutionEngine(ssb_small, backend=any_backend)
        executor = QueryExecutor(ssb_small, engine=engine)
        query = ssb_query("Qc1", ssb_schema())
        stale_answer = executor.execute(query)
        stale_mask = engine.selection_mask(query.predicates)

        # Mutate the instance in place: move every Date row to year code
        # 0, which changes Qc1's ``year = 1993`` selection to either the
        # empty set or every fact row, then follow the documented rule.
        year_codes = ssb_small.dimensions["Date"].codes("year")
        saved = year_codes.copy()
        year_codes[:] = 0
        try:
            engine.invalidate()
            fresh_answer = executor.execute(query)
            fresh_mask = engine.selection_mask(query.predicates)
            reference = execute_by_materialised_join(ssb_small, query)
            assert fresh_answer == reference
            assert fresh_answer != stale_answer
            assert not np.array_equal(fresh_mask, stale_mask)
            # The cube-backed COUNT path must also see fresh content.
            assert engine.count_answer_via_cube(query) == reference
        finally:
            year_codes[:] = saved
            engine.invalidate()
        assert executor.execute(query) == stale_answer

    def test_invalidate_resets_stats_and_clears_namespace(self, ssb_small, any_backend):
        engine = ExecutionEngine(ssb_small, backend=any_backend)
        query = ssb_query("Qc2", ssb_schema())
        engine.selection_mask(query.predicates)
        engine.selection_mask(query.predicates)
        assert engine.stats().hits > 0
        before = engine.namespace
        engine.invalidate()
        stats = engine.stats()
        assert (stats.hits, stats.misses, stats.puts, stats.evictions) == (0, 0, 0, 0)
        assert engine.namespace == before  # content unchanged -> same namespace
        assert any_backend.entry_count(before) == 0


class TestConformanceEngineAnswers:
    def test_engine_answers_identical_across_backends(self, ssb_small):
        queries = [ssb_query(name, ssb_schema()) for name in ("Qc1", "Qs2", "Qg2")]
        answers = {}
        with CacheServerThread(max_entries=512) as handle:
            backends = {
                "local": LocalCacheBackend(64),
                "shared": SharedMemoryCacheBackend(max_entries=64),
                "remote": RemoteCacheBackend(
                    host="127.0.0.1", port=handle.server.port, max_entries=64
                ),
            }
            try:
                for label, backend in backends.items():
                    engine = ExecutionEngine(ssb_small, backend=backend)
                    executor = QueryExecutor(ssb_small, engine=engine)
                    answers[label] = [executor.execute(query) for query in queries]
                    # Run every query twice so the second pass is cache-served.
                    for query, first in zip(queries, answers[label]):
                        again = executor.execute(query)
                        if hasattr(first, "groups"):
                            assert again.groups == first.groups
                        else:
                            assert again == first
            finally:
                for backend in backends.values():
                    _close(backend)
        reference = answers["local"]
        for label in ("shared", "remote"):
            for local_answer, other_answer in zip(reference, answers[label]):
                if hasattr(local_answer, "groups"):
                    assert local_answer.groups == other_answer.groups
                else:
                    assert local_answer == other_answer


# ----------------------------------------------------------------------
# LRU building block
# ----------------------------------------------------------------------
class TestLruCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        assert cache.put("c", 3) == 1
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_put_reports_eviction_count(self):
        cache = LruCache(1)
        assert cache.put("a", 1) == 0
        assert cache.put("b", 2) == 1
        assert len(cache) == 1

    def test_stats_addition_and_rates(self):
        total = CacheStats(hits=3, misses=1) + CacheStats(hits=1, misses=3, shared_hits=2)
        assert total.hits == 4 and total.misses == 4 and total.shared_hits == 2
        assert total.hit_rate == 0.5
        assert "hits=4" in total.summary()


# ----------------------------------------------------------------------
# local-backend specifics: the namespace LRU
# ----------------------------------------------------------------------
class TestLocalNamespaceLru:
    def test_namespace_count_is_bounded(self):
        backend = LocalCacheBackend(max_entries=4, max_namespaces=2)
        backend.put("ns-a", "cube", "k", 1.0)
        backend.put("ns-b", "cube", "k", 2.0)
        backend.put("ns-c", "cube", "k", 3.0)  # evicts ns-a (least recent)
        assert backend.get("ns-a", "cube", "k") is None
        assert backend.get("ns-b", "cube", "k") == 2.0
        assert backend.get("ns-c", "cube", "k") == 3.0
        assert backend.stats().evictions == 1

    def test_namespace_eviction_is_least_recently_used(self):
        backend = LocalCacheBackend(max_entries=4, max_namespaces=2)
        backend.put("ns-a", "cube", "k", 1.0)
        backend.put("ns-b", "cube", "k", 2.0)
        assert backend.get("ns-a", "cube", "k") == 1.0  # freshen ns-a
        backend.put("ns-c", "cube", "k", 3.0)  # now ns-b is the oldest
        assert backend.get("ns-b", "cube", "k") is None
        assert backend.get("ns-a", "cube", "k") == 1.0


# ----------------------------------------------------------------------
# fingerprints / namespaces
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_database_fingerprint_is_content_derived(self, ssb_small, tiny_db):
        first = database_fingerprint(ssb_small)
        assert first == database_fingerprint(ssb_small)  # deterministic
        assert first == ssb_small.cache_fingerprint()
        assert first != database_fingerprint(tiny_db)

    def test_content_digest_covers_domains(self):
        """Equal code arrays over different domains are different content:
        the domain decodes GROUP BY labels and predicate values, so sharing
        a namespace across domains would serve wrong decoded answers."""
        from repro.db.domains import AttributeDomain
        from repro.db.table import Column, Table

        codes = np.array([0, 1, 2])
        nineties = AttributeDomain.from_values("year", (1992, 1993, 1994))
        aughts = AttributeDomain.from_values("year", (2000, 2001, 2002))
        first = Table("T", [Column("year", codes.copy(), domain=nineties)])
        second = Table("T", [Column("year", codes.copy(), domain=aughts)])
        assert first.content_digest() != second.content_digest()

    def test_fingerprint_changes_when_content_changes(self, tiny_db):
        before = database_fingerprint(tiny_db)
        codes = tiny_db.fact.codes("ColorKey")
        original = int(codes[0])
        codes[0] = (original + 1) % 6
        try:
            # The fingerprint is memoized per instance; mutation is only
            # visible through refresh=True (what invalidate() passes).
            assert database_fingerprint(tiny_db) == before
            assert database_fingerprint(tiny_db, refresh=True) != before
        finally:
            codes[0] = original
        assert database_fingerprint(tiny_db, refresh=True) == before


# ----------------------------------------------------------------------
# the shared backend's cross-process tier
# ----------------------------------------------------------------------
def _shared_worker_read(key):
    """Importable pool entry point: read a key through the active backend."""
    backend = active_backend()
    return backend.get("ns", "cube", key)


def _shared_worker_write(payload):
    key, value = payload
    active_backend().put("ns", "cube", key, np.asarray(value, dtype=np.float64))
    return True


class TestSharedBackend:
    def test_value_round_trip_preserves_bits(self, shared_backend):
        values = np.array([1.25, -3.5e300, 0.0, 7e-17])
        shared_backend.put("ns", "cube", "k", values)
        shared_backend._local.clear()  # force the L2 path
        fetched = shared_backend.get("ns", "cube", "k")
        np.testing.assert_array_equal(fetched, values)
        assert not fetched.flags.writeable  # frozen on promotion
        assert shared_backend.stats().shared_hits == 1

    def test_unshared_region_stays_local(self, shared_backend):
        shared_backend.put("ns", "predicate_mask", "k", np.ones(3, dtype=bool))
        shared_backend._local.clear()
        assert shared_backend.get("ns", "predicate_mask", "k") is None
        assert shared_backend.stats().shared_puts == 0

    def test_workers_share_entries_with_each_other(self, shared_backend):
        context = multiprocessing.get_context("fork")
        with backend_scope(shared_backend):
            # The write happens in a worker forked *before* the entry exists,
            # so neither the parent's L1 nor any later fork inherits it …
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                assert list(pool.map(_shared_worker_write, [("post-fork", [4.0, 2.0])]))
            # … and a worker of a second pool (a different process by
            # construction) can only obtain it through the cross-process tier.
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                reads = list(pool.map(_shared_worker_read, ["post-fork"] * 2))
        for fetched in reads:
            np.testing.assert_array_equal(fetched, [4.0, 2.0])
        assert shared_backend.stats().shared_hits > 0

    def test_shared_tier_eviction_bounds_entries(self):
        backend = SharedMemoryCacheBackend(max_entries=4, max_shared_entries=8)
        try:
            for index in range(20):
                backend.put("ns", "result", index, float(index))
            assert len(backend._store) <= 8
            assert backend.stats().shared_evictions >= 12
        finally:
            backend.close()

    def test_degrades_to_local_after_manager_loss(self):
        backend = SharedMemoryCacheBackend(max_entries=4)
        backend._manager.shutdown()
        backend._broken = False  # simulate a worker that has not noticed yet
        backend.put("ns", "result", "k", 1.0)  # must not raise
        assert backend._broken
        assert backend.get("ns", "result", "k") == 1.0  # L1 still serves


# ----------------------------------------------------------------------
# the remote backend's cross-tier behaviour (its server lives in
# tests/test_cache_server.py; this section mirrors TestSharedBackend)
# ----------------------------------------------------------------------
class TestRemoteBackend:
    def test_value_round_trip_preserves_bits(self):
        with CacheServerThread() as handle:
            backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            try:
                values = np.array([1.25, -3.5e300, 0.0, 7e-17])
                backend.put("ns", "cube", "k", values)
                backend._local.clear()  # force the remote path
                fetched = backend.get("ns", "cube", "k")
                np.testing.assert_array_equal(fetched, values)
                assert not fetched.flags.writeable  # frozen on promotion
                assert backend.stats().shared_hits == 1
            finally:
                backend.close()

    def test_unshared_region_stays_local(self):
        with CacheServerThread() as handle:
            backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            try:
                backend.put("ns", "predicate_mask", "k", np.ones(3, dtype=bool))
                backend._local.clear()
                assert backend.get("ns", "predicate_mask", "k") is None
                assert backend.stats().shared_puts == 0
            finally:
                backend.close()

    def test_release_keeps_server_tier(self):
        with CacheServerThread() as handle:
            backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            try:
                backend.put("ns", "cube", "k", 1.0)
                backend.release("ns")
                assert handle.server.store.entry_count("ns") == 1  # L2 intact
                assert backend.get("ns", "cube", "k") == 1.0  # re-served from L2
            finally:
                backend.close()

    def test_two_clients_share_through_the_server(self):
        """Two backends that never forked from each other — the batch-run /
        serving-process situation — exchange entries by content address."""
        with CacheServerThread() as handle:
            first = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            second = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            try:
                first.put("ns", "result", ("q", 0.5), 123.25)
                assert second.get("ns", "result", ("q", 0.5)) == 123.25
                assert second.stats().shared_hits == 1
            finally:
                first.close()
                second.close()


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEngineBackendIntegration:
    def test_direct_engines_have_private_local_backends(self, ssb_small):
        first = ExecutionEngine(ssb_small)
        second = ExecutionEngine(ssb_small)
        assert first.backend is not second.backend
        query = ssb_query("Qc1", ssb_schema())
        first.selection_mask(query.predicates)
        assert second.backend.entry_count(second.namespace) == 0

    def test_dead_database_namespace_is_released(self):
        """for_database engines reclaim their in-process cache storage when
        their database is garbage-collected, like the pre-backend per-engine
        caches did."""
        import gc

        from repro.datagen.ssb import SSBConfig, SSBGenerator

        backend = LocalCacheBackend(64)
        with backend_scope(backend):
            database = SSBGenerator(
                SSBConfig(scale_factor=0.05, rows_per_scale_factor=2000, seed=99)
            ).build()
            engine = ExecutionEngine.for_database(database)
            namespace = engine.namespace
            engine.fan_out("Customer")
            assert backend.entry_count(namespace) > 0
            del engine, database
            gc.collect()
            assert backend.entry_count(namespace) == 0

    def test_released_namespace_tracks_invalidation(self):
        """After invalidate() rebinds the namespace, database GC must release
        the *current* namespace, not the one captured at engine creation."""
        import gc

        from repro.datagen.ssb import SSBConfig, SSBGenerator

        backend = LocalCacheBackend(64)
        with backend_scope(backend):
            database = SSBGenerator(
                SSBConfig(scale_factor=0.05, rows_per_scale_factor=2000, seed=98)
            ).build()
            engine = ExecutionEngine.for_database(database)
            year_codes = database.dimensions["Date"].codes("year")
            year_codes[:] = 0  # mutate -> invalidate rebinds the namespace
            engine.invalidate()
            fresh_namespace = engine.namespace
            engine.fan_out("Customer")
            assert backend.entry_count(fresh_namespace) > 0
            del engine, database, year_codes
            gc.collect()
            assert backend.entry_count(fresh_namespace) == 0

    def test_release_keeps_shared_tier(self, shared_backend):
        shared_backend.put("ns", "cube", "k", 1.0)
        shared_backend.release("ns")
        assert ("ns", "cube", "k") in shared_backend._store  # L2 intact
        shared_backend._local.clear()
        assert shared_backend.get("ns", "cube", "k") == 1.0  # re-served from L2

    def test_shared_engine_follows_the_active_backend(self, ssb_small):
        engine = ExecutionEngine.for_database(ssb_small)
        replacement = LocalCacheBackend(16)
        with backend_scope(replacement):
            assert engine.backend is replacement
            engine.fan_out("Customer")
            assert replacement.entry_count(engine.namespace) > 0
        assert engine.backend is not replacement

    def test_repr_exposes_counters(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        engine.selection_mask(ssb_query("Qc1", ssb_schema()).predicates)
        text = repr(engine)
        assert "hits=" in text and "misses=" in text and "evictions=" in text
        assert "backend=local" in text


# ----------------------------------------------------------------------
# cost-aware eviction economics
# ----------------------------------------------------------------------
class TestUtilityCache:
    """The GDSF store behind every bounded in-process region."""

    def test_expensive_entry_survives_eviction_pressure(self):
        cache = UtilityCache(max_entries=2)
        cache.put("costly", 1.0, cost=10.0)
        cache.put("cheap-a", 2.0, cost=1e-6)
        cache.put("cheap-b", 3.0, cost=1e-6)  # pressure: one entry must go
        assert cache.get("costly") == 1.0  # ... and it is not the costly one
        assert cache.get("cheap-a") is None

    def test_lru_policy_is_exact_lru(self):
        cache = UtilityCache(max_entries=2, policy="lru")
        cache.put("a", 1.0, cost=100.0)  # cost carries no weight under lru
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # freshen a; b is now least recent
        cache.put("c", 3.0)
        assert cache.get("b") is None
        assert cache.get("a") == 1.0 and cache.get("c") == 3.0

    def test_byte_budget_enforced(self):
        cache = UtilityCache(max_entries=100, max_bytes=200)
        for index in range(10):
            cache.put(index, np.zeros(8))  # 64 bytes each
        assert cache.nbytes <= 200
        assert len(cache) == 3  # 3 x 64 = 192 fits, a fourth would not

    def test_oversized_value_never_admitted(self):
        cache = UtilityCache(max_entries=10, max_bytes=100)
        cache.put("small", np.zeros(8))
        evicted = cache.put("huge", np.zeros(1000))  # 8000 B > the whole budget
        assert evicted == 0
        assert cache.get("huge") is None
        assert cache.get("small") is not None  # the resident entry kept its seat

    def test_tie_break_is_insertion_order(self):
        cache = UtilityCache(max_entries=3)
        for name in ("a", "b", "c"):
            cache.put(name, name, cost=0.5)  # identical priorities
        cache.put("d", "d", cost=0.5)
        assert cache.get("a") is None  # oldest insertion loses the tie
        assert cache.get("b") == "b" and cache.get("c") == "c"

    def test_frequency_raises_priority(self):
        cache = UtilityCache(max_entries=2)
        cache.put("hot", 1.0, cost=0.1)
        cache.put("cold", 2.0, cost=0.1)
        for _ in range(5):
            cache.get("hot")
        cache.put("new", 3.0, cost=0.1)
        assert cache.get("cold") is None
        assert cache.get("hot") == 1.0

    def test_eviction_is_pure_function_of_history(self):
        def survivors():
            cache = UtilityCache(max_entries=4, max_bytes=512)
            for index in range(16):
                cache.put(("k", index), np.full(4, float(index)), cost=1e-4 * (index % 5))
                if index % 3 == 0:
                    cache.get(("k", index - 1))
            return sorted(cache._data), cache.nbytes

        assert survivors() == survivors()

    def test_costless_entries_follow_frequency_aged_fifo(self):
        """Entries stored without a cost must evict in an order independent
        of their byte size (the neutral utility term)."""
        cache = UtilityCache(max_entries=2)
        cache.put("big-old", np.zeros(1000))
        cache.put("small-new", 1.0)
        cache.put("third", 2.0)
        assert cache.get("big-old") is None  # oldest goes, size irrelevant
        assert cache.get("small-new") == 1.0

    def test_value_nbytes_estimates(self):
        assert value_nbytes(np.zeros(8)) == 64
        assert value_nbytes(b"12345") == 5
        assert value_nbytes((np.zeros(4), np.zeros(4))) > 64
        assert value_nbytes(1.5) > 0


class TestCostChannelConformance:
    def test_put_accepts_cost_and_roundtrips(self, any_backend):
        value = np.arange(6, dtype=np.float64)
        any_backend.put("ns", LOCAL_BOUNDED_REGION, "k", value, cost=0.25)
        got = any_backend.get("ns", LOCAL_BOUNDED_REGION, "k")
        np.testing.assert_array_equal(got, value)

    def test_cost_none_keeps_old_signature_working(self, any_backend):
        any_backend.put("ns", "result", ("q",), 1.5)
        assert any_backend.get("ns", "result", ("q",)) == 1.5


class TestCostAwareLocalBackend:
    def _flood(self, backend):
        backend.put("ns", LOCAL_BOUNDED_REGION, "gold", 1.0, cost=5.0)
        for index in range(10):
            backend.put("ns", LOCAL_BOUNDED_REGION, f"cheap{index}", float(index), cost=1e-6)

    def test_cost_policy_keeps_what_lru_forgets(self):
        costly = LocalCacheBackend(max_entries=4)
        self._flood(costly)
        assert costly.get("ns", LOCAL_BOUNDED_REGION, "gold") == 1.0
        recency = LocalCacheBackend(max_entries=4, policy="lru")
        self._flood(recency)
        assert recency.get("ns", LOCAL_BOUNDED_REGION, "gold") is None

    def test_byte_budget_bounds_every_store(self):
        backend = LocalCacheBackend(max_entries=100, max_bytes=256)
        for index in range(10):
            backend.put("ns", LOCAL_BOUNDED_REGION, index, np.zeros(8))
        assert 0 < backend.byte_count("ns") <= 256

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            LocalCacheBackend(max_entries=4, policy="random")
        with pytest.raises(ValueError):
            UtilityCache(max_entries=4, policy="random")

    def test_make_backend_threads_policy_and_budget(self):
        backend = make_backend("local", 8, policy="lru", max_bytes=1024)
        assert backend.policy == "lru" and backend.max_bytes == 1024
        shared = make_backend("shared", 8, policy="lru", max_bytes=1024)
        try:
            assert shared.policy == "lru"
            assert shared.max_shared_bytes == 1024 * 16
        finally:
            shared.close()


# ----------------------------------------------------------------------
# the parity acceptance criterion: eviction policy, byte budget and
# warming mode change *when* work happens, never what is computed
# ----------------------------------------------------------------------
class TestEvictionParity:
    QUERIES = ("Qc1", "Qs2")

    @pytest.fixture()
    def tiny_config(self):
        from repro.evaluation.experiments import ExperimentConfig

        return ExperimentConfig(
            epsilons=(0.1, 1.0),
            trials=2,
            scale_factor=1.0,
            rows_per_scale_factor=6000,
            seed=11,
        )

    def _rows(self, config):
        from repro.evaluation.experiments import table1
        from repro.evaluation.parallel import evaluation_session

        with evaluation_session(config):
            result = table1.run(config, query_names=self.QUERIES)
        return [{k: v for k, v in row.items() if k != "mean_time_s"} for row in result.rows]

    def test_policy_budget_and_warming_change_no_bytes(self, tiny_config):
        reference = self._rows(tiny_config)
        variants = [
            dataclasses.replace(tiny_config, cache_policy="lru"),
            dataclasses.replace(tiny_config, cache_max_bytes=4096, cache_size=8),
            dataclasses.replace(
                tiny_config, cache_policy="lru", cache_max_bytes=2048, cache_size=4
            ),
            dataclasses.replace(tiny_config, warm_ahead=True),
            dataclasses.replace(
                tiny_config, cache_backend="shared", cache_max_bytes=4096, jobs=2
            ),
        ]
        for config in variants:
            assert self._rows(config) == reference, config

    def test_remote_parity_under_tiny_budget_with_warming(self, tiny_config):
        reference = self._rows(tiny_config)
        with CacheServerThread(max_entries=64, max_bytes=1 << 16) as handle:
            config = dataclasses.replace(
                tiny_config,
                cache_backend="remote",
                cache_url=f"127.0.0.1:{handle.server.port}",
                cache_size=8,
                cache_max_bytes=4096,
                warm_ahead=True,
            )
            assert self._rows(config) == reference
