"""Snowflake queries Qtc and Qts (paper Section 6, Figure 10).

The paper picks one COUNT and one SUM query from TPC-H to evaluate PM on a
snowflake model.  In this reproduction the snowflake instance is the SSB
schema with ``Date`` normalised into a ``Month`` dimension
(:mod:`repro.datagen.tpch`); the two queries below follow the paper's example
transformation of the star query — ``Date.month < 7`` becomes a predicate on
the outer ``Month`` table — combined with a region filter, giving a count and
a sum query whose predicates span a snowflaked and a direct dimension.
"""

from __future__ import annotations

from typing import Optional

from repro.datagen.tpch import snowflake_schema
from repro.db.predicates import PointPredicate, RangePredicate
from repro.db.query import StarJoinQuery
from repro.db.schema import StarSchema

__all__ = ["tpch_count_query", "tpch_sum_query", "snowflake_queries"]


def _month_range(schema: StarSchema, low: int, high: int) -> RangePredicate:
    domain = schema.table_schema("Month").domain_of("month")
    return RangePredicate(table="Month", attribute="month", domain=domain, low=low, high=high)


def _customer_region(schema: StarSchema, region: str) -> PointPredicate:
    domain = schema.table_schema("Customer").domain_of("region")
    return PointPredicate(table="Customer", attribute="region", domain=domain, value=region)


def tpch_count_query(schema: Optional[StarSchema] = None) -> StarJoinQuery:
    """Qtc: COUNT of first-half-year orders from ASIA customers (snowflake)."""
    schema = schema or snowflake_schema()
    return StarJoinQuery.count(
        "Qtc",
        [
            _month_range(schema, 1, 6),
            _customer_region(schema, "ASIA"),
        ],
    )


def tpch_sum_query(schema: Optional[StarSchema] = None) -> StarJoinQuery:
    """Qts: SUM(revenue) of first-half-year orders from AMERICA customers."""
    schema = schema or snowflake_schema()
    return StarJoinQuery.sum(
        "Qts",
        "revenue",
        [
            _month_range(schema, 1, 6),
            _customer_region(schema, "AMERICA"),
        ],
    )


def snowflake_queries(schema: Optional[StarSchema] = None) -> list[StarJoinQuery]:
    """Both snowflake evaluation queries, Qtc and Qts."""
    schema = schema or snowflake_schema()
    return [tpch_count_query(schema), tpch_sum_query(schema)]
