"""``python -m repro.serving`` starts the JSON-line query server."""

from repro.serving.server import main

if __name__ == "__main__":
    raise SystemExit(main())
