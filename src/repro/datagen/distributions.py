"""Key and measure samplers with controllable skew.

The paper studies how PM behaves as the data distribution departs from
uniform (Figures 7 and 11): it constructs SSB instances whose values follow
Uniform, Exponential, Gamma and Gaussian-mixture distributions.  This module
provides the corresponding samplers in two flavours:

* :class:`KeySampler` — draws *ordinal codes* in ``[0, size)``; used for the
  fact table's foreign keys and dictionary-encoded dimension attributes, which
  is what drives the distribution dependence of COUNT queries.
* :class:`MeasureSampler` — draws continuous measure values; drives the
  distribution dependence of SUM queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy import stats

from repro.exceptions import DataGenerationError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "KeySampler",
    "MeasureSampler",
    "key_sampler",
    "measure_sampler",
    "GaussianMixtureSpec",
    "KEY_DISTRIBUTIONS",
    "MEASURE_DISTRIBUTIONS",
]


@dataclass(frozen=True)
class GaussianMixtureSpec:
    """A two-component Gaussian mixture used by the Figure 11 experiments.

    ``means`` / ``stds`` are expressed as fractions of the domain size (or of
    the measure range), so the same spec is reusable across differently sized
    domains; ``weights`` are the mixture weights.
    """

    means: tuple[float, float]
    stds: tuple[float, float]
    weights: tuple[float, float] = (0.5, 0.5)

    def __post_init__(self) -> None:
        if len(self.means) != 2 or len(self.stds) != 2 or len(self.weights) != 2:
            raise DataGenerationError("Gaussian mixtures here use exactly two components")
        if any(s <= 0 for s in self.stds):
            raise DataGenerationError("mixture standard deviations must be positive")
        if abs(sum(self.weights) - 1.0) > 1e-9:
            raise DataGenerationError("mixture weights must sum to one")


class KeySampler:
    """Samples ordinal codes in ``[0, size)`` according to a fixed shape."""

    def __init__(self, name: str, probability_fn: Callable[[int], np.ndarray]):
        self.name = name
        self._probability_fn = probability_fn

    def probabilities(self, size: int) -> np.ndarray:
        """The probability vector over ``size`` codes."""
        if size <= 0:
            raise DataGenerationError("domain size must be positive")
        probabilities = np.asarray(self._probability_fn(size), dtype=np.float64)
        probabilities = np.clip(probabilities, 1e-12, None)
        return probabilities / probabilities.sum()

    def sample(self, size: int, count: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``count`` codes from ``[0, size)``."""
        generator = ensure_rng(rng)
        probabilities = self.probabilities(size)
        # ``Generator.choice`` with an explicit probability vector is an order
        # of magnitude slower than the uniform integer sampler; a flat vector
        # is the common case (every figure except the skew studies), so route
        # it through ``integers``.
        if probabilities.size and probabilities.max() - probabilities.min() < 1e-15:
            return generator.integers(0, size, size=count, dtype=np.int64)
        return generator.choice(size, size=count, p=probabilities).astype(np.int64)


class MeasureSampler:
    """Samples continuous measure values in a configurable positive range."""

    def __init__(self, name: str, draw_fn: Callable[[np.random.Generator, int], np.ndarray]):
        self.name = name
        self._draw_fn = draw_fn

    def sample(self, count: int, rng: RngLike = None, low: float = 1.0, high: float = 100.0) -> np.ndarray:
        """Draw ``count`` values, rescaled into ``[low, high]``."""
        if high <= low:
            raise DataGenerationError("measure range must satisfy high > low")
        generator = ensure_rng(rng)
        raw = np.asarray(self._draw_fn(generator, count), dtype=np.float64)
        if raw.size == 0:
            return raw
        spread = raw.max() - raw.min()
        if spread == 0:
            normalised = np.zeros_like(raw)
        else:
            normalised = (raw - raw.min()) / spread
        return low + normalised * (high - low)


# ----------------------------------------------------------------------
# key-distribution shapes (probability over ordinal positions)
# ----------------------------------------------------------------------
def _uniform_probabilities(size: int) -> np.ndarray:
    return np.full(size, 1.0 / size)


def _exponential_probabilities(size: int, scale_fraction: float = 0.25) -> np.ndarray:
    positions = np.arange(size)
    return np.exp(-positions / max(size * scale_fraction, 1.0))


def _gamma_probabilities(size: int, shape: float = 2.0, scale_fraction: float = 0.15) -> np.ndarray:
    positions = np.arange(size) + 0.5
    return stats.gamma.pdf(positions, a=shape, scale=max(size * scale_fraction, 1.0))


def _zipf_probabilities(size: int, exponent: float = 1.2) -> np.ndarray:
    positions = np.arange(1, size + 1, dtype=np.float64)
    return positions**-exponent


def _gaussian_mixture_probabilities(size: int, spec: GaussianMixtureSpec) -> np.ndarray:
    positions = np.arange(size, dtype=np.float64)
    density = np.zeros(size, dtype=np.float64)
    for weight, mean_fraction, std_fraction in zip(spec.weights, spec.means, spec.stds):
        mean = mean_fraction * size
        std = max(std_fraction * size, 0.5)
        density += weight * stats.norm.pdf(positions, loc=mean, scale=std)
    return density


KEY_DISTRIBUTIONS: dict[str, Callable[..., KeySampler]] = {}


def _register_key(name: str, builder: Callable[..., KeySampler]) -> None:
    KEY_DISTRIBUTIONS[name] = builder


_register_key("uniform", lambda: KeySampler("uniform", _uniform_probabilities))
_register_key(
    "exponential",
    lambda scale_fraction=0.25: KeySampler(
        "exponential", lambda size: _exponential_probabilities(size, scale_fraction)
    ),
)
_register_key(
    "gamma",
    lambda shape=2.0, scale_fraction=0.15: KeySampler(
        "gamma", lambda size: _gamma_probabilities(size, shape, scale_fraction)
    ),
)
_register_key(
    "zipf",
    lambda exponent=1.2: KeySampler("zipf", lambda size: _zipf_probabilities(size, exponent)),
)
_register_key(
    "gaussian_mixture",
    lambda spec=GaussianMixtureSpec(means=(0.3, 0.7), stds=(0.1, 0.1)): KeySampler(
        "gaussian_mixture", lambda size: _gaussian_mixture_probabilities(size, spec)
    ),
)


def key_sampler(name: str, **params) -> KeySampler:
    """Build a :class:`KeySampler` by name (``uniform`` / ``exponential`` /
    ``gamma`` / ``zipf`` / ``gaussian_mixture``)."""
    try:
        builder = KEY_DISTRIBUTIONS[name]
    except KeyError:
        raise DataGenerationError(
            f"unknown key distribution {name!r}; available: {sorted(KEY_DISTRIBUTIONS)}"
        ) from None
    return builder(**params)


# ----------------------------------------------------------------------
# measure-distribution shapes (continuous draws, rescaled by the caller)
# ----------------------------------------------------------------------
MEASURE_DISTRIBUTIONS: dict[str, Callable[..., MeasureSampler]] = {}


def _register_measure(name: str, builder: Callable[..., MeasureSampler]) -> None:
    MEASURE_DISTRIBUTIONS[name] = builder


_register_measure(
    "uniform", lambda: MeasureSampler("uniform", lambda rng, n: rng.uniform(0.0, 1.0, size=n))
)
_register_measure(
    "exponential",
    lambda scale=1.0: MeasureSampler(
        "exponential", lambda rng, n: rng.exponential(scale, size=n)
    ),
)
_register_measure(
    "gamma",
    lambda shape=2.0, scale=1.0: MeasureSampler(
        "gamma", lambda rng, n: rng.gamma(shape, scale, size=n)
    ),
)
_register_measure(
    "gaussian_mixture",
    lambda spec=GaussianMixtureSpec(means=(0.3, 0.7), stds=(0.1, 0.1)): MeasureSampler(
        "gaussian_mixture",
        lambda rng, n, _spec=spec: _draw_gaussian_mixture(rng, n, _spec),
    ),
)


def _draw_gaussian_mixture(
    rng: np.random.Generator, count: int, spec: GaussianMixtureSpec
) -> np.ndarray:
    component = rng.choice(2, size=count, p=np.asarray(spec.weights))
    means = np.asarray(spec.means)[component]
    stds = np.asarray(spec.stds)[component]
    return rng.normal(means, stds)


def measure_sampler(name: str, **params) -> MeasureSampler:
    """Build a :class:`MeasureSampler` by name."""
    try:
        builder = MEASURE_DISTRIBUTIONS[name]
    except KeyError:
        raise DataGenerationError(
            f"unknown measure distribution {name!r}; available: {sorted(MEASURE_DISTRIBUTIONS)}"
        ) from None
    return builder(**params)
