"""Vectorized, cache-aware execution engine for star-join workloads.

The evaluation harness answers every (mechanism, query, ε) combination over
repeated trials, so the same star-join selections, fan-out statistics and
data cubes are recomputed hundreds of times per experiment.  The
:class:`ExecutionEngine` is the shared layer that removes that redundancy: it
serves, per database instance,

* interned predicate fingerprints → fact-row selection masks (the semi-join
  results);
* per-dimension foreign-key codes and fan-out vectors (the statistics the
  LS / TM / R2T baselines are calibrated on);
* measure arrays (the unified accessor both the executor and the workload
  data cube draw from);
* per-key contribution vectors together with their sorted/prefix-summed form,
  so truncation mechanisms can evaluate every candidate threshold in
  ``O(log n)`` instead of re-scanning the selection;
* memoized exact query answers and data cubes.

The engine owns no cache storage.  Every artefact above is read and written
through a :class:`~repro.db.cache.CacheBackend` (see :mod:`repro.db.cache`
and ``docs/CACHE.md``) under the database's content-derived namespace, so the
same engine code runs against in-process storage (the default) or a
cross-worker shared-memory tier (``--cache-backend shared``) — the backend is
the seam, the engine only decides *what* is worth caching and how to compute
it on a miss.

All cached arrays are returned with ``writeable=False`` so accidental
mutation by a caller fails loudly instead of silently corrupting every later
read.  The engine assumes the underlying :class:`StarDatabase` is immutable
(the whole code base treats tables as frozen after construction); if a
database is ever mutated in place, call :meth:`invalidate`.

Engines are shared per database through :meth:`ExecutionEngine.for_database`,
which is what makes the caching effective across mechanisms, ε values and
trials without threading an engine handle through every call site.
"""

from __future__ import annotations

import time
import weakref
from collections import namedtuple
from typing import Any, Hashable, Optional, Sequence, Union

import numpy as np

from repro.db.cache import (
    CacheBackend,
    CacheStats,
    LocalCacheBackend,
    active_backend,
    measure_fingerprint,
    predicate_fingerprint,
    query_fingerprint,
    selection_fingerprint,
)
from repro.db.database import StarDatabase
from repro.db.predicates import ConjunctionPredicate, Predicate
from repro.db.query import AggregateKind, Measure, StarJoinQuery
from repro.db.storage.base import DEFAULT_CHUNK_ROWS, iter_chunks
from repro.exceptions import QueryError
from repro.obs.metrics import active_registry
from repro.obs.trace import add_to_span, record_timed

__all__ = ["ExecutionEngine", "predicate_fingerprint", "selection_fingerprint", "query_fingerprint"]


_CubeAxis = namedtuple("_CubeAxis", ["table", "attribute", "domain"])

#: Data cubes larger than this fall back to the semi-join plan.
_MAX_CUBE_CELLS = 1 << 21


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


#: Engines shared per database instance (weak keys: an engine dies with its db).
_SHARED_ENGINES: "weakref.WeakKeyDictionary[StarDatabase, ExecutionEngine]" = (
    weakref.WeakKeyDictionary()
)


def _release_engine_storage(engine: "ExecutionEngine") -> None:
    """Reclaim a dead database's in-process cache storage.

    Registered as a finalizer by :meth:`ExecutionEngine.for_database`: the
    pre-backend engine freed its caches when its database was garbage
    collected (weak-keyed registry), and a process-global backend must
    reproduce that bound or a run sweeping many databases would pin every
    instance's masks and cubes until namespace eviction.  ``release`` (not
    ``clear``) so the shared backend's cross-process tier survives — another
    worker's copy of the same logical database may still be live.

    Takes the engine (which only references its database weakly, so this
    cannot resurrect it) rather than a namespace string: ``invalidate()``
    rebinds the namespace after a mutation, and releasing a captured
    creation-time namespace would leave the post-mutation entries pinned.
    """
    try:
        engine.backend.release(engine.namespace)
    except Exception:  # pragma: no cover - interpreter-shutdown GC
        pass

#: Sentinel: route cache traffic to the process-wide active backend,
#: re-resolved on every access (see ``for_database``).
_ACTIVE_BACKEND = "active"


class ExecutionEngine:
    """Per-database execution layer over a pluggable cache backend.

    Parameters
    ----------
    database:
        The instance to execute against.
    max_mask_entries:
        LRU bound of the private backend created when ``backend`` is omitted.
    backend:
        Where cached artefacts live.  ``None`` (direct construction) creates
        a private :class:`~repro.db.cache.LocalCacheBackend` — a fully
        isolated engine, as tests and ablations expect.  The string
        ``"active"`` makes the engine resolve
        :func:`repro.db.cache.active_backend` dynamically on every access;
        :meth:`for_database` uses this so installing a run-wide backend
        (e.g. the shared one) takes effect for every shared engine at once,
        including engines that forked workers inherited.
    chunk_rows:
        Row-chunk size of the streaming kernels (masks, fan-out, measures,
        contributions, cubes).  ``None`` (the default) resolves automatically:
        a mapped fact table streams in :data:`~repro.db.storage.DEFAULT_CHUNK_ROWS`
        chunks so kernels never materialise a whole fact column, an in-memory
        fact table is read whole (chunking buys nothing there).  Every kernel
        is bit-exact for every chunk size — see ``docs/STORAGE.md`` and the
        chunk-sweep tests in ``tests/test_storage.py``.
    """

    def __init__(
        self,
        database: StarDatabase,
        max_mask_entries: int = 192,
        backend: Union[CacheBackend, str, None] = None,
        chunk_rows: Optional[int] = None,
    ):
        # Weak on purpose: the shared-engine registry maps database -> engine,
        # and a strong engine -> database edge would close the value -> key
        # cycle that keeps a WeakKeyDictionary entry alive forever — no
        # database obtained through ``for_database`` could ever be freed.
        # Every caller that uses an engine necessarily holds its database.
        self._database_ref = weakref.ref(database)
        if backend is None:
            backend = LocalCacheBackend(max_mask_entries)
        self._backend_ref = backend
        self._namespace = database.cache_fingerprint()
        if chunk_rows is None and database.storage_kind == "mapped":
            chunk_rows = DEFAULT_CHUNK_ROWS
        self._chunk_rows = chunk_rows

    @property
    def database(self) -> StarDatabase:
        database = self._database_ref()
        if database is None:  # pragma: no cover - misuse guard
            raise ReferenceError(
                "the engine's database has been garbage-collected; keep a "
                "reference to the database for as long as its engine is used"
            )
        return database

    @property
    def backend(self) -> CacheBackend:
        """The cache backend currently serving this engine."""
        if self._backend_ref is _ACTIVE_BACKEND:
            return active_backend()
        return self._backend_ref

    @property
    def namespace(self) -> str:
        """The content-derived namespace this engine's keys live under."""
        return self._namespace

    @property
    def chunk_rows(self) -> Optional[int]:
        """Row-chunk size of the streaming kernels (``None`` = whole-array)."""
        return self._chunk_rows

    def _get(self, region: str, key: Hashable) -> Any:
        # Every cache lookup in the system funnels through here, so this is
        # the one instrumentation point for cache-outcome telemetry: the
        # process registry counts hits/misses, and the current trace span
        # (if a request is being traced) accumulates its own outcome tally.
        value = self.backend.get(self._namespace, region, key)
        if value is not None:
            active_registry().counter("engine_cache_hits_total").inc()
            add_to_span("cache_hits")
        else:
            active_registry().counter("engine_cache_misses_total").inc()
            add_to_span("cache_misses")
        return value

    def _put(self, region: str, key: Hashable, value: Any, cost: Optional[float] = None) -> None:
        """Store an artefact, with the wall-clock its computation took.

        The cost is eviction-steering metadata only — a backend that predates
        the cost channel (or a test double) is fed through the old four-arg
        signature, and values are never affected either way.
        """
        active_registry().counter("engine_cache_puts_total").inc()
        if cost is None:
            self.backend.put(self._namespace, region, key, value)
            return
        # The measured recompute cost doubles as a ready-made trace span:
        # when a request is being traced, each kernel computation shows up
        # as `engine.<region>` without any extra clock reads.
        record_timed(f"engine.{region}", cost, region=region)
        try:
            self.backend.put(self._namespace, region, key, value, cost)
        except TypeError:
            self.backend.put(self._namespace, region, key, value)

    # ------------------------------------------------------------------
    @classmethod
    def for_database(cls, database: StarDatabase) -> "ExecutionEngine":
        """The shared engine of ``database`` (created on first request).

        Every :class:`~repro.db.executor.QueryExecutor` built without an
        explicit engine goes through here, which is what makes selections,
        statistics and exact answers shared across mechanisms and trials.
        Shared engines route to the process-wide active cache backend.
        """
        engine = _SHARED_ENGINES.get(database)
        if engine is None:
            engine = cls(database, backend=_ACTIVE_BACKEND)
            _SHARED_ENGINES[database] = engine
            weakref.finalize(database, _release_engine_storage, engine)
        return engine

    def invalidate(self) -> None:
        """Drop every cache entry (required after an in-place database mutation)
        and reset the backend's hit/miss/eviction counters.

        The namespace is recomputed from the mutated content, so entries
        another engine (or another process, on the shared backend) filed
        under the old content can never be served for the new one — and the
        old namespace is cleared outright so stale cubes and memoized answers
        do not linger in storage either.

        The counter reset applies to the whole serving backend (counters are
        backend-global, not per namespace), so invalidating one engine that
        routes to the run-wide backend zeroes the run's statistics.  That is
        deliberate: mutation + invalidation is an exceptional event, and
        hit rates mixing pre- and post-invalidation traffic would mislead.
        """
        backend = self.backend
        backend.clear(self._namespace)
        self._namespace = self.database.cache_fingerprint(refresh=True)
        backend.clear(self._namespace)
        backend.reset_stats()

    def stats(self) -> CacheStats:
        """The serving backend's cache counters (hits / misses / evictions)."""
        return self.backend.stats()

    # ------------------------------------------------------------------
    # selections
    # ------------------------------------------------------------------
    def fact_mask(self, predicate: Predicate) -> np.ndarray:
        """Cached boolean fact-row mask of a single predicate (read-only)."""
        fingerprint = predicate_fingerprint(predicate)
        if fingerprint is None:
            return self.database.fact_mask_for_predicate(predicate, self._chunk_rows)
        mask = self._get("predicate_mask", fingerprint)
        if mask is None:
            began = time.perf_counter()
            mask = _freeze(
                self.database.fact_mask_for_predicate(predicate, self._chunk_rows)
            )
            self._put("predicate_mask", fingerprint, mask, time.perf_counter() - began)
        return mask

    def selection_mask(self, predicates: ConjunctionPredicate) -> np.ndarray:
        """Cached boolean fact-row mask of a conjunction Φ (read-only)."""
        fingerprint = selection_fingerprint(predicates)
        if fingerprint is not None:
            cached = self._get("selection_mask", fingerprint)
            if cached is not None:
                return cached
        began = time.perf_counter()
        mask: Optional[np.ndarray] = None
        for predicate in predicates:
            predicate_mask = self.fact_mask(predicate)
            if mask is None:
                mask = predicate_mask.copy()
            else:
                mask &= predicate_mask
        if mask is None:
            mask = np.ones(self.database.num_fact_rows, dtype=bool)
        mask = _freeze(mask)
        if fingerprint is not None:
            self._put("selection_mask", fingerprint, mask, time.perf_counter() - began)
        return mask

    def selected_count(self, predicates: ConjunctionPredicate) -> int:
        return int(self.selection_mask(predicates).sum())

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def fan_out(self, dimension_name: str) -> np.ndarray:
        """Cached unfiltered fan-out vector of a direct dimension (read-only)."""
        counts = self._get("fan_out", dimension_name)
        if counts is None:
            began = time.perf_counter()
            counts = _freeze(
                self.database.fan_out(dimension_name, chunk_rows=self._chunk_rows)
            )
            self._put("fan_out", dimension_name, counts, time.perf_counter() - began)
        return counts

    def max_fan_out(self, dimension_name: str) -> int:
        value = self._get("max_fan_out", dimension_name)
        if value is None:
            began = time.perf_counter()
            counts = self.fan_out(dimension_name)
            value = int(counts.max()) if counts.size else 0
            self._put("max_fan_out", dimension_name, value, time.perf_counter() - began)
        return value

    def measure_values(self, measure: Union[Measure, str]) -> np.ndarray:
        """The measure expression over every fact row, cached (read-only).

        Accepts either a :class:`~repro.db.query.Measure` or a bare column
        name; both resolve through the same path, so cube-based and
        executor-based SUM answers are computed from the same array.
        """
        if isinstance(measure, str):
            measure = Measure(measure)
        fingerprint = measure_fingerprint(measure)
        values = self._get("measure", fingerprint)
        if values is None:
            began = time.perf_counter()
            fact = self.database.fact
            if self._chunk_rows is None:
                values = np.asarray(fact.codes(measure.column), dtype=np.float64)
                if measure.subtract is not None:
                    values = values - np.asarray(
                        fact.codes(measure.subtract), dtype=np.float64
                    )
            else:
                # Stream the source column(s); the float64 cast and the
                # subtraction are elementwise, so chunked assembly is
                # bit-identical to the whole-array expression.
                values = np.empty(fact.num_rows, dtype=np.float64)
                for start, stop in iter_chunks(fact.num_rows, self._chunk_rows):
                    chunk = np.asarray(
                        fact.read_chunk(measure.column, start, stop), dtype=np.float64
                    )
                    if measure.subtract is not None:
                        chunk = chunk - np.asarray(
                            fact.read_chunk(measure.subtract, start, stop),
                            dtype=np.float64,
                        )
                    values[start:stop] = chunk
            values = _freeze(values)
            self._put("measure", fingerprint, values, time.perf_counter() - began)
        return values

    # ------------------------------------------------------------------
    # per-key contributions (truncation mechanisms)
    # ------------------------------------------------------------------
    def _contribution_key(
        self,
        predicates: ConjunctionPredicate,
        dimension_name: str,
        kind: AggregateKind,
        measure: Optional[Union[Measure, str]],
    ) -> Optional[Hashable]:
        selection = selection_fingerprint(predicates)
        if selection is None:
            return None
        measure_key = None if kind is AggregateKind.COUNT else measure_fingerprint(
            Measure(measure) if isinstance(measure, str) else measure
        )
        return (selection, dimension_name, kind.value, measure_key)

    def contribution_per_key(
        self,
        predicates: ConjunctionPredicate,
        dimension_name: str,
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[Union[Measure, str]] = None,
    ) -> np.ndarray:
        """Per-dimension-key contribution to the selected aggregate (read-only)."""
        if kind is not AggregateKind.COUNT and measure is None:
            raise QueryError("per-key SUM contributions require a measure")
        key = self._contribution_key(predicates, dimension_name, kind, measure)
        if key is not None:
            cached = self._get("contribution", key)
            if cached is not None:
                return cached
        began = time.perf_counter()
        mask = self.selection_mask(predicates)
        database = self.database
        fk_column = database.schema.foreign_key_for(dimension_name).fact_column
        dim_rows = database.dimension(dimension_name).num_rows
        if kind is AggregateKind.COUNT:
            # Chunk-wise integer bincount partials; integer addition is
            # exact, so any chunking matches the one-pass bincount bit for
            # bit (and ``astype`` at the end matches the old float cast).
            counts = database.fan_out(
                dimension_name, fact_mask=mask, chunk_rows=self._chunk_rows
            )
            per_key = counts.astype(np.float64)
        else:
            # The chunked gather preserves selection order, so this single
            # weighted bincount sees exactly the rows (in exactly the order)
            # the whole-column ``codes[mask]`` expression produced.
            codes = database.selected_fact_codes(fk_column, mask, self._chunk_rows)
            weights = self.measure_values(measure)[mask]
            per_key = np.bincount(codes, weights=weights, minlength=dim_rows)
        per_key = _freeze(per_key)
        if key is not None:
            self._put("contribution", key, per_key, time.perf_counter() - began)
        return per_key

    def sorted_contributions(
        self,
        predicates: ConjunctionPredicate,
        dimension_name: str,
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[Union[Measure, str]] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted per-key contributions, exclusive prefix sums)``.

        With these two arrays a truncated aggregate at any threshold τ is
        ``prefix[i] + τ · (n − i)`` where ``i = searchsorted(sorted, τ)`` —
        evaluating a whole geometric ladder of thresholds costs one sort
        instead of one full scan per candidate.
        """
        key = self._contribution_key(predicates, dimension_name, kind, measure)
        if key is not None:
            cached = self._get("sorted_contribution", key)
            if cached is not None:
                return cached
        began = time.perf_counter()
        per_key = self.contribution_per_key(predicates, dimension_name, kind, measure)
        ordered = np.sort(per_key)
        prefix = np.concatenate([[0.0], np.cumsum(ordered)])
        pair = (_freeze(ordered), _freeze(prefix))
        if key is not None:
            self._put("sorted_contribution", key, pair, time.perf_counter() - began)
        return pair

    @staticmethod
    def truncated_sum_from_sorted(
        ordered: np.ndarray, prefix: np.ndarray, threshold: float
    ) -> float:
        """``Σ_k min(contribution_k, τ)`` from :meth:`sorted_contributions`."""
        index = int(np.searchsorted(ordered, threshold, side="right"))
        return float(prefix[index] + threshold * (ordered.size - index))

    # ------------------------------------------------------------------
    # data cubes (workload answering)
    # ------------------------------------------------------------------
    def data_cube(
        self,
        attributes: Sequence[Any],
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[Union[Measure, str]] = None,
    ) -> np.ndarray:
        """Memoized data cube over workload attributes (read-only).

        ``attributes`` are :class:`~repro.core.workload.WorkloadAttribute`
        instances (typed loosely to avoid an import cycle).  The cube is built
        with ``np.bincount`` over ``np.ravel_multi_index`` composite codes,
        which is substantially faster than ``np.add.at`` on the same shapes.
        """
        if kind is AggregateKind.AVG:
            raise QueryError("data cubes support COUNT and SUM only")
        measure_key = None
        if kind is not AggregateKind.COUNT:
            if measure is None:
                raise QueryError("SUM data cubes require a measure column")
            measure_key = measure_fingerprint(
                Measure(measure) if isinstance(measure, str) else measure
            )
        key = (
            tuple(
                (attribute.table, attribute.attribute, attribute.domain.size)
                for attribute in attributes
            ),
            kind.value,
            measure_key,
        )
        cube = self._get("cube", key)
        if cube is not None:
            return cube

        began = time.perf_counter()
        database = self.database
        shape = tuple(attribute.domain.size for attribute in attributes)
        for attribute in attributes:
            if attribute.table != database.fact.name and not database.is_direct_dimension(
                attribute.table
            ):
                raise QueryError(
                    "workload attributes must live on the fact table or a "
                    "direct dimension table"
                )
        if not attributes:
            shape = ()
        length = int(np.prod(shape, dtype=np.int64)) if shape else 1
        weights = self.measure_values(measure) if kind is not AggregateKind.COUNT else None

        def chunk_codes(attribute, start: int, stop: int) -> np.ndarray:
            """Composite-code input for fact rows [start, stop): the fact
            column itself, or the dimension attribute gathered through the
            FK codes of those rows."""
            if attribute.table == database.fact.name:
                return np.asarray(database.fact.read_chunk(attribute.attribute, start, stop))
            fk_column = database.schema.foreign_key_for(attribute.table).fact_column
            fk_codes = database.fact.read_chunk(fk_column, start, stop)
            return np.asarray(database.table(attribute.table).codes(attribute.attribute))[
                fk_codes
            ]

        if self._chunk_rows is None:
            if attributes:
                flat = np.ravel_multi_index(
                    tuple(
                        chunk_codes(attribute, 0, database.num_fact_rows)
                        for attribute in attributes
                    ),
                    shape,
                )
            else:
                flat = np.zeros(database.num_fact_rows, dtype=np.int64)
            if kind is AggregateKind.COUNT:
                cube = np.bincount(flat, minlength=length).astype(np.float64)
            else:
                cube = np.bincount(flat, weights=weights, minlength=length)
        else:
            counts: Optional[np.ndarray] = None  # COUNT: exact integer partials
            acc: Optional[np.ndarray] = None  # SUM: strictly in-order float adds
            for start, stop in iter_chunks(database.num_fact_rows, self._chunk_rows):
                if attributes:
                    flat = np.ravel_multi_index(
                        tuple(
                            chunk_codes(attribute, start, stop)
                            for attribute in attributes
                        ),
                        shape,
                    )
                else:
                    flat = np.zeros(stop - start, dtype=np.int64)
                if kind is AggregateKind.COUNT:
                    partial = np.bincount(flat, minlength=length)
                    counts = partial if counts is None else counts + partial
                else:
                    if acc is None:
                        acc = np.zeros(length, dtype=np.float64)
                    # np.add.at applies the adds unbuffered in array order,
                    # which chunk-sequentially reproduces the exact
                    # accumulation order of the whole-column weighted
                    # bincount above — bit-identical float64 cube for every
                    # chunking (pinned by the chunk-sweep tests).
                    np.add.at(acc, flat, weights[start:stop])
            cube = counts.astype(np.float64) if kind is AggregateKind.COUNT else acc
        cube = _freeze(cube.reshape(shape))
        self._put("cube", key, cube, time.perf_counter() - began)
        return cube

    # ------------------------------------------------------------------
    # cube-served scalar counts
    # ------------------------------------------------------------------
    def count_answer_via_cube(self, query: StarJoinQuery) -> Optional[float]:
        """Answer a scalar COUNT query by contracting the memoized data cube.

        The Predicate Mechanism executes a *different* noisy query on every
        trial, so selection-mask caching cannot help it — but all those noisy
        queries share the original query's predicate attributes.  Building the
        COUNT cube over that attribute set once turns each subsequent
        execution into a small sub-cube sum (the paper's own Section 5.3
        device, applied to single queries).  Counts are integers, so the cube
        contraction is exactly the semi-join count.

        Returns ``None`` when the query is not cube-eligible (GROUP BY, SUM /
        AVG, snowflaked or duplicate predicate attributes, domain mismatch, or
        a cube that would exceed :data:`_MAX_CUBE_CELLS`); callers fall back
        to the semi-join plan.
        """
        if query.is_grouped or query.kind is not AggregateKind.COUNT:
            return None
        predicates = list(query.predicates)
        if not predicates:
            return None
        database = self.database
        seen: set[tuple[str, str]] = set()
        pairs = []
        cells = 1
        for predicate in predicates:
            key = (predicate.table, predicate.attribute)
            if key in seen or predicate.domain is None:
                return None
            seen.add(key)
            if predicate.table != database.fact.name and not database.is_direct_dimension(
                predicate.table
            ):
                return None
            column_domain = database.table(predicate.table).domain(predicate.attribute)
            if column_domain is None or column_domain.size != predicate.domain.size:
                return None
            cells *= predicate.domain.size
            if cells > _MAX_CUBE_CELLS:
                return None
            pairs.append((predicate, _CubeAxis(*key, predicate.domain)))
        # Canonical axis order, so every predicate ordering reuses one cube.
        pairs.sort(key=lambda pair: (pair[1].table, pair[1].attribute))
        cube = self.data_cube(tuple(axis for _, axis in pairs), kind=AggregateKind.COUNT)
        selectors = tuple(
            predicate.evaluate_codes(np.arange(axis.domain.size, dtype=np.int64))
            for predicate, axis in pairs
        )
        return float(cube[np.ix_(*selectors)].sum())

    # ------------------------------------------------------------------
    # exact results
    # ------------------------------------------------------------------
    def cached_result(self, query: StarJoinQuery) -> Optional[Any]:
        """A memoized exact answer of ``query``, or ``None``."""
        fingerprint = query_fingerprint(query)
        if fingerprint is None:
            return None
        return self._get("result", fingerprint)

    def store_result(
        self, query: StarJoinQuery, result: Any, cost: Optional[float] = None
    ) -> None:
        """Memoize an exact answer; ``cost`` is the wall-clock the caller
        spent computing it (the executor times its own execution — the
        engine cannot see that work)."""
        fingerprint = query_fingerprint(query)
        if fingerprint is not None:
            self._put("result", fingerprint, result, cost)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = self.backend
        stats = backend.stats()
        return (
            f"ExecutionEngine(db={self.database.fact.name!r}, "
            f"namespace={self._namespace[:8]!r}, backend={backend.name}, "
            f"entries={backend.entry_count(self._namespace)}, "
            f"hits={stats.hits}, misses={stats.misses}, evictions={stats.evictions}, "
            f"shared_hits={stats.shared_hits})"
        )
