"""Scenario-dependent neighbouring database instances (paper Section 3.2).

The paper's Definition 3.7 ((a, b)-private) distinguishes which tables of the
star schema are sensitive:

* ``(1, 0)``-private — only the fact table is private; neighbours differ in a
  single fact tuple.
* ``(0, k)``-private — k dimension tables are private; neighbours are obtained
  by deleting one tuple from each private dimension table *and* every fact
  tuple referencing (the conjunction of) those tuples, to preserve the
  foreign-key constraints.
* ``(1, k)``-private — both: a fact tuple may additionally differ.

:class:`PrivacyScenario` captures the (a, b) choice; :func:`generate_neighbor`
materialises a concrete neighbouring :class:`~repro.db.database.StarDatabase`,
which the tests use both to validate the asymmetry the paper describes and to
empirically check mechanism behaviour on neighbouring instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.db.database import StarDatabase
from repro.db.table import Column, Table
from repro.exceptions import SchemaError
from repro.rng import RngLike, ensure_rng

__all__ = ["PrivacyScenario", "NeighborhoodPolicy", "generate_neighbor"]


@dataclass(frozen=True)
class PrivacyScenario:
    """Which tables of the star schema are private ((a, b)-private).

    Parameters
    ----------
    fact_private:
        ``a = 1`` when True.
    private_dimensions:
        Names of the private dimension tables (``b`` of them).
    """

    fact_private: bool = False
    private_dimensions: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.fact_private and not self.private_dimensions:
            raise SchemaError("at least one table must be private (a + b >= 1)")

    @property
    def a(self) -> int:
        return 1 if self.fact_private else 0

    @property
    def b(self) -> int:
        return len(self.private_dimensions)

    @property
    def label(self) -> str:
        return f"({self.a}, {self.b})-private"

    @classmethod
    def fact_only(cls) -> "PrivacyScenario":
        """The (1, 0)-private scenario."""
        return cls(fact_private=True)

    @classmethod
    def dimensions(cls, *names: str) -> "PrivacyScenario":
        """The (0, k)-private scenario over the named dimension tables."""
        return cls(fact_private=False, private_dimensions=tuple(names))

    @classmethod
    def full(cls, *names: str) -> "PrivacyScenario":
        """The (1, k)-private scenario."""
        return cls(fact_private=True, private_dimensions=tuple(names))


@dataclass(frozen=True)
class NeighborhoodPolicy:
    """How to pick the differing tuples when materialising a neighbour.

    ``dimension_keys`` optionally pins the deleted key (row position) of each
    private dimension; ``fact_row`` pins the deleted fact row in scenarios with
    a private fact table.  Unpinned choices are drawn uniformly at random.
    """

    dimension_keys: dict[str, int] = field(default_factory=dict)
    fact_row: Optional[int] = None


def _drop_dimension_row(table: Table, row: int) -> Table:
    """Return ``table`` with ``row`` removed."""
    keep = np.ones(table.num_rows, dtype=bool)
    keep[row] = False
    return table.filter(keep)


def _remap_codes_after_drop(codes: np.ndarray, dropped_row: int) -> np.ndarray:
    """Shift foreign-key codes after a dimension row has been removed."""
    remapped = codes.copy()
    remapped[codes > dropped_row] -= 1
    return remapped


def generate_neighbor(
    database: StarDatabase,
    scenario: PrivacyScenario,
    policy: Optional[NeighborhoodPolicy] = None,
    rng: RngLike = None,
) -> StarDatabase:
    """Materialise a neighbouring instance of ``database`` under ``scenario``.

    The returned database satisfies all foreign-key constraints: deleting a
    private dimension tuple also deletes every fact tuple referencing it (the
    conjunction of the chosen tuples when several dimensions are private), as
    the paper's (0, k) / (1, k) definitions require.
    """
    policy = policy or NeighborhoodPolicy()
    generator = ensure_rng(rng)

    new_dimensions = dict(database.dimensions)
    fact_keep = np.ones(database.num_fact_rows, dtype=bool)
    fk_remaps: dict[str, int] = {}

    if scenario.private_dimensions:
        # Fact rows referencing the conjunction of all chosen private tuples
        # are removed (the paper assigns a unique identifier to the
        # conjunction of foreign keys).
        reference_mask = np.ones(database.num_fact_rows, dtype=bool)
        for dim_name in scenario.private_dimensions:
            dim_table = database.dimension(dim_name)
            if dim_table.num_rows == 0:
                raise SchemaError(f"cannot pick a tuple from empty dimension {dim_name!r}")
            row = policy.dimension_keys.get(dim_name)
            if row is None:
                row = int(generator.integers(0, dim_table.num_rows))
            if not 0 <= row < dim_table.num_rows:
                raise SchemaError(
                    f"pinned row {row} outside dimension {dim_name!r} "
                    f"({dim_table.num_rows} rows)"
                )
            reference_mask &= database.fact_foreign_key_codes(dim_name) == row
            new_dimensions[dim_name] = _drop_dimension_row(dim_table, row)
            fk_remaps[dim_name] = row
        fact_keep &= ~reference_mask

    if scenario.fact_private:
        surviving = np.flatnonzero(fact_keep)
        if surviving.size:
            if policy.fact_row is not None:
                fact_row = policy.fact_row
                if not fact_keep[fact_row]:
                    raise SchemaError(
                        f"pinned fact row {fact_row} was already removed by the "
                        "dimension deletion"
                    )
            else:
                fact_row = int(generator.choice(surviving))
            fact_keep[fact_row] = False

    new_fact = database.fact.filter(fact_keep)

    # Remap foreign-key codes for the dimensions that lost a row.
    if fk_remaps:
        columns = []
        for column_name in new_fact.column_names:
            column = new_fact.column(column_name)
            values = column.values
            for dim_name, dropped_row in fk_remaps.items():
                fk = database.schema.foreign_key_for(dim_name)
                if column_name == fk.fact_column:
                    values = _remap_codes_after_drop(values, dropped_row)
            columns.append(Column(name=column_name, values=values, domain=column.domain))
        new_fact = Table(new_fact.name, columns)

    return StarDatabase(schema=database.schema, fact=new_fact, dimensions=new_dimensions)
