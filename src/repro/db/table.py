"""Columnar, numpy-backed tables.

Tables in the reproduction are deliberately simple: a named collection of
equally sized columns.  Columns over attributes with a declared
:class:`~repro.db.domains.AttributeDomain` store *ordinal codes* (``int64``)
rather than raw values, which keeps predicate evaluation, semi-joins and the
Predicate Mechanism's domain arithmetic purely numerical.  Columns without a
domain (e.g. the fact table's measure attributes) store their values
directly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.db.domains import AttributeDomain
from repro.exceptions import DomainError, SchemaError

__all__ = ["Column", "Table"]


@dataclass
class Column:
    """A single named column.

    Parameters
    ----------
    name:
        Column name.
    values:
        1-D numpy array.  When ``domain`` is given, the array must contain
        ordinal codes in ``[0, domain.size)``.
    domain:
        Optional attribute domain.  Present for dictionary-encoded columns
        (dimension attributes, foreign keys over enumerable key spaces).
    """

    name: str
    values: np.ndarray
    domain: Optional[AttributeDomain] = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise SchemaError(f"column {self.name!r} must be one-dimensional")
        if self.domain is not None:
            self.values = self.values.astype(np.int64, copy=False)
            if self.values.size:
                lo = int(self.values.min())
                hi = int(self.values.max())
                if lo < 0 or hi >= self.domain.size:
                    raise DomainError(
                        f"column {self.name!r} contains codes outside its "
                        f"domain of size {self.domain.size} (min={lo}, max={hi})"
                    )

    # ------------------------------------------------------------------
    @classmethod
    def from_raw(
        cls, name: str, raw_values: Iterable[Any], domain: Optional[AttributeDomain] = None
    ) -> "Column":
        """Build a column from raw values, encoding them if a domain is given."""
        if domain is None:
            return cls(name=name, values=np.asarray(list(raw_values)))
        codes = domain.encode_array(raw_values)
        return cls(name=name, values=codes, domain=domain)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return int(self.values.shape[0])

    def __len__(self) -> int:
        return self.num_rows

    def decoded(self) -> list[Any]:
        """Return the raw values (decoding codes when a domain is attached)."""
        if self.domain is None:
            return list(self.values)
        return self.domain.decode_array(self.values)

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column containing only the rows in ``indices``."""
        return Column(name=self.name, values=self.values[indices], domain=self.domain)

    def mask(self, row_mask: np.ndarray) -> "Column":
        """Return a new column containing only rows where ``row_mask`` is True."""
        return Column(name=self.name, values=self.values[row_mask], domain=self.domain)


class Table:
    """A named collection of equally sized columns."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        lengths = {column.num_rows for column in columns}
        if len(lengths) != 1:
            raise SchemaError(
                f"table {name!r} has columns of differing lengths: {sorted(lengths)}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names: {names}")
        self.name = name
        self._columns: dict[str, Column] = {column.name: column for column in columns}
        self._num_rows = columns[0].num_rows

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        name: str,
        arrays: Mapping[str, np.ndarray],
        domains: Optional[Mapping[str, AttributeDomain]] = None,
    ) -> "Table":
        """Build a table from a mapping of column name to pre-encoded array."""
        domains = domains or {}
        columns = [
            Column(name=col_name, values=np.asarray(values), domain=domains.get(col_name))
            for col_name, values in arrays.items()
        ]
        return cls(name=name, columns=columns)

    @classmethod
    def from_records(
        cls,
        name: str,
        records: Sequence[Mapping[str, Any]],
        domains: Optional[Mapping[str, AttributeDomain]] = None,
    ) -> "Table":
        """Build a table from row dictionaries (convenience for tests/examples)."""
        if not records:
            raise SchemaError(f"table {name!r} cannot be built from zero records")
        domains = domains or {}
        column_names = list(records[0].keys())
        columns = []
        for col_name in column_names:
            raw = [record[col_name] for record in records]
            columns.append(Column.from_raw(col_name, raw, domain=domains.get(col_name)))
        return cls(name=name, columns=columns)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self._num_rows

    def __len__(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._columns

    def column(self, column_name: str) -> Column:
        try:
            return self._columns[column_name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column_name!r}; "
                f"available: {self.column_names}"
            ) from None

    def codes(self, column_name: str) -> np.ndarray:
        """Return the raw numpy array backing ``column_name``."""
        return self.column(column_name).values

    def domain(self, column_name: str) -> Optional[AttributeDomain]:
        """Return the attribute domain of ``column_name`` (if any)."""
        return self.column(column_name).domain

    # ------------------------------------------------------------------
    # row-level operations
    # ------------------------------------------------------------------
    def filter(self, row_mask: np.ndarray) -> "Table":
        """Return a new table with only the rows where ``row_mask`` is True."""
        row_mask = np.asarray(row_mask, dtype=bool)
        if row_mask.shape[0] != self._num_rows:
            raise SchemaError(
                f"mask of length {row_mask.shape[0]} does not match table "
                f"{self.name!r} with {self._num_rows} rows"
            )
        return Table(self.name, [col.mask(row_mask) for col in self._columns.values()])

    def take(self, indices: np.ndarray) -> "Table":
        """Return a new table with the rows at ``indices`` (in that order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Table(self.name, [col.take(indices) for col in self._columns.values()])

    def head(self, count: int = 5) -> "Table":
        """Return the first ``count`` rows (for examples and debugging)."""
        count = min(count, self._num_rows)
        return self.take(np.arange(count))

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a dictionary of decoded values."""
        if not 0 <= index < self._num_rows:
            raise IndexError(f"row {index} out of range for table {self.name!r}")
        out: dict[str, Any] = {}
        for column in self._columns.values():
            value = column.values[index]
            if column.domain is not None:
                value = column.domain.decode(int(value))
            out[column.name] = value
        return out

    def to_records(self) -> list[dict[str, Any]]:
        """Materialise the table as a list of row dictionaries (small tables only)."""
        return [self.row(i) for i in range(self._num_rows)]

    # ------------------------------------------------------------------
    # content identity
    # ------------------------------------------------------------------
    def content_digest(self) -> str:
        """A hex digest of the table's full content (names, dtypes, bytes).

        Deterministic across processes for identically built tables, which is
        what lets the cache layer (:mod:`repro.db.cache`) derive a
        process-independent namespace from a database.  Computed from scratch
        on every call — tables are treated as immutable everywhere, but the
        cache layer relies on a *mutated* table hashing differently, so the
        digest must never be memoized here.
        """
        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        for column in self._columns.values():
            values = np.ascontiguousarray(column.values)
            digest.update(column.name.encode("utf-8"))
            if column.domain is not None:
                # Codes only pin the selected *positions*; the domain decodes
                # them, so two columns with equal codes over different value
                # lists are different content (GROUP BY labels, predicates).
                digest.update(column.domain.name.encode("utf-8"))
                digest.update(repr(column.domain.values).encode("utf-8"))
            digest.update(str(values.dtype).encode("ascii"))
            if values.dtype == object:
                digest.update(repr(column.decoded()).encode("utf-8"))
            else:
                digest.update(values.tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={self._num_rows}, columns={self.column_names})"
