"""Tests for the observability subsystem (:mod:`repro.obs`).

The contracts under test (see docs/OBSERVABILITY.md):

* the metrics registry aggregates counters / gauges / histograms behind one
  unified snapshot schema, and a fork-shared registry sees increments made
  in worker processes;
* request traces form one connected tree per request — through threads, the
  cache wire and fork workers alike — and tracing never changes an answer;
* every ``telemetry`` surface (cache backends, cache server, query server)
  exposes the same top-level shape;
* the slow-query log records exactly the requests over its threshold;
* ``python -m repro.obs.summarize`` renders per-stage breakdowns and the
  critical path from a trace file.
"""

import json
import multiprocessing
import socket

import pytest

from repro.db.cache import (
    LocalCacheBackend,
    RemoteCacheBackend,
    SharedMemoryCacheBackend,
    backend_scope,
)
from repro.db.cache.server import CacheServerThread
from repro.db.cache.wire import read_frame, write_frame
from repro.dp.accountant import PrivacyBudget
from repro.evaluation.experiments import ExperimentConfig  # noqa: F401 - breaks the
# parallel<->experiments import cycle: the experiments package must initialise
# before repro.evaluation.parallel is imported directly.
from repro.evaluation.parallel import TrialScheduler
from repro.obs import summarize
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_CATALOG,
    UNIFIED_KEYS,
    MetricsRegistry,
    NullRegistry,
    active_registry,
    registry_scope,
    render_prometheus,
    unified_snapshot,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    Tracer,
    active_tracer,
    record_span,
    record_timed,
    resume_span,
    set_active_tracer,
    span,
    trace_scope,
    wire_context,
)
from repro.serving import (
    BudgetLedger,
    QueryPlanner,
    QueryServer,
    ServerThread,
    ServingClient,
)

SEED = 424242


@pytest.fixture(scope="module")
def planner():
    planner = QueryPlanner(seed=SEED)
    planner.register("demo", "ssb", scale_factor=1.0, rows_per_scale_factor=2000, seed=5)
    return planner


def _assert_unified(snapshot):
    assert tuple(snapshot.keys()) == UNIFIED_KEYS
    assert isinstance(snapshot["counters"], dict)
    assert isinstance(snapshot["gauges"], dict)
    assert isinstance(snapshot["histograms"], dict)
    assert isinstance(snapshot["subsystem"], dict)


# ----------------------------------------------------------------------
# the metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(4)
        registry.gauge("depth").set(2.5)
        for value in (0.002, 0.004, 0.03):
            registry.histogram("latency").observe(value)
        snapshot = registry.snapshot()
        _assert_unified(snapshot)
        assert snapshot["counters"]["requests"] == 5
        assert snapshot["gauges"]["depth"] == 2.5
        summary = snapshot["histograms"]["latency"]
        assert summary["count"] == 3
        assert summary["sum_s"] == pytest.approx(0.036)
        assert 0.001 <= summary["p50_s"] <= 0.005

    def test_histogram_percentiles_order(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in [0.001] * 90 + [1.5] * 10:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["p50_s"] <= summary["p95_s"] <= summary["p99_s"]
        assert summary["p99_s"] >= 1.0  # the slow tail lands in the 1.0–2.5 bucket

    def test_histogram_overflow_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(99.0)  # beyond the largest bound
        summary = histogram.summary()
        assert summary["buckets"]["+Inf"] == 1
        assert summary["p50_s"] == DEFAULT_BUCKETS[-1]

    def test_instruments_are_memoized(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")

    def test_shared_registry_pre_creates_catalog(self):
        registry = MetricsRegistry(shared=True)
        snapshot = registry.snapshot()
        for name in METRIC_CATALOG["counters"]:
            assert snapshot["counters"][name] == 0
        for name in METRIC_CATALOG["histograms"]:
            assert snapshot["histograms"][name]["count"] == 0

    def test_shared_registry_aggregates_forked_increments(self):
        registry = MetricsRegistry(shared=True)
        counter_name = METRIC_CATALOG["counters"][0]
        histogram_name = METRIC_CATALOG["histograms"][0]
        registry.counter(counter_name).inc(2)

        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_fork_increment, args=(registry, counter_name, histogram_name)
        )
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        snapshot = registry.snapshot()
        assert snapshot["counters"][counter_name] == 7  # 2 parent + 5 child
        assert snapshot["histograms"][histogram_name]["count"] == 3

    def test_active_registry_default_and_scope(self):
        default = active_registry()
        assert isinstance(default, MetricsRegistry)
        installed = MetricsRegistry()
        with registry_scope(installed):
            assert active_registry() is installed
        assert active_registry() is default

    def test_null_registry_absorbs_everything(self):
        registry = NullRegistry()
        registry.counter("a").inc(100)
        registry.histogram("b").observe(1.0)
        snapshot = registry.snapshot()
        _assert_unified(snapshot)
        assert snapshot["counters"] == {}

    def test_render_prometheus_flattens_nested_snapshots(self):
        inner = unified_snapshot(counters={"hits": 3}, subsystem={"name": "cache"})
        outer = unified_snapshot(
            counters={"requests": 2},
            gauges={"depth": 1.5},
            histograms={"latency": MetricsRegistry().histogram("latency").summary()},
            subsystem={"cache": inner, "in_flight": 4, "degraded": False},
        )
        text = render_prometheus(outer, prefix="repro_serving")
        assert "repro_serving_requests 2" in text
        assert "repro_serving_depth 1.5" in text
        assert "repro_serving_cache_hits 3" in text  # nested snapshot recursed
        assert "repro_serving_in_flight 4" in text  # numeric subsystem field
        assert "degraded" not in text  # booleans stay JSON-side
        assert 'latency_bucket{le="+Inf"}' in text


def _fork_increment(registry, counter_name, histogram_name):
    registry.counter(counter_name).inc(5)
    for value in (0.001, 0.01, 0.1):
        registry.histogram(histogram_name).observe(value)


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_off_by_default_and_free(self):
        assert active_tracer() is None
        with span("anything") as current:
            assert current is None  # no allocation, no file

    def test_span_tree_lands_in_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace_scope(str(path)):
            with span("root", kind="test") as root:
                with span("child"):
                    record_timed("engine.mask", 0.25, region="mask")
        spans = summarize.load_spans(str(path))
        assert {record["name"] for record in spans} == {"root", "child", "engine.mask"}
        by_name = {record["name"]: record for record in spans}
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["engine.mask"]["parent_id"] == by_name["child"]["span_id"]
        assert len({record["trace_id"] for record in spans}) == 1
        assert by_name["root"]["kind"] == "test"
        # Child wall-clock rolls up into the parent's stages.
        assert by_name["child"]["stages"]["engine.mask"] == pytest.approx(0.25)
        assert "child" in by_name["root"]["stages"]
        assert root.trace_id == by_name["root"]["trace_id"]

    def test_trace_scope_restores_previous_tracer(self, tmp_path):
        outer = Tracer(str(tmp_path / "outer.jsonl"))
        previous = set_active_tracer(outer)
        try:
            with trace_scope(str(tmp_path / "inner.jsonl")):
                assert active_tracer() is not outer
            assert active_tracer() is outer
        finally:
            set_active_tracer(previous)
            outer.close()

    def test_wire_context_and_resume_span_connect(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace_scope(str(path)):
            with span("client.op") as client_span:
                context = wire_context()
                assert context == {
                    "trace_id": client_span.trace_id,
                    "span_id": client_span.span_id,
                }
                # What the other side of a wire / fork boundary does:
                with resume_span(context, "server.op") as server_span:
                    assert server_span.trace_id == client_span.trace_id
                record_span("server.timed", context, 0.001, hit=True)
        spans = summarize.load_spans(str(path))
        assert summarize.orphan_spans(spans) == []
        assert len({record["trace_id"] for record in spans}) == 1

    def test_wire_context_none_when_not_tracing(self):
        assert wire_context() is None
        with resume_span(None, "ignored") as current:
            assert current is None


# ----------------------------------------------------------------------
# the slow-query log
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_threshold_filters(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold_ms=50.0)
        assert log.record_if_slow(0.010, query="fast") is False
        assert log.record_if_slow(0.080, query="slow", epsilon=0.5) is True
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["query"] == "slow"
        assert lines[0]["epsilon"] == 0.5
        assert lines[0]["elapsed_ms"] == pytest.approx(80.0)
        assert log.stats()["recorded"] == 1

    def test_rejects_negative_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            SlowQueryLog(str(tmp_path / "x.jsonl"), threshold_ms=-1.0)


# ----------------------------------------------------------------------
# the summarize CLI
# ----------------------------------------------------------------------
class TestSummarize:
    def _write_trace(self, path):
        with trace_scope(str(path)):
            with span("serve.request"):
                with span("serve.plan"):
                    pass
                with span("serve.execute"):
                    record_timed("engine.mask", 0.002)

    def test_stage_table_and_critical_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        spans = summarize.load_spans(str(path))
        table = summarize.stage_table(spans)
        assert {row["name"] for row in table} >= {
            "serve.request", "serve.plan", "serve.execute", "engine.mask",
        }
        chain = summarize.critical_path(spans)
        assert [record["name"] for record in chain][:2] == [
            "serve.request", "serve.execute",
        ]

    def test_render_and_main(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        assert summarize.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out
        assert "critical path" in out
        assert "orphan spans: 0" in out

    def test_main_rejects_missing_file(self, tmp_path, capsys):
        assert summarize.main([str(tmp_path / "nope.jsonl")]) == 2

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a", "trace_id": "t", "span_id": "s", '
                        '"parent_id": null, "elapsed_s": 0.1}\nnot json\n')
        assert len(summarize.load_spans(str(path))) == 1


# ----------------------------------------------------------------------
# unified-schema conformance across every stats surface
# ----------------------------------------------------------------------
class TestTelemetryConformance:
    def test_local_backend(self):
        backend = LocalCacheBackend(max_entries=8)
        backend.put("ns", "mask", "k", 1.0)
        backend.get("ns", "mask", "k")
        snapshot = backend.telemetry_snapshot()
        _assert_unified(snapshot)
        assert snapshot["counters"]["hits"] == 1
        assert snapshot["subsystem"]["backend"] == "local"

    def test_shared_backend(self):
        backend = SharedMemoryCacheBackend(max_entries=8)
        try:
            snapshot = backend.telemetry_snapshot()
            _assert_unified(snapshot)
            assert snapshot["subsystem"]["backend"] == "shared"
            assert snapshot["subsystem"]["degraded"] is False
        finally:
            backend.close()

    def test_remote_backend_and_cache_server(self):
        with CacheServerThread(max_entries=64) as handle:
            backend = RemoteCacheBackend(
                host="127.0.0.1", port=handle.server.port, max_entries=8
            )
            try:
                backend.put("ns", "result", "k", 2.0)  # a write-through region
                snapshot = backend.telemetry_snapshot()
                _assert_unified(snapshot)
                assert snapshot["subsystem"]["backend"] == "remote"
                assert "breaker_state" in snapshot["subsystem"]
                server_snapshot = handle.server.telemetry_snapshot()
                _assert_unified(server_snapshot)
                assert server_snapshot["subsystem"]["name"] == "cache-server"
                assert server_snapshot["counters"]["puts"] >= 1
            finally:
                backend.close()

    def test_cache_server_telemetry_op_over_the_wire(self):
        with CacheServerThread(max_entries=64) as handle:
            with socket.create_connection(
                ("127.0.0.1", handle.server.port), timeout=30
            ) as sock:
                stream = sock.makefile("rwb")
                write_frame(stream, {"op": "telemetry"})
                header, _payload, _size = read_frame(stream)
        assert header["ok"] is True
        _assert_unified(header["telemetry"])
        assert header["prometheus"].startswith("# TYPE repro_cache_server_")

    def test_serving_telemetry_op(self, planner):
        server = QueryServer(planner, BudgetLedger(PrivacyBudget(5.0)), port=0, workers=2)
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                client.query("demo", "PM", 0.3, query="Qc1", analyst="alice")
                result = client.telemetry()
        snapshot = result["telemetry"]
        _assert_unified(snapshot)
        assert snapshot["counters"]["requests_served"] >= 1
        assert snapshot["counters"]["serving_requests_total"] >= 1
        assert snapshot["histograms"]["serving_request_seconds"]["count"] >= 1
        assert snapshot["subsystem"]["name"] == "serving"
        assert snapshot["subsystem"]["cache"]["subsystem"]["name"] == "cache"
        assert "repro_serving_requests_served" in result["prometheus"]

    def test_stats_op_remains_the_compat_shim(self, planner):
        server = QueryServer(planner, BudgetLedger(PrivacyBudget(1.0)), port=0, workers=2)
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                stats = client.stats()
        # The legacy shape survives for existing dashboards/scripts.
        assert set(stats) >= {"requests_served", "planner", "cache", "warming"}
        assert "hit_rate" in stats["cache"]

    def test_health_reports_version_and_overload_state(self, planner):
        server = QueryServer(planner, BudgetLedger(PrivacyBudget(1.0)), port=0, workers=2)
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                client.query("demo", "PM", 0.2, query="Qc1", analyst="h")
                health = client.health()
        from repro import __version__

        assert health["status"] == "ok"
        assert health["version"] == __version__
        assert health["uptime_s"] >= 0
        assert health["queue"]["overloaded"] is False
        assert health["queue"]["execution_ewma_s"] > 0
        assert "breaker" in health["cache"]


# ----------------------------------------------------------------------
# end-to-end traces
# ----------------------------------------------------------------------
class TestEndToEndTraces:
    def test_served_request_yields_connected_trace(self, planner, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace_scope(str(path)):
            server = QueryServer(
                planner, BudgetLedger(PrivacyBudget(5.0)), port=0, workers=2
            )
            with ServerThread(server):
                with ServingClient(port=server.port) as client:
                    client.query("demo", "PM", 0.3, query="Qc1", analyst="alice")
        spans = summarize.load_spans(str(path))
        names = {record["name"] for record in spans}
        assert {"serve.request", "serve.plan", "serve.execute", "mechanism.trials"} <= names
        assert summarize.orphan_spans(spans) == []
        assert len({record["trace_id"] for record in spans}) == 1
        root = [r for r in spans if r["name"] == "serve.request"][0]
        assert root["parent_id"] is None
        assert root["outcome"] == "ok"
        assert root["analyst"] == "alice"
        assert "serve.execute" in root["stages"]

    def test_remote_cache_round_trip_joins_the_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        planner = QueryPlanner(seed=SEED)
        with CacheServerThread(max_entries=256) as handle:
            backend = RemoteCacheBackend(
                host="127.0.0.1", port=handle.server.port, max_entries=32
            )
            with backend_scope(backend):
                with trace_scope(str(path)):
                    server = QueryServer(
                        planner, BudgetLedger(PrivacyBudget(5.0)), port=0, workers=2
                    )
                    with ServerThread(server):
                        with ServingClient(port=server.port) as client:
                            client.register(
                                "demo", "ssb", scale_factor=1.0,
                                rows_per_scale_factor=2000, seed=5,
                            )
                            client.query("demo", "PM", 0.3, query="Qc1", analyst="a")
            backend.close()
        spans = summarize.load_spans(str(path))
        names = {record["name"] for record in spans}
        # Client-side round-trip spans and the server's own handling spans
        # both land in the file, connected into the request's one trace.
        assert "cache.remote.put" in names or "cache.remote.get" in names
        assert "cache_server.put" in names or "cache_server.get" in names
        request_traces = {
            r["trace_id"] for r in spans if r["name"] == "serve.request"
        }
        cache_traces = {
            r["trace_id"] for r in spans if r["name"].startswith("cache_server.")
        }
        assert cache_traces <= request_traces
        assert summarize.orphan_spans(spans) == []

    def test_fork_workers_join_the_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace_scope(str(path)):
            with span("evaluation.experiment", experiment="test"):
                scheduler = TrialScheduler(jobs=4)
                results = scheduler.map(_traced_cell_fn, list(range(8)))
        assert results == [value * value for value in range(8)]
        spans = summarize.load_spans(str(path))
        cells = [r for r in spans if r["name"] == "runner.cell"]
        assert len(cells) == 8
        roots = [r for r in spans if r["name"] == "evaluation.experiment"]
        assert len(roots) == 1
        assert {r["parent_id"] for r in cells} == {roots[0]["span_id"]}
        assert len({r["trace_id"] for r in spans}) == 1
        assert summarize.orphan_spans(spans) == []
        # The cells genuinely ran in other processes.
        assert any(r["pid"] != roots[0]["pid"] for r in cells)

    def test_tracing_does_not_change_answers(self, planner, tmp_path):
        def serve_one(analyst):
            server = QueryServer(
                planner, BudgetLedger(PrivacyBudget(5.0)), port=0, workers=2
            )
            with ServerThread(server):
                with ServingClient(port=server.port) as client:
                    return client.query(
                        "demo", "PM", 0.3, query="Qc1", trials=3, analyst=analyst
                    )

        untraced = serve_one("alice")
        with trace_scope(str(tmp_path / "trace.jsonl")):
            traced = serve_one("alice")
        assert traced["answers"] == untraced["answers"]
        assert traced["answer"] == untraced["answer"]


def _traced_cell_fn(value):
    with span("cell.body"):
        return value * value
