"""Demo (and CI smoke test) of the online query-serving subsystem.

Starts a server on an ephemeral port, registers a small SSB instance over the
wire, runs an analyst session — named query, SQL query, GROUP BY with
parallel composition — until the per-analyst ε budget is exhausted, and
asserts that the ledger's refusal arrives as a structured
``budget_exhausted`` error.  Exits non-zero if any step misbehaves, which is
what lets CI use it as the serving round-trip smoke.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from repro.dp.accountant import PrivacyBudget
from repro.serving import (
    BudgetLedger,
    QueryPlanner,
    QueryServer,
    ServerThread,
    ServingClient,
    ServingError,
)


def main() -> int:
    # Every analyst of this server gets ε = 1.0 in total.
    server = QueryServer(
        QueryPlanner(seed=7), BudgetLedger(PrivacyBudget(1.0)), port=0
    )
    with ServerThread(server):
        with ServingClient(port=server.port) as client:
            info = client.ping()
            print(f"connected: protocol v{info['protocol']}, seed {info['seed']}")

            registered = client.register(
                "demo", "ssb", scale_factor=1.0, rows_per_scale_factor=4000, seed=11
            )
            print(
                f"registered {registered['name']}: {registered['fact_rows']} fact rows, "
                f"private dimensions {registered['private_dimensions']}"
            )

            # A named paper query through the Predicate Mechanism.
            result = client.query("demo", "PM", 0.4, query="Qc1", analyst="alice")
            print(
                f"Qc1 via PM(eps=0.4): answer {result['answer']:.1f} "
                f"(remaining eps {result['privacy']['remaining_epsilon']:.2f})"
            )

            # The same semantics as SQL text: identical seed stream, so the
            # answer is byte-identical to the named form at equal ε.
            sql_result = client.query(
                "demo",
                "PM",
                0.4,
                sql="SELECT count(*) FROM Lineorder, Date WHERE Date.year = 1993",
                analyst="alice",
            )
            assert sql_result["answer"] == result["answer"], "determinism broken"
            print(f"same query as SQL: answer {sql_result['answer']:.1f} (identical)")

            # GROUP BY runs on disjoint partitions: parallel composition,
            # the whole grouped answer costs ε once.
            grouped = client.query(
                "demo",
                "PM",
                0.2,
                sql="SELECT count(*) FROM Lineorder, Customer GROUP BY Customer.region",
                analyst="alice",
            )
            assert grouped["composition"] == "parallel"
            print(f"grouped query ({grouped['composition']} composition): "
                  f"{len(grouped['answer']['groups'])} groups")

            # alice has now spent 0.4 + 0.4 + 0.2 = 1.0: the ledger must
            # refuse the next request with a structured error.
            try:
                client.query("demo", "PM", 0.1, query="Qc2", analyst="alice")
            except ServingError as error:
                assert error.code == "budget_exhausted", error.code
                print(
                    f"refused as expected: {error.code} "
                    f"(remaining eps {error.details['remaining_epsilon']:.2f})"
                )
            else:
                raise AssertionError("ledger failed to refuse an exhausted analyst")

            budget = client.budget("alice")
            assert abs(budget["spent_epsilon"] - 1.0) < 1e-9
            print(f"alice's ledger: {budget['charges']} charges, "
                  f"eps {budget['spent_epsilon']:.2f}/{budget['total_epsilon']:.2f}")

            client.shutdown()
    print("serving demo OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
