"""Figure 10: error on snowflake queries Qtc / Qts by varying ε.

The paper selects one COUNT and one SUM query over a snowflake schema and
shows that PM continues to outperform R2T and LS when a predicate lives on a
hierarchised (outer) dimension table.  The snowflake instance here is the SSB
schema with ``Date`` normalised into a ``Month`` dimension
(:mod:`repro.datagen.tpch`).

The baselines operate on the snowflake instance exactly as on the star one —
their calibration only involves the fact table's fan-out into the direct
dimensions — so the comparison isolates the effect of the snowflaked
predicate on PM.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

import numpy as np

from repro.core.snowflake import SnowflakePredicateMechanism
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator, snowflake_schema
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, cell_stream
from repro.evaluation.metrics import answer_relative_error
from repro.evaluation.parallel import StarCell, scheduler_for, resolve_database, run_star_cell
from repro.evaluation.reporting import ExperimentResult
from repro.rng import spawn
from repro.workloads.tpch_queries import snowflake_queries

__all__ = ["run", "SNOWFLAKE_EPSILONS"]

SNOWFLAKE_EPSILONS = (0.1, 0.5, 1.0)


def build_snowflake_database(config: ExperimentConfig):
    """Build the Figure 10 snowflake instance (importable worker entry point)."""
    return SnowflakeGenerator(
        SnowflakeConfig(
            scale_factor=config.scale_factor,
            rows_per_scale_factor=config.rows_per_scale_factor,
            seed=config.seed,
        )
    ).build()


def snowflake_query_by_name(name: str):
    """Resolve one of the Qtc / Qts snowflake queries by name."""
    for query in snowflake_queries(snowflake_schema()):
        if query.name == name:
            return query
    raise KeyError(f"unknown snowflake query {name!r}")


def _figure10_cell(config: ExperimentConfig, cell):
    """Dispatch one Figure 10 cell: a ``StarCell`` runs a baseline through
    the shared star path, a ``(query, ε)`` tuple runs snowflake PM.  One
    dispatcher lets PM and baseline cells share a single scheduler pass
    (no barrier between them, one pool)."""
    if isinstance(cell, StarCell):
        return run_star_cell(config, cell)
    return _snowflake_pm_cell(config, cell)


def _snowflake_pm_cell(config: ExperimentConfig, cell: tuple) -> float:
    """PM through the snowflake-aware wrapper (importable worker entry
    point); returns the mean relative error of the cell's trials."""
    query_name, epsilon = cell
    database = resolve_database(build_snowflake_database, (config,))
    query = snowflake_query_by_name(query_name)
    exact = QueryExecutor(database).execute(query)
    errors = []
    stream = cell_stream(config.seed, "figure10", query_name, epsilon, "PM")
    for trial_rng in spawn(stream, config.trials):
        mechanism = SnowflakePredicateMechanism(epsilon=epsilon)
        answer = mechanism.answer(database, query, rng=trial_rng)
        errors.append(answer_relative_error(exact, answer.value))
    return float(np.mean(errors))


def run(
    config: Optional[ExperimentConfig] = None,
    epsilons: Sequence[float] = SNOWFLAKE_EPSILONS,
) -> ExperimentResult:
    """Regenerate Figure 10 (snowflake queries Qtc and Qts)."""
    config = config or ExperimentConfig()
    # Warm the snowflake instance and exact answers before the pool forks.
    database = resolve_database(build_snowflake_database, (config,))
    executor = QueryExecutor(database)
    queries = snowflake_queries(snowflake_schema())
    for query in queries:
        executor.execute(query)

    result = ExperimentResult(
        title="Figure 10: error levels on snowflake (TPC-H style) queries by varying epsilon",
        notes=f"{config.trials} trials per cell; Date normalised into a Month dimension.",
    )
    scheduler = scheduler_for(config)
    pm_cells = [(query.name, epsilon) for query in queries for epsilon in epsilons]
    baseline_cells = [
        StarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=snowflake_query_by_name,
            query_args=(query.name,),
            database_builder=build_snowflake_database,
            database_args=(config,),
            stream=("figure10", query.name, epsilon, mechanism_name),
        )
        for query in queries
        for epsilon in epsilons
        for mechanism_name in ("R2T", "LS")
    ]
    outcomes = scheduler.map(partial(_figure10_cell, config), pm_cells + baseline_cells)
    pm_errors = dict(zip(pm_cells, outcomes[: len(pm_cells)]))
    baseline_evals = dict(
        zip(
            ((c.query_args[0], c.epsilon, c.mechanism) for c in baseline_cells),
            outcomes[len(pm_cells) :],
        )
    )
    for query in queries:
        for epsilon in epsilons:
            result.add_row(
                query=query.name, epsilon=epsilon, mechanism="PM",
                relative_error_pct=pm_errors[(query.name, epsilon)],
            )
            for mechanism_name in ("R2T", "LS"):
                evaluation = baseline_evals[(query.name, epsilon, mechanism_name)]
                result.add_row(
                    query=query.name, epsilon=epsilon, mechanism=mechanism_name,
                    relative_error_pct=(
                        None if evaluation.unsupported else evaluation.mean_relative_error
                    ),
                )
    return result
