"""TM: the truncation mechanism for star-join queries.

The data-independent approach the paper discusses for scenarios where the
global sensitivity is unbounded: delete (truncate) the contribution of every
private entity above a threshold τ, which caps the sensitivity at τ, and add
``Lap(τ / ε)`` noise to the truncated answer.  The well-known limitation is
the bias/variance trade-off — a small τ biases the answer (possibly by as
much as the answer itself), a large τ inflates the noise — which is exactly
what the evaluation exhibits.

The threshold is a parameter.  The default picks τ as a fixed quantile of the
fan-out distribution, mirroring the "naive truncation" baselines of [18, 35];
note that a data-dependent threshold technically consumes additional budget —
the paper's R2T baseline (:mod:`repro.baselines.r2t`) is the principled way
to select it, and the quantile default is provided for parity with the naive
baselines the paper compares against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.db.query import AggregateKind, StarJoinQuery
from repro.dp.mechanisms import LaplaceMechanism
from repro.dp.neighboring import PrivacyScenario
from repro.exceptions import PrivacyBudgetError, UnsupportedQueryError
from repro.rng import RngLike, ensure_rng

__all__ = ["TruncationMechanism"]


class TruncationMechanism:
    """Naive truncation at threshold τ followed by Laplace noise (TM)."""

    name = "TM"
    supports_count = True
    supports_sum = True
    supports_group_by = False

    def __init__(
        self,
        epsilon: float,
        scenario: Optional[PrivacyScenario] = None,
        threshold: Optional[float] = None,
        threshold_quantile: float = 0.95,
        truncation_dimension: Optional[str] = None,
        rng: RngLike = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        if not 0.0 < threshold_quantile <= 1.0:
            raise ValueError("threshold_quantile must lie in (0, 1]")
        self.epsilon = float(epsilon)
        self.scenario = scenario
        self.threshold = threshold
        self.threshold_quantile = float(threshold_quantile)
        self.truncation_dimension = truncation_dimension
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    def _pick_dimension(
        self, database: StarDatabase, query: StarJoinQuery, engine: ExecutionEngine
    ) -> str:
        if self.truncation_dimension is not None:
            return self.truncation_dimension
        scenario = self.scenario or PrivacyScenario.dimensions(
            *database.schema.dimension_names
        )
        if scenario.private_dimensions:
            # Truncate over the private dimension with the smallest maximum
            # fan-out (the most keys): the threshold can then stay low without
            # discarding much of the answer.
            return min(
                scenario.private_dimensions,
                key=lambda name: engine.max_fan_out(name),
            )
        raise UnsupportedQueryError(
            "the truncation mechanism needs at least one private dimension table"
        )

    def _pick_threshold(self, per_key: np.ndarray) -> float:
        if self.threshold is not None:
            return float(self.threshold)
        positive = per_key[per_key > 0]
        if positive.size == 0:
            return 1.0
        return float(max(np.quantile(positive, self.threshold_quantile), 1.0))

    # ------------------------------------------------------------------
    def answer_value(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> float:
        if query.is_grouped:
            raise UnsupportedQueryError("TM does not support GROUP BY star-join queries")
        if query.kind is AggregateKind.AVG:
            raise UnsupportedQueryError("TM does not support AVG star-join queries")
        generator = ensure_rng(rng) if rng is not None else self._rng
        engine = engine if engine is not None else ExecutionEngine.for_database(database)
        dimension = self._pick_dimension(database, query, engine)
        measure = None if query.kind is AggregateKind.COUNT else query.aggregate.measure
        per_key = engine.contribution_per_key(
            query.predicates, dimension, kind=query.kind, measure=measure
        )
        threshold = self._pick_threshold(per_key)
        ordered, prefix = engine.sorted_contributions(
            query.predicates, dimension, kind=query.kind, measure=measure
        )
        truncated = engine.truncated_sum_from_sorted(ordered, prefix, threshold)
        mechanism = LaplaceMechanism(sensitivity=threshold, epsilon=self.epsilon)
        return mechanism.randomise(truncated, rng=generator)

    # ------------------------------------------------------------------
    def truncation_bias(
        self, database: StarDatabase, query: StarJoinQuery, threshold: Optional[float] = None
    ) -> float:
        """Exact bias introduced by truncating at the (chosen) threshold.

        Exposed for the ablation benchmarks that explore the bias/variance
        trade-off the paper describes.
        """
        engine = ExecutionEngine.for_database(database)
        dimension = self._pick_dimension(database, query, engine)
        measure = None if query.kind is AggregateKind.COUNT else query.aggregate.measure
        per_key = engine.contribution_per_key(
            query.predicates, dimension, kind=query.kind, measure=measure
        )
        tau = float(threshold) if threshold is not None else self._pick_threshold(per_key)
        exact = float(per_key.sum())
        truncated = float(np.minimum(per_key, tau).sum())
        return exact - truncated
