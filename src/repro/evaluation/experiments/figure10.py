"""Figure 10: error on snowflake queries Qtc / Qts by varying ε.

The paper selects one COUNT and one SUM query over a snowflake schema and
shows that PM continues to outperform R2T and LS when a predicate lives on a
hierarchised (outer) dimension table.  The snowflake instance here is the SSB
schema with ``Date`` normalised into a ``Month`` dimension
(:mod:`repro.datagen.tpch`).

The baselines operate on the snowflake instance exactly as on the star one —
their calibration only involves the fact table's fan-out into the direct
dimensions — so the comparison isolates the effect of the snowflaked
predicate on PM.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.snowflake import SnowflakePredicateMechanism
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator, snowflake_schema
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, cell_seed
from repro.evaluation.metrics import answer_relative_error
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.rng import spawn
from repro.workloads.tpch_queries import snowflake_queries

__all__ = ["run", "SNOWFLAKE_EPSILONS"]

SNOWFLAKE_EPSILONS = (0.1, 0.5, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    epsilons: Sequence[float] = SNOWFLAKE_EPSILONS,
) -> ExperimentResult:
    """Regenerate Figure 10 (snowflake queries Qtc and Qts)."""
    config = config or ExperimentConfig()
    generator = SnowflakeGenerator(
        SnowflakeConfig(
            scale_factor=config.scale_factor,
            rows_per_scale_factor=config.rows_per_scale_factor,
            seed=config.seed,
        )
    )
    database = generator.build()
    executor = QueryExecutor(database)
    schema = snowflake_schema()
    queries = snowflake_queries(schema)

    result = ExperimentResult(
        title="Figure 10: error levels on snowflake (TPC-H style) queries by varying epsilon",
        notes=f"{config.trials} trials per cell; Date normalised into a Month dimension.",
    )
    import numpy as np

    for query in queries:
        exact = executor.execute(query)
        for epsilon in epsilons:
            # PM through the snowflake-aware wrapper.
            errors = []
            for trial_rng in spawn(config.seed + cell_seed(query.name, epsilon, "PM"),
                                   config.trials):
                mechanism = SnowflakePredicateMechanism(epsilon=epsilon)
                answer = mechanism.answer(database, query, rng=trial_rng)
                errors.append(answer_relative_error(exact, answer.value))
            result.add_row(
                query=query.name, epsilon=epsilon, mechanism="PM",
                relative_error_pct=float(np.mean(errors)),
            )
            # Baselines.
            for mechanism_name in ("R2T", "LS"):
                mechanism = make_star_mechanism(mechanism_name, epsilon, scenario=config.scenario)
                evaluation = evaluate_mechanism(
                    mechanism, database, query, trials=config.trials,
                    rng=config.seed + cell_seed(query.name, epsilon, mechanism_name),
                    exact_answer=exact,
                )
                result.add_row(
                    query=query.name, epsilon=epsilon, mechanism=mechanism_name,
                    relative_error_pct=(
                        None if evaluation.unsupported else evaluation.mean_relative_error
                    ),
                )
    return result
