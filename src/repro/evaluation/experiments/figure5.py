"""Figure 5: running time and error of PM and R2T vs data scale (SUM).

Same sweep as Figure 4 but over the SUM queries Qs2–Qs4, where LS is not
applicable; the paper compares PM against R2T only.  The observation to
reproduce is that R2T's error on SUM queries stays high (its truncation
threshold interacts badly with heavy per-entity revenue totals) while PM's
remains at its predicate-domain-driven level regardless of scale.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.evaluation.experiments.common import ExperimentConfig, PAPER_SCALES, build_ssb_database
from repro.evaluation.parallel import StarCell, scheduler_for, run_star_cell
from repro.evaluation.reporting import ExperimentResult
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "MECHANISMS", "QUERIES"]

MECHANISMS = ("PM", "R2T")
QUERIES = ("Qs2", "Qs3", "Qs4")


def run(
    config: Optional[ExperimentConfig] = None,
    scales: Sequence[float] = PAPER_SCALES,
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 5 (SUM queries; error and running time vs scale)."""
    config = config or ExperimentConfig()
    result = ExperimentResult(
        title="Figure 5: error level and running time vs data scale (SUM queries)",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    fact_rows = {
        scale: build_ssb_database(
            config, scale_factor=scale, seed_offset=int(scale * 100)
        ).num_fact_rows
        for scale in scales
    }
    grid = [
        StarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=ssb_query,
            query_args=(query_name,),
            database_builder=build_ssb_database,
            database_args=(config, scale, "uniform", "uniform", int(scale * 100)),
            stream=("figure5", scale, query_name, mechanism_name),
        )
        for scale in scales
        for query_name in query_names
        for mechanism_name in mechanisms
    ]
    evaluations = scheduler_for(config).map(partial(run_star_cell, config), grid)
    for cell, evaluation in zip(grid, evaluations):
        scale = cell.database_args[1]
        result.add_row(
            scale=scale,
            query=cell.query_args[0],
            mechanism=cell.mechanism,
            relative_error_pct=(
                None if evaluation.unsupported else evaluation.mean_relative_error
            ),
            mean_time_s=None if evaluation.unsupported else evaluation.mean_time,
            fact_rows=fact_rows[scale],
        )
    return result
