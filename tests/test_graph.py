"""Tests for the graph substrate: edge tables, k-star counting, generators."""

import numpy as np
import pytest

from repro.exceptions import DataGenerationError, QueryError
from repro.graph.edge_table import Graph
from repro.graph.generators import amazon_like, deezer_like, powerlaw_graph
from repro.graph.kstar import (
    KStarQuery,
    kstar_count,
    kstar_count_by_join,
    per_node_star_counts,
)


@pytest.fixture()
def path_graph():
    # 0-1-2-3: degrees 1, 2, 2, 1.
    return Graph.from_edge_list([(0, 1), (1, 2), (2, 3)], num_nodes=4, name="path")


@pytest.fixture()
def star_graph():
    # Node 0 connected to 1..5: degree 5 centre, five leaves of degree 1.
    return Graph.from_edge_list([(0, i) for i in range(1, 6)], num_nodes=6, name="star")


class TestGraph:
    def test_basic_counts(self, path_graph):
        assert path_graph.num_nodes == 4
        assert path_graph.num_edges == 3
        assert list(path_graph.degrees()) == [1, 2, 2, 1]
        assert path_graph.max_degree() == 2

    def test_canonicalisation_removes_duplicates_and_loops(self):
        graph = Graph.from_edge_list([(0, 1), (1, 0), (2, 2), (1, 2)], num_nodes=3)
        assert graph.num_edges == 2

    def test_invalid_edges_rejected(self):
        with pytest.raises(DataGenerationError):
            Graph(num_nodes=2, edges=np.array([[0, 5]]))
        with pytest.raises(DataGenerationError):
            Graph(num_nodes=0, edges=np.zeros((0, 2)))
        with pytest.raises(DataGenerationError):
            Graph(num_nodes=3, edges=np.array([[0, 1, 2]]))

    def test_adjacency_lists(self, star_graph):
        adjacency = star_graph.adjacency_lists()
        assert list(adjacency[0]) == [1, 2, 3, 4, 5]
        assert list(adjacency[3]) == [0]

    def test_edge_table_symmetric_view(self, path_graph):
        table = path_graph.as_edge_table(symmetric=True)
        assert table.num_rows == 2 * path_graph.num_edges
        asymmetric = path_graph.as_edge_table(symmetric=False)
        assert asymmetric.num_rows == path_graph.num_edges

    def test_truncate_degrees(self, star_graph):
        truncated = star_graph.truncate_degrees(2)
        assert truncated.max_degree() <= 2
        assert truncated.num_nodes == star_graph.num_nodes

    def test_truncate_with_rng(self, star_graph):
        truncated = star_graph.truncate_degrees(3, rng=np.random.default_rng(1))
        assert truncated.max_degree() <= 3

    def test_truncate_negative_threshold_rejected(self, star_graph):
        with pytest.raises(DataGenerationError):
            star_graph.truncate_degrees(-1)


class TestKStarCounting:
    def test_star_graph_counts(self, star_graph):
        # Centre of degree 5: C(5,2)=10 2-stars, C(5,3)=10 3-stars.
        assert kstar_count(star_graph, KStarQuery(k=2)) == 10.0
        assert kstar_count(star_graph, KStarQuery(k=3)) == 10.0

    def test_path_graph_counts(self, path_graph):
        # Two nodes of degree 2 contribute one 2-star each.
        assert kstar_count(path_graph, KStarQuery(k=2)) == 2.0
        assert kstar_count(path_graph, KStarQuery(k=3)) == 0.0

    def test_range_restriction(self, star_graph):
        # Excluding the centre node removes every 2-star.
        assert kstar_count(star_graph, KStarQuery(k=2, low=1, high=5)) == 0.0
        assert kstar_count(star_graph, KStarQuery(k=2, low=0, high=0)) == 10.0

    def test_empty_range(self, star_graph):
        query = KStarQuery(k=2, low=3, high=3)
        assert kstar_count(star_graph, query) == 0.0

    def test_invalid_query(self):
        with pytest.raises(QueryError):
            KStarQuery(k=0)
        with pytest.raises(QueryError):
            KStarQuery(k=2, low=5, high=1)

    def test_per_node_star_counts(self):
        counts = per_node_star_counts(np.array([0, 1, 3, 5]), 2)
        assert list(counts) == [0.0, 0.0, 3.0, 10.0]

    def test_join_based_reference_agrees(self, small_graph):
        for k in (2, 3):
            query = KStarQuery(k=k)
            assert kstar_count(small_graph, query) == kstar_count_by_join(small_graph, query)

    def test_join_based_reference_respects_range(self, small_graph):
        query = KStarQuery(k=2, low=0, high=small_graph.num_nodes // 2)
        assert kstar_count(small_graph, query) == kstar_count_by_join(small_graph, query)

    def test_join_based_reference_rejects_large_graphs(self):
        graph = powerlaw_graph(2000, 6000, rng=1)
        with pytest.raises(QueryError):
            kstar_count_by_join(graph, KStarQuery(k=2), max_edges=1000)

    def test_query_label(self):
        assert KStarQuery(k=2).label == "Q2*"
        assert KStarQuery(k=3, name="custom").label == "custom"


class TestGenerators:
    def test_powerlaw_graph_size(self):
        graph = powerlaw_graph(num_nodes=1000, num_edges=3000, rng=5)
        assert graph.num_nodes == 1000
        assert 2000 < graph.num_edges <= 3100

    def test_powerlaw_heavy_tail(self):
        graph = powerlaw_graph(num_nodes=5000, num_edges=15000, rng=7)
        degrees = graph.degrees()
        assert degrees.max() > 5 * degrees.mean()

    def test_reproducible_with_seed(self):
        a = powerlaw_graph(500, 1500, rng=3)
        b = powerlaw_graph(500, 1500, rng=3)
        assert np.array_equal(a.edges, b.edges)

    def test_invalid_parameters(self):
        with pytest.raises(DataGenerationError):
            powerlaw_graph(1, 10)
        with pytest.raises(DataGenerationError):
            powerlaw_graph(10, 0)

    def test_deezer_and_amazon_scaling(self):
        deezer = deezer_like(rng=1, scale=0.01)
        amazon = amazon_like(rng=1, scale=0.01)
        assert deezer.num_nodes == 1440
        assert amazon.num_nodes == 3350
        with pytest.raises(DataGenerationError):
            deezer_like(scale=0.0)
