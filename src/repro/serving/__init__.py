"""Online DP query-serving subsystem.

The serving layer turns the offline reproduction into an interactive private
analytics service over the same engine, mechanisms and cache backends:

* :mod:`repro.serving.server` — asyncio JSON-line server
  (``python -m repro.serving``), thread-pool engine offload, graceful
  SIGINT/SIGTERM shutdown, embeddable :class:`ServerThread`;
* :mod:`repro.serving.planner` — database registry (SSB / snowflake /
  k-star), request planning onto PM / R2T / truncation / LS and the shared
  :class:`~repro.db.engine.ExecutionEngine`, deterministic per-request seed
  streams (served answers are byte-identical to the offline runner path);
* :mod:`repro.serving.ledger` — per-analyst budget ledger with admission
  control (sequential + parallel composition, hard structured refusal),
  optionally durable through :mod:`repro.serving.durable`'s sqlite/WAL
  charge journal (``--ledger-path``): spent ε survives crashes and
  restarts, never under-charged;
* :mod:`repro.serving.singleflight` — concurrent identical requests share one
  engine execution;
* :mod:`repro.serving.client` — blocking JSON-line client;
* :mod:`repro.serving.protocol` — the wire format and structured errors;
* :mod:`repro.serving.fleet` — the router/gateway that scales all of the
  above to N server shards (``python -m repro.serving.fleet``): analysts
  are pinned to home shards on a consistent-hash ring (budget atomicity),
  registrations broadcast, telemetry aggregates fleet-wide.

See ``docs/SERVING.md`` for the protocol, the ledger semantics and the
determinism guarantees.
"""

from repro.serving.client import ServingClient
from repro.serving.durable import LedgerJournal
from repro.serving.fleet import FleetRouter, FleetThread
from repro.serving.ledger import DEFAULT_ANALYST_BUDGET, Admission, BudgetLedger
from repro.serving.planner import PlannedQuery, QueryPlanner, request_stream, serialize_answer
from repro.serving.protocol import ERROR_CODES, PROTOCOL_VERSION, ServingError
from repro.serving.server import QueryServer, ServerThread, main
from repro.serving.singleflight import SingleFlight

__all__ = [
    "Admission",
    "BudgetLedger",
    "DEFAULT_ANALYST_BUDGET",
    "LedgerJournal",
    "ERROR_CODES",
    "FleetRouter",
    "FleetThread",
    "PROTOCOL_VERSION",
    "PlannedQuery",
    "QueryPlanner",
    "QueryServer",
    "ServerThread",
    "ServingClient",
    "ServingError",
    "SingleFlight",
    "main",
    "request_stream",
    "serialize_answer",
]
