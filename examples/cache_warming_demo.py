"""Warm-ahead smoke: background replay repairs what eviction took.

The end-to-end property this script proves (CI runs it next to the other
cache demos):

1. start a deliberately tiny cost-aware cache server (8 entries);
2. replay a skewed analyst trace against it — a small *hot set* of expensive
   SUM / GROUP BY queries, then a flood of one-off COUNT drill-downs whose
   sheer number forces evictions;
3. run the hot set again from a fresh client tier **without** warming and
   count how many answers must be recomputed (the eviction casualties);
4. repeat the whole trace with a :class:`WarmingQueue` installed and a
   :class:`WarmAheadWorker` drained between the flood and the analyst's
   return — the replays re-derive the evicted answers off the critical
   path, so the return recomputes **nothing**;
5. assert the warmed run's answers are byte-identical to the unwarmed run's
   — warming changes *when* work happens, never what is computed.

Usage::

    PYTHONPATH=src python examples/cache_warming_demo.py
"""

from __future__ import annotations

import json

from repro.datagen.ssb import SSBConfig, SSBGenerator, ssb_schema
from repro.db.cache import RemoteCacheBackend, backend_scope
from repro.db.cache.server import CacheServerThread
from repro.db.cache.warming import WarmAheadWorker, WarmingQueue, queue_scope
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.predicates import PointPredicate
from repro.db.query import StarJoinQuery
from repro.workloads.ssb_queries import ssb_query

ROWS = 4_000
SERVER_ENTRIES = 8


def build_trace():
    """The skewed analyst session: a hot set plus a drill-down flood."""
    schema = ssb_schema()
    hot = [ssb_query(name, schema) for name in ("Qs2", "Qs3", "Qg2", "Qg4")]
    domain = schema.table_schema("Part").domain_of("category")
    flood = [
        StarJoinQuery.count(
            f"drill-category={value}",
            predicates=[
                PointPredicate(
                    table="Part", attribute="category", domain=domain, value=value
                )
            ],
        )
        for value in domain.values
    ]
    return hot, flood


def canonical(answers: list) -> str:
    """Answers as comparable JSON (grouped answers sorted by key)."""
    payload = []
    for answer in answers:
        if isinstance(answer, GroupedResult):
            payload.append(sorted((str(k), v) for k, v in answer.groups.items()))
        else:
            payload.append(answer)
    return json.dumps(payload)


def run_session(database, hot, flood, warm_ahead: bool) -> tuple[int, list]:
    """One full trace against a fresh tiny server; returns the number of
    answers the analyst's return had to recompute, and the answers."""
    with CacheServerThread(max_entries=SERVER_ENTRIES, policy="cost") as handle:

        def client():
            return RemoteCacheBackend(
                host="127.0.0.1", port=handle.server.port, policy="cost"
            )

        queue = WarmingQueue() if warm_ahead else None
        with queue_scope(queue):
            # The analyst's working session: hot set, then the flood.
            session = client()
            with backend_scope(session):
                executor = QueryExecutor(database)
                for query in hot + flood:
                    executor.execute(query)
            session.close()

            if queue is not None:
                # Idle time: replay the hottest recorded misses through a
                # throwaway client, re-populating the server off the
                # critical path.
                warmer = client()
                with backend_scope(warmer):
                    replayed = WarmAheadWorker(queue).run_once(max_tasks=len(hot))
                warmer.close()
                print(f"  warm-ahead replayed {replayed} queued misses")

            # The analyst returns on a fresh client tier: only the server's
            # surviving (or re-warmed) entries can save recomputes.
            recomputes = 0
            answers = []
            fresh = client()
            with backend_scope(fresh):
                executor = QueryExecutor(database)
                for query in hot:
                    cold = executor.engine.cached_result(query) is None
                    recomputes += int(cold)
                    answers.append(executor.execute(query))
            fresh.close()
    return recomputes, answers


def main() -> None:
    database = SSBGenerator(
        SSBConfig(scale_factor=1.0, rows_per_scale_factor=ROWS, seed=7)
    ).build()
    hot, flood = build_trace()
    print(
        f"trace: {len(hot)} hot queries + {len(flood)} drill-downs "
        f"against a {SERVER_ENTRIES}-entry cost-aware server"
    )

    print("session without warming:")
    control_recomputes, control_answers = run_session(
        database, hot, flood, warm_ahead=False
    )
    print(f"  analyst's return recomputed {control_recomputes}/{len(hot)} answers")

    print("session with --warm-ahead:")
    warmed_recomputes, warmed_answers = run_session(
        database, hot, flood, warm_ahead=True
    )
    print(f"  analyst's return recomputed {warmed_recomputes}/{len(hot)} answers")

    assert control_recomputes > 0, "flood did not evict anything: no story to tell"
    assert warmed_recomputes == 0, "warm-ahead left cold answers behind"
    assert canonical(warmed_answers) == canonical(control_answers), (
        "warming changed an answer"
    )
    hit = lambda cold: 1 - cold / len(hot)  # noqa: E731
    print(
        f"OK: hit rate {hit(control_recomputes):.0%} -> "
        f"{hit(warmed_recomputes):.0%} with warming, answers identical"
    )


if __name__ == "__main__":
    main()
