"""Tests for workload answering: data cube, independent PM and WD (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.workload import (
    IndependentPMWorkload,
    WorkloadDecomposition,
    answer_workload_exact,
    build_data_cube,
    contract_cube,
    predicate_matrices,
    workload_attributes,
)
from repro.db.query import AggregateKind, StarJoinQuery
from repro.db.predicates import PointPredicate
from repro.evaluation.metrics import workload_relative_error
from repro.exceptions import QueryError, UnsupportedQueryError
from repro.workloads.workload_matrices import workload_w1, workload_w2


class TestWorkloadAttributes:
    def test_attributes_collected_once(self):
        queries = workload_w1()
        attributes = workload_attributes(queries)
        assert {(a.table, a.attribute) for a in attributes} == {
            ("Date", "year"),
            ("Customer", "region"),
            ("Supplier", "region"),
        }

    def test_empty_workload_rejected(self):
        with pytest.raises(QueryError):
            workload_attributes([])

    def test_duplicate_attribute_in_one_query_rejected(self, ssb_schema_fixture):
        domain = ssb_schema_fixture.table_schema("Customer").domain_of("region")
        query = StarJoinQuery.count(
            "dup",
            [
                PointPredicate("Customer", "region", domain, value="ASIA"),
                PointPredicate("Customer", "region", domain, value="EUROPE"),
            ],
        )
        with pytest.raises(QueryError):
            workload_attributes([query])

    def test_predicate_matrices_shapes(self):
        queries = workload_w1()
        attributes = workload_attributes(queries)
        matrices = predicate_matrices(queries, attributes)
        sizes = {a.attribute: a.domain.size for a in attributes}
        for attribute, matrix in zip(attributes, matrices):
            assert matrix.shape == (len(queries), sizes[attribute.attribute])


class TestDataCube:
    def test_cube_total_equals_fact_rows(self, ssb_small):
        queries = workload_w1()
        attributes = workload_attributes(queries)
        cube = build_data_cube(ssb_small, attributes)
        assert cube.sum() == pytest.approx(ssb_small.num_fact_rows)

    def test_cube_contraction_matches_executor(self, ssb_small):
        queries = workload_w1()
        attributes = workload_attributes(queries)
        cube = build_data_cube(ssb_small, attributes)
        matrices = predicate_matrices(queries, attributes)
        exact = answer_workload_exact(ssb_small, queries)
        for index in range(len(queries)):
            contracted = contract_cube(cube, [matrix[index] for matrix in matrices])
            assert contracted == pytest.approx(exact[index])

    def test_sum_cube_requires_measure(self, ssb_small):
        attributes = workload_attributes(workload_w1())
        with pytest.raises(QueryError):
            build_data_cube(ssb_small, attributes, kind=AggregateKind.SUM)

    def test_avg_cube_unsupported(self, ssb_small):
        attributes = workload_attributes(workload_w1())
        with pytest.raises(UnsupportedQueryError):
            build_data_cube(ssb_small, attributes, kind=AggregateKind.AVG)

    def test_sum_cube_total(self, ssb_small):
        attributes = workload_attributes(workload_w1())
        cube = build_data_cube(ssb_small, attributes, kind=AggregateKind.SUM, measure="revenue")
        assert cube.sum() == pytest.approx(float(np.sum(ssb_small.fact.codes("revenue"))))


class TestIndependentPM:
    def test_answers_have_right_shape(self, ssb_small):
        queries = workload_w1()
        answer = IndependentPMWorkload(epsilon=1.0, rng=1).answer(ssb_small, queries)
        assert answer.values.shape == (len(queries),)
        assert answer.epsilon == 1.0

    def test_empty_workload_rejected(self, ssb_small):
        with pytest.raises(QueryError):
            IndependentPMWorkload(epsilon=1.0).answer(ssb_small, [])


class TestWorkloadDecomposition:
    def test_answers_have_right_shape_and_strategies(self, ssb_small):
        queries = workload_w2()
        answer = WorkloadDecomposition(epsilon=1.0, rng=2).answer(ssb_small, queries)
        assert answer.values.shape == (len(queries),)
        assert set(answer.strategies) == {
            ("Date", "year"),
            ("Customer", "region"),
            ("Supplier", "region"),
        }

    def test_high_epsilon_recovers_exact_answers(self, ssb_small):
        queries = workload_w1()
        exact = answer_workload_exact(ssb_small, queries)
        answer = WorkloadDecomposition(epsilon=1e7, rng=3).answer(ssb_small, queries)
        assert answer.values == pytest.approx(exact)

    def test_wd_strategy_receives_larger_per_row_budget_than_pm(self, ssb_small):
        """The structural reason WD dominates independent PM (Figure 9): the
        strategy has far fewer rows than (queries × attributes), so each
        perturbed predicate gets a larger share of ε."""
        queries = workload_w1()
        attributes = workload_attributes(queries)
        decomposition = WorkloadDecomposition(epsilon=1.0)
        answer = decomposition.answer(ssb_small, queries, rng=1)
        per_attribute_epsilon = 1.0 / len(attributes)
        pm_per_predicate_epsilon = (1.0 / len(queries)) / len(attributes)
        for choice in answer.strategies.values():
            wd_per_row_epsilon = per_attribute_epsilon / choice.num_rows
            assert wd_per_row_epsilon >= pm_per_predicate_epsilon

    def test_wd_error_not_catastrophically_worse_than_pm(self, ssb_small):
        """Statistical sanity check on the small fixture (the full Figure 9
        comparison runs on the experiment-scale instance)."""
        queries = workload_w1()
        exact = answer_workload_exact(ssb_small, queries)
        pm_errors, wd_errors = [], []
        for seed in range(8):
            pm_answer = IndependentPMWorkload(epsilon=0.5, rng=seed).answer(ssb_small, queries)
            wd_answer = WorkloadDecomposition(epsilon=0.5, rng=seed).answer(ssb_small, queries)
            pm_errors.append(workload_relative_error(exact, pm_answer.values))
            wd_errors.append(workload_relative_error(exact, wd_answer.values))
        assert np.mean(wd_errors) <= max(np.mean(pm_errors) * 2.0, 50.0)

    def test_reproducible_with_seed(self, ssb_small):
        queries = workload_w2()
        a = WorkloadDecomposition(epsilon=0.5, rng=11).answer(ssb_small, queries)
        b = WorkloadDecomposition(epsilon=0.5, rng=11).answer(ssb_small, queries)
        assert np.array_equal(a.values, b.values)
