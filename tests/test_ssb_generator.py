"""Tests for the SSB and snowflake data generators."""

import numpy as np
import pytest

from repro.datagen.ssb import (
    BRANDS,
    CATEGORIES,
    CITIES,
    MFGRS,
    NATIONS,
    REGIONS,
    SSBConfig,
    SSBGenerator,
    YEARS,
    generate_ssb,
    ssb_schema,
)
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator, snowflake_schema
from repro.db.executor import QueryExecutor
from repro.exceptions import DataGenerationError
from repro.workloads.ssb_queries import ssb_query


class TestDomainHierarchies:
    def test_domain_sizes_match_ssb(self):
        assert len(REGIONS) == 5
        assert len(NATIONS) == 25
        assert len(CITIES) == 250
        assert len(MFGRS) == 5
        assert len(CATEGORIES) == 25
        assert len(BRANDS) == 1000
        assert len(YEARS) == 7

    def test_paper_values_exist(self):
        assert "UNITED STATES" in NATIONS
        assert "MFGR#12" in CATEGORIES
        assert "MFGR#1" in MFGRS
        assert 1993 in YEARS

    def test_schema_domain_sizes(self):
        schema = ssb_schema()
        assert schema.table_schema("Customer").domain_of("region").size == 5
        assert schema.table_schema("Supplier").domain_of("nation").size == 25
        assert schema.table_schema("Part").domain_of("brand").size == 1000
        assert schema.table_schema("Date").domain_of("year").size == 7
        assert schema.num_dimensions == 4


class TestSSBGenerator:
    def test_row_counts_scale_with_scale_factor(self):
        small = generate_ssb(scale_factor=0.25, seed=1, rows_per_scale_factor=8000)
        large = generate_ssb(scale_factor=1.0, seed=1, rows_per_scale_factor=8000)
        assert small.num_fact_rows == 2000
        assert large.num_fact_rows == 8000
        assert large.dimension("Customer").num_rows >= small.dimension("Customer").num_rows

    def test_foreign_keys_are_valid(self, ssb_small):
        for dim_name in ssb_small.schema.dimension_names:
            codes = ssb_small.fact_foreign_key_codes(dim_name)
            assert codes.min() >= 0
            assert codes.max() < ssb_small.dimension(dim_name).num_rows

    def test_hierarchies_are_consistent(self, ssb_small):
        customer = ssb_small.dimension("Customer")
        city_codes = customer.codes("city")
        nation_codes = customer.codes("nation")
        region_codes = customer.codes("region")
        assert np.array_equal(nation_codes, city_codes // 10)
        assert np.array_equal(region_codes, nation_codes // 5)
        part = ssb_small.dimension("Part")
        assert np.array_equal(part.codes("category"), part.codes("brand") // 40)
        assert np.array_equal(part.codes("mfgr"), part.codes("category") // 5)

    def test_reproducible_with_seed(self):
        a = generate_ssb(scale_factor=0.5, seed=9, rows_per_scale_factor=4000)
        b = generate_ssb(scale_factor=0.5, seed=9, rows_per_scale_factor=4000)
        assert np.array_equal(a.fact.codes("CK"), b.fact.codes("CK"))
        assert np.array_equal(a.fact.codes("revenue"), b.fact.codes("revenue"))

    def test_measures_within_ranges(self, ssb_small):
        quantity = ssb_small.fact.codes("quantity")
        revenue = ssb_small.fact.codes("revenue")
        assert quantity.min() >= 1 and quantity.max() <= 50
        assert revenue.min() >= 1.0 and revenue.max() <= 100.0

    def test_skewed_keys_change_fanout(self):
        uniform = generate_ssb(seed=3, rows_per_scale_factor=6000, key_distribution="uniform")
        skewed = generate_ssb(seed=3, rows_per_scale_factor=6000, key_distribution="zipf")
        assert skewed.max_fan_out("Customer") > uniform.max_fan_out("Customer")

    def test_invalid_config_rejected(self):
        with pytest.raises(DataGenerationError):
            SSBConfig(scale_factor=0.0)
        with pytest.raises(DataGenerationError):
            SSBConfig(rows_per_scale_factor=0)

    def test_all_queries_have_nonzero_answers(self, ssb_small):
        executor = QueryExecutor(ssb_small)
        for name in ("Qc1", "Qc2", "Qc3", "Qc4", "Qs2", "Qs3", "Qs4"):
            assert executor.execute(ssb_query(name)) > 0.0

    def test_date_dimension_calendar(self, ssb_small):
        date = ssb_small.dimension("Date")
        assert date.num_rows == 7 * 365
        years = date.codes("year")
        assert years.min() == 0 and years.max() == 6
        months = date.codes("month")
        assert months.min() == 0 and months.max() == 11


class TestSnowflakeGenerator:
    def test_schema_declares_snowflake_edge(self):
        schema = snowflake_schema()
        assert schema.is_snowflake
        edge = schema.snowflake_edges[0]
        assert (edge.child_table, edge.parent_table) == ("Date", "Month")

    def test_month_dimension_consistency(self, snowflake_small):
        month = snowflake_small.dimension("Month")
        assert month.num_rows == 7 * 12
        date = snowflake_small.dimension("Date")
        month_keys = date.codes("MK")
        assert month_keys.max() < month.num_rows
        # The month's year must agree with the date's year.
        assert np.array_equal(month.codes("year")[month_keys], date.codes("year"))

    def test_snowflake_and_star_fact_tables_match(self):
        star = generate_ssb(seed=21, rows_per_scale_factor=4000)
        snowflake = SnowflakeGenerator(
            SnowflakeConfig(scale_factor=1.0, rows_per_scale_factor=4000, seed=21)
        ).build()
        assert snowflake.num_fact_rows == star.num_fact_rows

    def test_snowflake_query_answers_are_plausible(self, snowflake_small):
        from repro.workloads.tpch_queries import tpch_count_query

        executor = QueryExecutor(snowflake_small)
        count = executor.execute(tpch_count_query())
        assert 0 < count < snowflake_small.num_fact_rows
