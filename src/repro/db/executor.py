"""Exact star-join query execution.

The executor evaluates a :class:`~repro.db.query.StarJoinQuery` against a
:class:`~repro.db.database.StarDatabase` using the classical OLAP semi-join
plan: each dimension predicate is turned into a fact-row selection through
the foreign key, the selections are intersected, and the aggregate is
computed over the surviving fact rows.  This is the exact (non-private)
answer ``Q(D_s)`` that every mechanism's error is measured against, and it is
also the engine the Predicate Mechanism uses to answer the *noisy* query.

Selections, measure arrays, per-key contributions and exact answers are
served by a shared per-database :class:`~repro.db.engine.ExecutionEngine`, so
repeated executions (mechanism trials, ε sweeps) reuse the semi-join work.

A reference materialise-then-filter implementation lives in
:mod:`repro.db.join` and is used in tests to cross-validate this plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.db.cache.warming import record_query_miss
from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.db.predicates import ConjunctionPredicate
from repro.db.query import Aggregate, AggregateKind, GroupBy, Measure, StarJoinQuery
from repro.exceptions import QueryError
from repro.obs.metrics import active_registry
from repro.obs.trace import span

__all__ = ["GroupedResult", "QueryExecutor"]


@dataclass
class GroupedResult:
    """Result of a GROUP BY star-join query.

    ``groups`` maps decoded group-key tuples to aggregate values.  Helper
    methods align two grouped results over the union of their keys so the
    evaluation harness can compute relative errors between a private answer
    and the exact one.
    """

    keys: tuple[tuple[str, str], ...]
    groups: dict[tuple[Any, ...], float]

    def total(self) -> float:
        """Sum of the aggregate over all groups."""
        return float(sum(self.groups.values()))

    def as_vectors(self, other: "GroupedResult") -> tuple[np.ndarray, np.ndarray]:
        """Return aligned value vectors of ``self`` and ``other``.

        The vectors are aligned on the sorted union of both key sets, with
        missing groups treated as 0.
        """
        all_keys = sorted(set(self.groups) | set(other.groups))
        mine = np.array([self.groups.get(k, 0.0) for k in all_keys], dtype=np.float64)
        theirs = np.array([other.groups.get(k, 0.0) for k in all_keys], dtype=np.float64)
        return mine, theirs

    def copy(self) -> "GroupedResult":
        """A shallow copy whose ``groups`` dict is safe to mutate."""
        return GroupedResult(keys=self.keys, groups=dict(self.groups))

    def __len__(self) -> int:
        return len(self.groups)


class QueryExecutor:
    """Evaluate star-join queries exactly on a :class:`StarDatabase`.

    Parameters
    ----------
    database:
        The instance to execute against.
    engine:
        Optional :class:`~repro.db.engine.ExecutionEngine`.  By default the
        database's shared engine is used, so every executor over the same
        instance shares selection/statistics caches.
    """

    def __init__(self, database: StarDatabase, engine: Optional[ExecutionEngine] = None):
        self.database = database
        self.engine = engine if engine is not None else ExecutionEngine.for_database(database)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def fact_selection_mask(self, predicates: ConjunctionPredicate) -> np.ndarray:
        """Boolean mask over fact rows whose joined tuple satisfies Φ.

        The mask comes from the shared engine cache and is read-only; take a
        ``.copy()`` before mutating.
        """
        return self.engine.selection_mask(predicates)

    def selected_count(self, predicates: ConjunctionPredicate) -> int:
        """Number of fact rows selected by Φ (COUNT(*) of the star join)."""
        return self.engine.selected_count(predicates)

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def measure_values(self, measure: Measure) -> np.ndarray:
        """The measure expression evaluated over every fact row (read-only)."""
        return self.engine.measure_values(measure)

    def _aggregate_masked(self, aggregate: Aggregate, mask: np.ndarray) -> float:
        if aggregate.kind is AggregateKind.COUNT:
            return float(mask.sum())
        values = self.measure_values(aggregate.measure)[mask]
        if aggregate.kind is AggregateKind.SUM:
            return float(values.sum())
        if aggregate.kind is AggregateKind.AVG:
            return float(values.mean()) if values.size else 0.0
        raise QueryError(f"unsupported aggregate kind {aggregate.kind!r}")

    # ------------------------------------------------------------------
    # group by
    # ------------------------------------------------------------------
    def _group_codes(self, group_by: GroupBy, mask: np.ndarray) -> list[np.ndarray]:
        """Per-key arrays of group codes for the selected fact rows.

        Fact columns (group-by attributes and FK columns) are gathered through
        :meth:`StarDatabase.selected_fact_codes`, which streams chunk-wise at
        the engine's chunk size — order-preserving, so the result is identical
        to whole-column fancy indexing while a mapped fact table never
        materialises.
        """
        chunk_rows = self.engine.chunk_rows
        per_key = []
        for table_name, attribute in group_by:
            if table_name == self.database.fact.name:
                codes = self.database.selected_fact_codes(attribute, mask, chunk_rows)
            else:
                table = self.database.table(table_name)
                if not self.database.is_direct_dimension(table_name):
                    raise QueryError(
                        "GROUP BY over snowflaked (non-direct) dimension attributes "
                        "is not supported"
                    )
                column_codes = table.codes(attribute)
                fk = self.database.schema.foreign_key_for(table_name)
                fk_codes = self.database.selected_fact_codes(
                    fk.fact_column, mask, chunk_rows
                )
                codes = column_codes[fk_codes]
            per_key.append(np.asarray(codes))
        return per_key

    def _grouped(self, query: StarJoinQuery, mask: np.ndarray) -> GroupedResult:
        group_by = query.group_by
        per_key_codes = self._group_codes(group_by, mask)
        if query.kind is AggregateKind.COUNT:
            weights = None
        else:
            weights = self.measure_values(query.aggregate.measure)[mask]

        # Combine the per-key code arrays into a single composite group id via
        # ravel_multi_index + bincount, which avoids the row-sorting cost of
        # np.unique(..., axis=0) on the stacked code matrix.
        sizes = []
        for (table_name, attribute), codes in zip(group_by, per_key_codes):
            domain = self.database.table(table_name).domain(attribute)
            if domain is not None:
                sizes.append(domain.size)
            else:
                sizes.append(int(codes.max()) + 1 if codes.size else 1)
        shape = tuple(sizes)
        flat = np.ravel_multi_index(tuple(per_key_codes), shape)
        length = int(np.prod(shape, dtype=np.int64))
        counts = np.bincount(flat, minlength=length)
        present = np.flatnonzero(counts)
        if weights is None:
            sums = counts[present].astype(np.float64)
        else:
            sums = np.bincount(flat, weights=weights, minlength=length)[present]
        if query.kind is AggregateKind.AVG:
            sums = np.divide(sums, np.maximum(counts[present], 1))
        code_columns = np.unravel_index(present, shape)

        # Decode each key column in one vectorized pass instead of per group.
        decoded_columns: list[list[Any]] = []
        for (table_name, attribute), codes in zip(group_by, code_columns):
            domain = self.database.table(table_name).domain(attribute)
            if domain is None:
                decoded_columns.append([int(code) for code in codes])
            else:
                decoded_columns.append(domain.decode_array(codes))

        groups: dict[tuple[Any, ...], float] = {
            key: float(value) for key, value in zip(zip(*decoded_columns), sums)
        }
        return GroupedResult(keys=tuple(group_by.keys), groups=groups)

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def execute(self, query: StarJoinQuery):
        """Execute ``query`` exactly.

        Returns a ``float`` for scalar aggregates and a :class:`GroupedResult`
        for GROUP BY queries.  Exact answers are memoized in the shared
        engine — with the wall-clock the execution took as the entry's
        recompute cost, so cost-aware eviction keeps expensive answers over
        cheap ones — and repeated trials of an experiment compute each once.
        """
        registry = active_registry()
        registry.counter("executor_queries_total").inc()
        cached = self.engine.cached_result(query)
        if cached is not None:
            return cached.copy() if isinstance(cached, GroupedResult) else cached
        # A cold exact answer is the signal the warm-ahead queue feeds on
        # (no-op unless a warming queue is installed for this process).
        record_query_miss(self.database, query)
        registry.counter("executor_cold_queries_total").inc()
        with span("executor.execute", grouped=query.is_grouped):
            began = time.perf_counter()
            cube_answer = self.engine.count_answer_via_cube(query)
            if cube_answer is not None:
                elapsed = time.perf_counter() - began
                self.engine.store_result(query, cube_answer, elapsed)
                registry.histogram("executor_execute_seconds").observe(elapsed)
                return cube_answer
            mask = self.engine.selection_mask(query.predicates)
            if query.is_grouped:
                result = self._grouped(query, mask)
                elapsed = time.perf_counter() - began
                self.engine.store_result(query, result.copy(), elapsed)
            else:
                result = self._aggregate_masked(query.aggregate, mask)
                elapsed = time.perf_counter() - began
                self.engine.store_result(query, result, elapsed)
            registry.histogram("executor_execute_seconds").observe(elapsed)
        return result

    # ------------------------------------------------------------------
    # helpers for truncation-based mechanisms
    # ------------------------------------------------------------------
    def contribution_per_key(
        self, query: StarJoinQuery, dimension_name: str
    ) -> np.ndarray:
        """Per-dimension-key contribution to the query answer (read-only).

        For COUNT queries this is the number of selected fact rows joining to
        each key of ``dimension_name``; for SUM queries it is the summed
        measure.  Truncation-based mechanisms (TM, R2T) cap these
        contributions at a threshold τ.
        """
        measure = None if query.kind is AggregateKind.COUNT else query.aggregate.measure
        return self.engine.contribution_per_key(
            query.predicates, dimension_name, kind=query.kind, measure=measure
        )

    def truncated_answer(
        self,
        query: StarJoinQuery,
        dimension_name: str,
        threshold: float,
        per_key: Optional[np.ndarray] = None,
    ) -> float:
        """Answer with each key's contribution truncated at ``threshold``.

        This is ``Q(D_s, τ)`` in the paper's description of the truncation
        mechanism and R2T (Eq. 9): entities contributing more than τ have
        their contribution capped.
        """
        if per_key is None:
            per_key = self.contribution_per_key(query, dimension_name)
        return float(np.minimum(per_key, threshold).sum())
