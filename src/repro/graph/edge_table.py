"""Graphs as relational edge tables.

The k-star counting queries of the paper are SQL self-joins over an
``Edge(from_id, to_id)`` table (Appendix A.2).  :class:`Graph` stores an
undirected simple graph as a numpy edge list, exposes the degree sequence the
counting algorithms work from, and can materialise the relational edge-table
view so the self-join formulation can be tested against the degree-based one.

Graphs are treated as immutable once constructed: the degree sequence and the
per-``k`` star-count statistics (see :mod:`repro.graph.kstar`) are computed
once and cached on the instance, which is what lets the k-star mechanisms
share work across repeated evaluation trials.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.db.table import Column, Table
from repro.exceptions import DataGenerationError

__all__ = ["Graph"]

#: Rounds of the vectorized greedy before falling back to the sequential
#: scan for whatever edges remain undecided (usually none).
_TRUNCATION_MAX_ROUNDS = 40


def _greedy_truncation(
    edges: np.ndarray,
    num_nodes: int,
    threshold: int,
    order: np.ndarray,
    degrees: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized greedy degree truncation.

    Replicates, edge for edge, the sequential greedy scan (process edges in
    ``order``; keep an edge iff both endpoints have kept fewer than
    ``threshold`` edges so far) without a Python loop over the full edge list:

    1. Edges whose endpoints both have total degree ≤ τ can never be rejected
       and are kept outright — in heavy-tailed graphs this strips the bulk of
       the edge list from the iterative part.
    2. The remaining edges are decided in vectorized rounds: an edge is
       *certainly rejected* once an endpoint has τ accepted edges, and
       *certainly accepted* when its rank among the still-undecided edges at
       both endpoints fits into the remaining capacity (whatever happens to
       the edges before it).  Each round decides at least the earliest
       undecided edge, and in practice nearly all of them.
    3. Any stragglers after a bounded number of rounds are decided by the
       literal sequential rule, starting from the accumulated counts.

    Returns ``(keep mask over edges, resulting degree sequence)``.
    """
    num_edges = int(edges.shape[0])
    keep = np.zeros(num_edges, dtype=bool)
    acc = np.zeros(num_nodes, dtype=np.int64)
    if num_edges == 0 or threshold <= 0:
        return keep, acc

    over = degrees > threshold
    unsafe = over[edges[:, 0]] | over[edges[:, 1]]
    safe_indices = np.flatnonzero(~unsafe)
    keep[safe_indices] = True
    acc += np.bincount(edges[safe_indices, 0], minlength=num_nodes)
    acc += np.bincount(edges[safe_indices, 1], minlength=num_nodes)

    contested = order[unsafe[order]]  # original indices, in processing order
    m = int(contested.shape[0])
    if m == 0:
        return keep, acc
    u = edges[contested, 0]
    v = edges[contested, 1]

    # Incidence entries sorted by (node, position in processing order); each
    # edge contributes one entry per endpoint, so an edge's rank at a node is
    # the count of earlier undecided edges touching that node.
    positions = np.arange(m, dtype=np.int64)
    nodes = np.concatenate([u, v])
    entry_pos = np.concatenate([positions, positions])
    perm = np.lexsort((entry_pos, nodes))
    sorted_nodes = nodes[perm]
    boundary = np.empty(2 * m, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_nodes[1:] != sorted_nodes[:-1]
    group_id = np.cumsum(boundary) - 1
    group_starts = np.flatnonzero(boundary)
    sorted_slot = entry_pos[perm]

    status = np.zeros(m, dtype=np.int8)  # 0 undecided, 1 accepted, -1 rejected
    ranks = np.empty(2 * m, dtype=np.int64)
    for _ in range(_TRUNCATION_MAX_ROUNDS):
        undecided = status == 0
        if not undecided.any():
            break
        cap_u = threshold - acc[u]
        cap_v = threshold - acc[v]
        status[undecided & ((cap_u <= 0) | (cap_v <= 0))] = -1
        candidates = status == 0
        if not candidates.any():
            break
        flags = candidates[sorted_slot]
        cumulative = np.cumsum(flags)
        exclusive = cumulative - flags
        ranks[perm] = exclusive - exclusive[group_starts][group_id]
        accept = candidates & (ranks[:m] < cap_u) & (ranks[m:] < cap_v)
        if not accept.any():
            break
        status[accept] = 1
        acc += np.bincount(u[accept], minlength=num_nodes)
        acc += np.bincount(v[accept], minlength=num_nodes)

    for slot in np.flatnonzero(status == 0):
        a, b = u[slot], v[slot]
        if acc[a] < threshold and acc[b] < threshold:
            status[slot] = 1
            acc[a] += 1
            acc[b] += 1

    keep[contested[status == 1]] = True
    return keep, acc


class Graph:
    """An undirected simple graph over nodes ``0 .. num_nodes - 1``."""

    def __init__(self, num_nodes: int, edges: np.ndarray, name: str = "graph"):
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
            raise DataGenerationError("edges must be an (m, 2) array")
        if num_nodes <= 0:
            raise DataGenerationError("a graph needs at least one node")
        if edges.size:
            if edges.min() < 0 or edges.max() >= num_nodes:
                raise DataGenerationError(
                    f"edge endpoints must lie in [0, {num_nodes}), got "
                    f"[{edges.min()}, {edges.max()}]"
                )
        self.name = name
        self.num_nodes = int(num_nodes)
        self.edges = self._canonicalise(edges)
        self._degrees: Optional[np.ndarray] = None
        #: Per-k prefix-summed star counts, populated by repro.graph.kstar.
        self._star_prefix_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    @staticmethod
    def _canonicalise(edges: np.ndarray) -> np.ndarray:
        """Drop self-loops and duplicate edges; store each edge as (min, max)."""
        if edges.size == 0:
            return edges.reshape(0, 2)
        low = np.minimum(edges[:, 0], edges[:, 1])
        high = np.maximum(edges[:, 0], edges[:, 1])
        keep = low != high
        stacked = np.stack([low[keep], high[keep]], axis=1)
        return np.unique(stacked, axis=0)

    @classmethod
    def _from_canonical(
        cls,
        num_nodes: int,
        edges: np.ndarray,
        name: str,
        degrees: Optional[np.ndarray] = None,
    ) -> "Graph":
        """Build a graph from edges already known to be canonical.

        Used for subgraphs of a canonical edge list (truncation), where
        re-sorting and de-duplicating would only repeat work.
        """
        graph = cls.__new__(cls)
        graph.name = name
        graph.num_nodes = int(num_nodes)
        graph.edges = edges
        graph._degrees = degrees
        graph._star_prefix_cache = {}
        return graph

    @classmethod
    def from_edge_list(
        cls, edges: Iterable[tuple[int, int]], num_nodes: Optional[int] = None, name: str = "graph"
    ) -> "Graph":
        array = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if num_nodes is None:
            num_nodes = int(array.max()) + 1 if array.size else 1
        return cls(num_nodes=num_nodes, edges=array, name=name)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    def degrees(self) -> np.ndarray:
        """Degree of every node (length ``num_nodes``), computed once."""
        if self._degrees is None:
            counts = np.zeros(self.num_nodes, dtype=np.int64)
            if self.edges.size:
                counts += np.bincount(self.edges[:, 0], minlength=self.num_nodes)
                counts += np.bincount(self.edges[:, 1], minlength=self.num_nodes)
            self._degrees = counts
        return self._degrees

    def max_degree(self) -> int:
        degrees = self.degrees()
        return int(degrees.max()) if degrees.size else 0

    def adjacency_lists(self) -> list[np.ndarray]:
        """Neighbour arrays per node (used by the join-based reference count)."""
        neighbours: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            neighbours[int(u)].append(int(v))
            neighbours[int(v)].append(int(u))
        return [np.asarray(sorted(adj), dtype=np.int64) for adj in neighbours]

    # ------------------------------------------------------------------
    def truncate_degrees(self, threshold: int, rng: Optional[np.random.Generator] = None) -> "Graph":
        """Return a subgraph where every node keeps at most ``threshold`` edges.

        This is the naive truncation step of the TM baseline: edges incident
        to over-threshold nodes are dropped (uniformly at random when an rng
        is supplied, deterministically by edge order otherwise) until every
        degree is at most τ.  The decision rule is the greedy scan over the
        (shuffled) edge order; it is evaluated with the vectorized equivalent
        in :func:`_greedy_truncation`.
        """
        keep, acc = self._truncation_keep_mask(threshold, rng=rng)
        return Graph._from_canonical(
            self.num_nodes,
            self.edges[keep],
            name=f"{self.name}|trunc{threshold}",
            degrees=acc,
        )

    def truncated_degree_sequence(
        self, threshold: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Degree sequence of :meth:`truncate_degrees` without materialising
        the subgraph (sufficient for degree-based star counting)."""
        _, acc = self._truncation_keep_mask(threshold, rng=rng)
        return acc

    def _truncation_keep_mask(
        self, threshold: int, rng: Optional[np.random.Generator] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        if threshold < 0:
            raise DataGenerationError("truncation threshold must be non-negative")
        order = np.arange(self.num_edges)
        if rng is not None:
            order = rng.permutation(self.num_edges)
        return _greedy_truncation(
            self.edges, self.num_nodes, int(threshold), order, self.degrees()
        )

    # ------------------------------------------------------------------
    def as_edge_table(self, symmetric: bool = True) -> Table:
        """The relational ``Edge(from_id, to_id)`` view of the graph.

        With ``symmetric=True`` every undirected edge produces both directed
        rows, matching how the SQL self-join queries of the appendix count
        stars around each centre node.
        """
        if symmetric and self.edges.size:
            from_ids = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
            to_ids = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        else:
            from_ids = self.edges[:, 0] if self.edges.size else np.zeros(0, dtype=np.int64)
            to_ids = self.edges[:, 1] if self.edges.size else np.zeros(0, dtype=np.int64)
        return Table(
            "Edge",
            [
                Column(name="from_id", values=from_ids),
                Column(name="to_id", values=to_ids),
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"
