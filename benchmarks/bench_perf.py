"""Standalone perf tracker for the figure/table benchmark kernels.

Runs every experiment driver with the same configurations the pytest
benchmarks use and writes the wall-clock timings to
``benchmarks/results/BENCH_engine.json``.  The committed file is the perf
baseline this repository tracks from the execution-engine PR onward; re-run
after performance-relevant changes and compare::

    PYTHONPATH=src python benchmarks/bench_perf.py [--repeats N] [--output PATH]
    PYTHONPATH=src python benchmarks/bench_perf.py --quick   # CI smoke (no write)

Each kernel is timed with a cold generated-instance cache so numbers are
comparable run to run; within a kernel, mechanisms still share the per-database
execution engine exactly as the experiments do.

Beyond the per-experiment kernels the report tracks five scaling baselines:

* ``parallel_runner`` — Table 2 through the :class:`TrialScheduler` at
  ``jobs=1`` vs ``jobs=4`` (the process-parallel trial runner's speedup).
* ``skew_datagen`` — the Figure 7 / Figure 11 skewed instance builds with the
  cached-table samplers vs the legacy per-call ``Generator.choice`` path.
* ``cache_backends`` — Table 1 under the local vs the shared cache backend
  (same pool size), with the shared tier's cross-worker hit rates.
* ``run_wide_scheduler`` — a two-experiment run with one pool per experiment
  (transient schedulers) vs one session pool serving the whole run.
* ``serving_throughput`` — the online query server's requests/sec at 1..16
  concurrent clients (same query mix), with the engine-cache hit rate and the
  single-flight coalescing counters of the run.
* ``cache_server`` — Table 1 through the out-of-process persistent cache
  server: a cold run against an empty persistence file vs a run whose server
  restarted warm from the previous run's disk state, with client/server hit
  rates and the bytes that crossed the wire.
* ``cache_eviction`` — a Zipf-skewed three-phase analyst trace through a
  deliberately tiny cache server under pure-LRU vs cost-aware (GDSF)
  eviction vs cost-aware plus the warm-ahead queue, at equal capacity.  The
  headline numbers are the recompute-seconds the cost policy saves on the
  trace's repeated phase (``lru_over_cost``, ``lru_over_warm``) and the
  phase-3 hit rates; the answers must be identical in every mode.
* ``fault_tolerance`` — Table 1 through a :class:`ChaosProxy` in front of the
  cache server, clean network vs injected faults (dropped chunks, killed
  connections, added latency), with the circuit-breaker and proxy counters.
  The headline number is ``results_identical``: chaos costs time, never
  correctness.
* ``columnar_storage`` — a Table 1 grid over the in-memory vs the mapped
  storage layer in fresh per-mode subprocesses (wall clock + peak RSS),
  plus a chunk-size sweep of the chunked kernels on the attached instance.
  The headline number is ``rss_reduction``; the rows must be identical.
* ``telemetry_overhead`` — one warm serving query mix timed under three
  telemetry configurations: the ``NullRegistry`` uninstrumented floor, the
  default registry with tracing off, and tracing on.  The headline numbers
  are ``overhead_pct_tracing_off`` (budget <3%) and
  ``overhead_pct_tracing_on`` (budget <10%).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.datagen.distributions import (
    KEY_DISTRIBUTIONS,
    KeySampler,
    MeasureSampler,
    _mixture_support,
    measure_sampler,
)
from repro.datagen.ssb import SSBConfig, SSBGenerator
from repro.evaluation.experiments import (
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table2,
)
from repro.evaluation.experiments.common import ExperimentConfig, clear_database_cache
from repro.evaluation.parallel import (
    TrialScheduler,
    clear_worker_cache,
    evaluation_session,
)
from repro.db.cache import active_backend, set_active_backend
from repro.rng import ensure_rng

RESULTS_DIR = Path(__file__).parent / "results"


def _clear_caches() -> None:
    clear_database_cache()
    clear_worker_cache()
    # Engine caches now live in the process-global backend keyed by database
    # *content* — a rebuilt identical instance would hit the previous
    # repeat's entries, so reset to a fresh (lazily created) local backend
    # to keep every timed repeat cold.
    set_active_backend(None)


def _kernels(quick_mode: bool):
    """(name, callable) pairs mirroring the pytest benchmark workloads."""
    if quick_mode:
        quick = ExperimentConfig(epsilons=(0.1, 1.0), trials=2, rows_per_scale_factor=8000)
        full = quick
        graph_scale = 0.02
        scales = (0.5, 1.0)
    else:
        quick = ExperimentConfig.quick()
        full = ExperimentConfig(epsilons=(0.1, 0.5, 1.0), trials=3, rows_per_scale_factor=240_000)
        graph_scale = 0.1
        scales = (0.25, 0.5, 1.0)
    return [
        ("table1", lambda: table1.run(quick)),
        ("table2", lambda: table2.run(quick, graph_scale=graph_scale)),
        ("figure4", lambda: figure4.run(full, scales=scales)),
        ("figure5", lambda: figure5.run(quick, scales=scales)),
        ("figure6", lambda: figure6.run(quick)),
        ("figure7", lambda: figure7.run(quick)),
        ("figure8", lambda: figure8.run(quick)),
        ("figure9", lambda: figure9.run(quick)),
        ("figure10", lambda: figure10.run(quick)),
        ("figure11", lambda: figure11.run(quick)),
    ]


# ----------------------------------------------------------------------
# scaling baselines
# ----------------------------------------------------------------------
class _LegacyKeySampler(KeySampler):
    """The pre-cached-sampler behaviour: rebuild and renormalise the
    probability vector on every call and draw through ``Generator.choice``."""

    def probabilities(self, size: int) -> np.ndarray:  # type: ignore[override]
        probabilities = np.asarray(self._probability_fn(size), dtype=np.float64)
        probabilities = np.clip(probabilities, 1e-12, None)
        return probabilities / probabilities.sum()

    def sample(self, size: int, count: int, rng=None) -> np.ndarray:  # type: ignore[override]
        generator = ensure_rng(rng)
        probabilities = self.probabilities(size)
        if probabilities.size and probabilities.max() - probabilities.min() < 1e-15:
            return generator.integers(0, size, size=count, dtype=np.int64)
        return generator.choice(size, size=count, p=probabilities).astype(np.int64)


def _legacy_mixture_measure(spec) -> MeasureSampler:
    """The pre-fix mixture measure draw (`Generator.choice` over components)."""

    def draw(rng, count):
        component = rng.choice(2, size=count, p=np.asarray(spec.weights))
        means = np.asarray(spec.means)[component]
        stds = np.asarray(spec.stds)[component]
        return rng.normal(means, stds)

    return MeasureSampler("gaussian_mixture", draw, support=_mixture_support(spec))


def _key_sampler_for(name: str, legacy: bool, **params) -> KeySampler:
    if legacy:
        sampler = KEY_DISTRIBUTIONS[name](**params)
        return _LegacyKeySampler(sampler.name, sampler._probability_fn)
    # The driver path: ``key_sampler`` memoizes instances, so repeated builds
    # share the cached per-size sampling tables.
    from repro.datagen.distributions import key_sampler

    return key_sampler(name, **params)


def _build_skew_instances(legacy: bool, rows: int) -> None:
    """Build the Figure 7 / Figure 11 style skewed instances once."""
    for distribution in ("exponential", "gamma"):
        key = _key_sampler_for(distribution, legacy)
        measure = measure_sampler(distribution)
        for scale in (0.5, 1.0):
            SSBGenerator(
                SSBConfig(
                    scale_factor=scale,
                    rows_per_scale_factor=rows,
                    key_distribution=key,
                    measure_distribution=measure,
                    seed=97,
                )
            ).build()
    for index, (_, spec) in enumerate(figure11.MIXTURES):
        key = _key_sampler_for("gaussian_mixture", legacy, spec=spec)
        measure = (
            _legacy_mixture_measure(spec)
            if legacy
            else measure_sampler("gaussian_mixture", spec=spec)
        )
        SSBGenerator(
            SSBConfig(
                scale_factor=1.0,
                rows_per_scale_factor=rows,
                key_distribution=key,
                measure_distribution=measure,
                seed=131 + index,
            )
        ).build()


def bench_skew_datagen(repeats: int, rows: int = 240_000) -> dict:
    """Cached-table samplers vs the legacy ``Generator.choice`` datagen path.

    Measures the steady state the experiments actually pay: figure7/figure11
    rebuild the same skewed instance shapes trial after trial and figure
    after figure, and the legacy sampler re-derived and renormalised its
    probability vector on every one of those draws (the "quadratic-ish in
    trial count" bug).  One untimed warm-up pass precedes the timed passes
    for both variants.
    """
    timings = {"legacy": [], "cached": []}
    for label, legacy in (("legacy", True), ("cached", False)):
        _build_skew_instances(legacy, rows)  # warm-up (excluded)
        for _ in range(repeats):
            start = time.perf_counter()
            _build_skew_instances(legacy, rows)
            timings[label].append(time.perf_counter() - start)
    legacy_mean = sum(timings["legacy"]) / repeats
    cached_mean = sum(timings["cached"]) / repeats
    return {
        "rows_per_scale_factor": rows,
        "legacy_mean_s": round(legacy_mean, 6),
        "cached_mean_s": round(cached_mean, 6),
        "speedup": round(legacy_mean / cached_mean, 3),
        "samples": {k: [round(s, 6) for s in v] for k, v in timings.items()},
    }


def bench_parallel_runner(repeats: int, jobs: int = 4, graph_scale: float = 0.25) -> dict:
    """Table 2 through the trial scheduler, serial vs ``jobs`` workers."""
    quick = ExperimentConfig.quick()
    timings = {"serial": [], "parallel": []}
    for _ in range(repeats):
        for label, n_jobs in (("serial", 1), ("parallel", jobs)):
            _clear_caches()
            config = ExperimentConfig(
                epsilons=quick.epsilons,
                trials=quick.trials,
                rows_per_scale_factor=quick.rows_per_scale_factor,
                jobs=n_jobs,
            )
            start = time.perf_counter()
            table2.run(config, graph_scale=graph_scale)
            timings[label].append(time.perf_counter() - start)
    serial_mean = sum(timings["serial"]) / repeats
    parallel_mean = sum(timings["parallel"]) / repeats
    cpus = os.cpu_count() or 1
    entry = {
        "jobs": jobs,
        "cpus": cpus,
        "graph_scale": graph_scale,
        "serial_mean_s": round(serial_mean, 6),
        "parallel_mean_s": round(parallel_mean, 6),
        "speedup": round(serial_mean / parallel_mean, 3),
        "samples": {k: [round(s, 6) for s in v] for k, v in timings.items()},
    }
    if cpus < jobs:
        entry["note"] = (
            f"host exposes {cpus} CPU(s); a {jobs}-worker run cannot beat serial "
            "wall clock here — compare on a multicore host (e.g. CI)"
        )
    return entry


def bench_cache_backends(repeats: int, jobs: int = 4, rows: int = 24_000) -> dict:
    """Table 1 under the local vs the shared cache backend, same pool size.

    The interesting number on a multicore host is the shared tier's hit rate:
    every cross-worker hit is a selection mask, contribution vector, cube or
    exact answer one worker obtained from another worker's (or the parent
    warm-up's) work instead of recomputing it.  On a single-CPU container the
    wall-clock comparison mostly measures manager round-trips; the hit
    counters are meaningful everywhere.
    """
    timings = {"local": [], "shared": []}
    stats = {}
    for label in ("local", "shared"):
        for index in range(repeats):
            _clear_caches()
            config = ExperimentConfig(
                epsilons=(0.1, 0.5, 1.0),
                trials=3,
                rows_per_scale_factor=rows,
                jobs=jobs,
                cache_backend=label,
            )
            start = time.perf_counter()
            with evaluation_session(config):
                table1.run(config)
                if index == repeats - 1:
                    run_stats = active_backend().stats()
            timings[label].append(time.perf_counter() - start)
        stats[label] = run_stats.as_dict()
        stats[label]["shared_hit_rate"] = round(run_stats.shared_hit_rate, 4)
    local_mean = sum(timings["local"]) / repeats
    shared_mean = sum(timings["shared"]) / repeats
    return {
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
        "rows_per_scale_factor": rows,
        "local_mean_s": round(local_mean, 6),
        "shared_mean_s": round(shared_mean, 6),
        "local_over_shared": round(local_mean / shared_mean, 3),
        "stats": stats,
        "samples": {k: [round(s, 6) for s in v] for k, v in timings.items()},
    }


def bench_run_wide_scheduler(repeats: int, jobs: int = 4, rows: int = 24_000) -> dict:
    """One pool per experiment (transient schedulers) vs one pool per run.

    Runs table1 + figure9 both ways and also reports how many pools each
    variant forked — the run-wide session must report exactly 1.
    """

    def _run(config, session: bool) -> None:
        if session:
            with evaluation_session(config):
                table1.run(config)
                figure9.run(config)
        else:
            table1.run(config)
            figure9.run(config)

    timings = {"per_experiment": [], "run_wide": []}
    pools = {}
    for label, session in (("per_experiment", False), ("run_wide", True)):
        for _ in range(repeats):
            _clear_caches()
            config = ExperimentConfig(
                epsilons=(0.1, 0.5, 1.0),
                trials=3,
                rows_per_scale_factor=rows,
                jobs=jobs,
            )
            pools_before = TrialScheduler.pools_created
            start = time.perf_counter()
            _run(config, session)
            timings[label].append(time.perf_counter() - start)
            pools[label] = TrialScheduler.pools_created - pools_before
    per_experiment_mean = sum(timings["per_experiment"]) / repeats
    run_wide_mean = sum(timings["run_wide"]) / repeats
    return {
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
        "rows_per_scale_factor": rows,
        "experiments": ["table1", "figure9"],
        "pools_created": pools,
        "per_experiment_mean_s": round(per_experiment_mean, 6),
        "run_wide_mean_s": round(run_wide_mean, 6),
        "speedup": round(per_experiment_mean / run_wide_mean, 3),
        "samples": {k: [round(s, 6) for s in v] for k, v in timings.items()},
    }


def bench_cache_server(repeats: int, rows: int = 24_000) -> dict:
    """Table 1 through the out-of-process cache server, cold vs warm-from-disk.

    Every repeat starts its own server (embedded on a thread, persisted to a
    sqlite file) and runs the whole experiment through a
    ``RemoteCacheBackend``.  Cold repeats begin from a deleted persistence
    file; warm repeats restart the server from the file the cold runs left
    behind, so the run's expensive artefacts — selection masks, cubes, exact
    answers — are served from another *run's* work (the batch-warms-serving
    property, measured end to end).  Besides wall clock the entry records the
    client remote-tier hit rate, the server's own counters (entries loaded
    from disk) and the bytes that crossed the wire.
    """
    import tempfile

    from repro.db.cache.server import CacheServerThread

    timings: dict[str, list] = {"cold": [], "warm": []}
    details: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench_cache.db")
        for label in ("cold", "warm"):
            for index in range(repeats):
                if label == "cold" and os.path.exists(path):
                    os.remove(path)  # cold repeats must not inherit disk state
                _clear_caches()
                with CacheServerThread(path=path, max_entries=8192) as handle:
                    loaded = handle.server.store.loaded_from_disk
                    config = ExperimentConfig(
                        epsilons=(0.1, 0.5, 1.0),
                        trials=3,
                        rows_per_scale_factor=rows,
                        cache_backend="remote",
                        cache_url=f"127.0.0.1:{handle.server.port}",
                    )
                    start = time.perf_counter()
                    with evaluation_session(config):
                        table1.run(config)
                        if index == repeats - 1:
                            backend = active_backend()
                            stats = backend.stats()
                            details[label] = {
                                "loaded_from_disk": loaded,
                                "remote_hits": stats.shared_hits,
                                "remote_misses": stats.shared_misses,
                                "remote_puts": stats.shared_puts,
                                "remote_hit_rate": round(stats.shared_hit_rate, 4),
                                "wire": backend.remote_io(),
                                "server": backend.server_stats(),
                            }
                    timings[label].append(time.perf_counter() - start)
    cold_mean = sum(timings["cold"]) / repeats
    warm_mean = sum(timings["warm"]) / repeats
    return {
        "rows_per_scale_factor": rows,
        "cpus": os.cpu_count() or 1,
        "cold_mean_s": round(cold_mean, 6),
        "warm_mean_s": round(warm_mean, 6),
        "cold_over_warm": round(cold_mean / warm_mean, 3),
        "details": details,
        "samples": {k: [round(s, 6) for s in v] for k, v in timings.items()},
    }


def bench_cache_eviction(repeats: int, rows: int = 24_000) -> dict:
    """Cache economics under pressure: LRU vs cost-aware GDSF vs GDSF+warming.

    Replays a three-phase, Zipf-skewed analyst trace against a deliberately
    tiny cache server (12 entries — far below the trace's working set), once
    per eviction mode at *equal* capacity:

    * phase 1 (hot set): three expensive SUM queries re-run every round plus
      two expensive GROUP BY queries run once — answers the analyst will
      come back to;
    * phase 2 (flood): dozens of distinct one-off COUNT drill-downs with
      Zipf-skewed repetition — each recomputes in microseconds from a shared
      data cube, but under LRU their sheer number evicts every phase-1
      answer;
    * phase 3 (return): the phase-1 trace again through a fresh client tier
      (empty L1), so whatever the server evicted must be recomputed.

    The headline numbers are phase 3's recompute seconds (wall clock spent
    re-deriving evicted answers) and hit rate: ``lru_over_cost`` is the
    recompute ratio the cost-aware policy saves at equal capacity, and the
    warm-ahead mode replays its queued misses *before* phase 3, moving even
    the cost policy's casualties off the critical path (``lru_over_warm``).
    ``results_identical`` pins the invariant: eviction policy and warming
    change *when* work happens, never what is computed.
    """
    from repro.datagen.ssb import ssb_schema
    from repro.db.cache import RemoteCacheBackend, backend_scope
    from repro.db.cache.server import CacheServerThread
    from repro.db.cache.warming import WarmAheadWorker, WarmingQueue, queue_scope
    from repro.db.executor import GroupedResult, QueryExecutor
    from repro.db.predicates import PointPredicate
    from repro.db.query import StarJoinQuery
    from repro.workloads.ssb_queries import ssb_query

    schema = ssb_schema()
    database = SSBGenerator(
        SSBConfig(scale_factor=1.0, rows_per_scale_factor=rows, seed=7)
    ).build()

    pinned = [ssb_query(name, schema) for name in ("Qs2", "Qs3", "Qs4")]
    returning = [ssb_query(name, schema) for name in ("Qg2", "Qg4")]
    hot = pinned + returning

    # One-off drill-downs: a point COUNT for every value of three small
    # dimension attributes.  All queries over one attribute contract the same
    # COUNT cube, so each is microseconds to recompute — individually
    # worthless to cache, collectively (under LRU) enough distinct puts to
    # roll the whole hot set out of a 12-entry server.
    flood: list[StarJoinQuery] = []
    for table, attribute in (
        ("Part", "category"),
        ("Customer", "region"),
        ("Supplier", "region"),
    ):
        domain = schema.table_schema(table).domain_of(attribute)
        flood.extend(
            StarJoinQuery.count(
                f"drill-{table}.{attribute}={value}",
                predicates=[
                    PointPredicate(
                        table=table, attribute=attribute, domain=domain, value=value
                    )
                ],
            )
            for value in domain.values
        )
    # Zipf-skewed visit counts: rank r is visited ~6/r times (≥ 1).  Repeats
    # land in the client L1, exactly like a real analyst's back-to-back
    # drill-downs; the distinct tail is what churns the server.
    flood_trace = [
        query
        for rank, query in enumerate(flood, start=1)
        for _ in range(max(1, round(6 / rank)))
    ]

    def _run_trace(executor, trace) -> dict:
        cold = 0
        recompute_s = 0.0
        answers: dict = {}
        began = time.perf_counter()
        for query in trace:
            warm = executor.engine.cached_result(query) is not None
            start = time.perf_counter()
            result = executor.execute(query)
            elapsed = time.perf_counter() - start
            if not warm:
                cold += 1
                recompute_s += elapsed
            if query not in answers:
                answers[query] = result
        return {
            "executions": len(trace),
            "cold": cold,
            "recompute_s": recompute_s,
            "wall_s": time.perf_counter() - began,
            "answers": answers,
        }

    def _canonical(answers: dict) -> str:
        payload = []
        for answer in answers.values():
            if isinstance(answer, GroupedResult):
                payload.append(sorted((str(k), v) for k, v in answer.groups.items()))
            else:
                payload.append(answer)
        return json.dumps(payload)

    capacity = 12
    modes = ("lru", "cost", "cost+warm")
    details: dict[str, dict] = {}
    outputs: dict[str, str] = {}
    samples: dict[str, list] = {mode: [] for mode in modes}
    phase3_trace = hot + pinned + pinned  # the analyst's return, Zipf-shaped
    for mode in modes:
        policy = "lru" if mode == "lru" else "cost"
        for repeat in range(repeats):
            _clear_caches()
            with CacheServerThread(
                max_entries=capacity, max_bytes=1 << 18, policy=policy
            ) as handle:
                port = handle.server.port

                def _client():
                    # A fresh client tier per phase: the server is the only
                    # state that survives, so phase 3 measures *its* policy.
                    return RemoteCacheBackend(
                        host="127.0.0.1", port=port, max_entries=256, policy=policy
                    )

                queue = WarmingQueue() if mode == "cost+warm" else None
                with queue_scope(queue):
                    for round_index in range(3):
                        client = _client()
                        with backend_scope(client):
                            trace = hot if round_index == 0 else pinned
                            _run_trace(QueryExecutor(database), trace)
                        client.close()
                    client = _client()
                    with backend_scope(client):
                        _run_trace(QueryExecutor(database), flood_trace)
                    client.close()
                    if queue is not None:
                        # The warm-ahead pass runs off the timed path, on a
                        # throwaway client: replays re-derive whatever the
                        # server evicted and put it back through.
                        client = _client()
                        with backend_scope(client):
                            WarmAheadWorker(queue).run_once(max_tasks=len(hot))
                        client.close()
                    client = _client()
                    with backend_scope(client):
                        measured = _run_trace(QueryExecutor(database), phase3_trace)
                    samples[mode].append(measured["recompute_s"])
                    if repeat == repeats - 1:
                        stats = client.stats()
                        outputs[mode] = _canonical(measured["answers"])
                        details[mode] = {
                            "phase3_executions": measured["executions"],
                            "phase3_recomputes": measured["cold"],
                            "phase3_hit_rate": round(
                                1 - measured["cold"] / measured["executions"], 4
                            ),
                            "phase3_wall_s": round(measured["wall_s"], 6),
                            "remote_hits": stats.shared_hits,
                            "remote_misses": stats.shared_misses,
                            "server": handle.server.store.stats(),
                        }
                    client.close()
    _clear_caches()

    means = {mode: sum(samples[mode]) / repeats for mode in modes}
    return {
        "rows_per_scale_factor": rows,
        "server_max_entries": capacity,
        "trace": {
            "hot_queries": [query.name for query in hot],
            "flood_distinct": len(flood),
            "flood_executions": len(flood_trace),
        },
        "recompute_s": {mode: round(means[mode], 6) for mode in modes},
        "recompute_saved_s": {
            mode: round(means["lru"] - means[mode], 6) for mode in ("cost", "cost+warm")
        },
        # A fully-warmed phase 3 recomputes nothing, so the ratio is capped
        # rather than reported as seconds-over-epsilon noise.
        "lru_over_cost": round(min(means["lru"] / max(means["cost"], 1e-9), 999.0), 3),
        "lru_over_warm": round(
            min(means["lru"] / max(means["cost+warm"], 1e-9), 999.0), 3
        ),
        "hit_rates": {mode: details[mode]["phase3_hit_rate"] for mode in modes},
        "results_identical": len(set(outputs.values())) == 1,
        "details": details,
        "samples": {k: [round(s, 6) for s in v] for k, v in samples.items()},
    }


def bench_fault_tolerance(repeats: int, rows: int = 8_000) -> dict:
    """Table 1 through the chaos proxy: clean network vs injected faults.

    Every pass runs the workload against the out-of-process cache server
    *through* a :class:`repro.testing.ChaosProxy`, with a tight-deadline
    ``RemoteCacheBackend`` (short per-op timeouts, bounded retries, a
    circuit breaker that degrades to local-only and probes its way back).
    The ``clean`` passes forward everything untouched; the ``chaos`` passes
    drop 5% of chunks, kill 2% of connections and delay 30% of chunks — the
    flaky network the fault-tolerance test suite scripts.  Each variant
    starts from a fresh server so warmness is symmetrical.  The headline
    field is ``results_identical``: the chaos run must produce
    byte-identical experiment answers (resilience costs wall clock, never
    correctness; the rows' own ``mean_time_s`` column is excluded from the
    comparison for exactly that reason).  The entry also records the
    breaker's trips/recoveries and the proxy's chunk counters for the last
    repeat of each variant.
    """
    from dataclasses import asdict

    from repro.db.cache import RemoteCacheBackend, backend_scope
    from repro.db.cache.server import CacheServerThread
    from repro.testing import ChaosProxy, FaultSpec

    chaos_spec = FaultSpec(drop_rate=0.05, kill_rate=0.02, delay_s=0.005, delay_rate=0.3)
    config = ExperimentConfig(epsilons=(0.1, 1.0), trials=2, rows_per_scale_factor=rows)
    timings: dict[str, list] = {"clean": [], "chaos": []}
    details: dict[str, dict] = {}
    outputs: dict[str, str] = {}
    for label, spec in (("clean", FaultSpec()), ("chaos", chaos_spec)):
        with CacheServerThread(max_entries=8192) as handle:
            with ChaosProxy("127.0.0.1", handle.server.port, spec=spec, seed=13) as proxy:
                for index in range(repeats):
                    _clear_caches()
                    backend = RemoteCacheBackend(
                        host="127.0.0.1",
                        port=proxy.port,
                        op_timeout=0.25,
                        retry_attempts=3,
                        backoff_base=0.01,
                        backoff_max=0.05,
                        breaker_threshold=3,
                        breaker_reset_timeout=0.2,
                    )
                    start = time.perf_counter()
                    with backend_scope(backend):
                        result = table1.run(config)
                    timings[label].append(time.perf_counter() - start)
                    if index == repeats - 1:
                        outputs[label] = json.dumps(
                            [
                                {k: v for k, v in row.items() if not k.endswith("time_s")}
                                for row in result.rows
                            ],
                            sort_keys=True,
                            default=str,
                        )
                        details[label] = {
                            "breaker": backend.breaker_stats(),
                            "proxy": proxy.stats(),
                        }
                    backend.close()
    clean_mean = sum(timings["clean"]) / repeats
    chaos_mean = sum(timings["chaos"]) / repeats
    return {
        "rows_per_scale_factor": rows,
        "fault_spec": asdict(chaos_spec),
        "clean_mean_s": round(clean_mean, 6),
        "chaos_mean_s": round(chaos_mean, 6),
        "chaos_over_clean": round(chaos_mean / clean_mean, 3),
        "results_identical": outputs["chaos"] == outputs["clean"],
        "details": details,
        "samples": {k: [round(s, 6) for s in v] for k, v in timings.items()},
    }


_STORAGE_CHILD = """\
import json, resource, sys, time
mode, data_dir, rows = sys.argv[1], sys.argv[2], int(sys.argv[3])


def peak_rss_kb():
    # ru_maxrss survives fork+exec and would report the *parent's* peak at
    # spawn time; VmHWM lives in the mm and is reset by exec, so it is the
    # child's own high-water mark.
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


from repro.evaluation.experiments import table1
from repro.evaluation.experiments.common import ExperimentConfig
config = ExperimentConfig(
    epsilons=(0.1, 1.0), trials=2, rows_per_scale_factor=rows,
    storage=mode, data_dir=data_dir if mode == "mapped" else None,
)
start = time.perf_counter()
result = table1.run(config, query_names=("Qc1", "Qs2"))
wall = time.perf_counter() - start
rows_out = [
    {k: v for k, v in row.items() if k != "mean_time_s"} for row in result.rows
]
print(json.dumps({
    "wall_s": wall,
    "peak_rss_kb": peak_rss_kb(),
    "rows": rows_out,
}, default=str))
"""


def bench_columnar_storage(repeats: int, rows: int = 1_500_000) -> dict:
    """In-memory vs mapped storage: wall clock, peak RSS, and a chunk sweep.

    Each storage mode runs a Table-1 style grid (two queries, two ε values)
    in a *fresh* subprocess — ``ru_maxrss`` is a process-lifetime peak, so
    per-mode children are the only way to attribute it.  The parent spills
    the instance once beforehand; the mapped children attach those files
    read-only (the offline-prepare/online-attach split docs/STORAGE.md
    describes), while the memory children pay generation plus eager arrays.
    The headline number is ``rss_reduction`` — the fraction of the eager
    run's peak RSS the mapped run avoids.  The children's experiment rows
    (timing excluded) must be identical across modes.

    The chunk sweep times the chunked kernels (selection masks,
    contributions, data cubes) on the attached instance across chunk sizes,
    against the whole-array in-memory reference.
    """
    import subprocess
    import tempfile

    from repro.db.engine import ExecutionEngine
    from repro.db.query import AggregateKind
    from repro.db.storage import attach_database
    from repro.core.workload import workload_attributes
    from repro.evaluation.experiments.common import build_ssb_database
    from repro.workloads.ssb_queries import ssb_query

    src_root = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    timings: dict[str, list] = {"memory": [], "mapped": []}
    peaks: dict[str, list] = {"memory": [], "mapped": []}
    outputs: dict[str, str] = {}
    with tempfile.TemporaryDirectory(prefix="bench_columnar_") as tmp:
        data_dir = os.path.join(tmp, "data")
        config = ExperimentConfig(
            epsilons=(0.1, 1.0),
            trials=2,
            rows_per_scale_factor=rows,
            storage="mapped",
            data_dir=data_dir,
        )
        database = build_ssb_database(config)  # spill once, uncapped
        manifest_dir = None
        for child in Path(data_dir).iterdir():
            manifest_dir = child

        for mode in ("memory", "mapped"):
            for _ in range(repeats):
                result = subprocess.run(
                    [sys.executable, "-c", _STORAGE_CHILD, mode, data_dir, str(rows)],
                    env=env,
                    capture_output=True,
                    text=True,
                    check=True,
                )
                payload = json.loads(result.stdout)
                timings[mode].append(payload["wall_s"])
                peaks[mode].append(payload["peak_rss_kb"])
                outputs[mode] = json.dumps(payload["rows"], sort_keys=True)

        # Chunk sweep: same kernels, same attached instance, rising chunks.
        attached = attach_database(manifest_dir)
        queries = [ssb_query("Qc1"), ssb_query("Qs2")]
        attributes = tuple(workload_attributes(queries))

        def _kernel_pass(engine) -> float:
            start = time.perf_counter()
            for query in queries:
                engine.selection_mask(query.predicates)
                engine.contribution_per_key(query.predicates, "Customer")
                engine.contribution_per_key(
                    query.predicates, "Customer", AggregateKind.SUM, measure="revenue"
                )
            engine.data_cube(attributes)
            return time.perf_counter() - start

        sweep = {}
        for label, target, chunk in (
            ("memory_unchunked", database, None),
            ("mapped_16k", attached, 1 << 14),
            ("mapped_64k", attached, 1 << 16),
            ("mapped_256k", attached, 1 << 18),
        ):
            set_active_backend(None)  # cold caches for every sweep point
            sweep[label] = round(
                _kernel_pass(ExecutionEngine(target, chunk_rows=chunk)), 6
            )
    _clear_caches()

    memory_wall = sum(timings["memory"]) / repeats
    mapped_wall = sum(timings["mapped"]) / repeats
    memory_peak = max(peaks["memory"])
    mapped_peak = max(peaks["mapped"])
    return {
        "rows_per_scale_factor": rows,
        "memory_wall_s": round(memory_wall, 6),
        "mapped_wall_s": round(mapped_wall, 6),
        "memory_peak_rss_kb": memory_peak,
        "mapped_peak_rss_kb": mapped_peak,
        "rss_reduction": round(1 - mapped_peak / memory_peak, 4),
        "results_identical": outputs["memory"] == outputs["mapped"],
        "chunk_sweep_s": sweep,
        "note": (
            "memory children generate the instance in-process; mapped children "
            "attach the parent's spilled files (the intended deployment split)"
        ),
        "samples": {
            "wall_s": {k: [round(s, 6) for s in v] for k, v in timings.items()},
            "peak_rss_kb": peaks,
        },
    }


def bench_serving_throughput(repeats: int, quick_mode: bool = False) -> dict:
    """The online query server's requests/sec at rising client concurrency.

    One in-process server (thread-pooled engine work, local cache backend)
    serves N concurrent blocking clients, each replaying the same mix of
    named SSB queries across ε values.  Because identical concurrent requests
    share a seed stream, the interesting counters besides raw rps are the
    single-flight coalescing count (requests served by another request's
    in-flight execution) and the engine-cache hit rate (exact answers /
    selection masks reused across requests).  On a single-CPU container the
    levels mostly measure protocol and scheduling overhead — the engine work
    is GIL-serialised either way; the counters are meaningful everywhere.
    """
    import threading

    from repro.dp.accountant import PrivacyBudget
    from repro.serving import (
        BudgetLedger,
        QueryPlanner,
        QueryServer,
        ServerThread,
        ServingClient,
    )

    rows = 4_000 if quick_mode else 16_000
    requests_per_client = 6 if quick_mode else 12
    levels = (1, 4) if quick_mode else (1, 4, 16)
    queries = ("Qc1", "Qc2", "Qs2")
    epsilons = (0.1, 0.5, 1.0)

    planner = QueryPlanner(seed=20230711)
    planner.register("bench", "ssb", scale_factor=1.0, rows_per_scale_factor=rows, seed=7)
    server = QueryServer(
        planner, BudgetLedger(PrivacyBudget(1e6)), port=0, workers=8
    )
    entry: dict = {
        "rows_per_scale_factor": rows,
        "requests_per_client": requests_per_client,
        "cpus": os.cpu_count() or 1,
        "query_mix": list(queries),
        "levels": {},
    }

    def client_loop(index: int, barrier: threading.Barrier) -> None:
        with ServingClient(port=server.port) as client:
            barrier.wait()
            for request in range(requests_per_client):
                client.query(
                    "bench",
                    "PM",
                    epsilons[request % len(epsilons)],
                    query=queries[request % len(queries)],
                    analyst=f"bench-{index}",
                )

    with ServerThread(server):
        # Untimed warm-up: pays datagen-independent one-offs (exact answers,
        # selection masks) so the levels measure the serving steady state.
        with ServingClient(port=server.port) as client:
            for query in queries:
                client.query("bench", "PM", 1.0, query=query, analyst="warmup")
        for clients_n in levels:
            samples = []
            for _ in range(repeats):
                barrier = threading.Barrier(clients_n + 1)
                threads = [
                    threading.Thread(target=client_loop, args=(index, barrier))
                    for index in range(clients_n)
                ]
                for thread in threads:
                    thread.start()
                barrier.wait()
                start = time.perf_counter()
                for thread in threads:
                    thread.join()
                samples.append(time.perf_counter() - start)
            total_requests = clients_n * requests_per_client
            mean = sum(samples) / len(samples)
            entry["levels"][str(clients_n)] = {
                "clients": clients_n,
                "requests": total_requests,
                "mean_s": round(mean, 6),
                "rps": round(total_requests / mean, 2),
                "samples": [round(sample, 6) for sample in samples],
            }
        with ServingClient(port=server.port) as client:
            stats = client.stats()
    singleflight = stats["planner"]["singleflight"]
    entry["coalesced"] = singleflight["coalesced"]
    entry["singleflight_executions"] = singleflight["executions"]
    entry["cache_hit_rate"] = round(stats["cache"]["hit_rate"], 4)
    return entry


def bench_telemetry_overhead(repeats: int, quick_mode: bool = False) -> dict:
    """Instrumentation cost of the observability layer on served requests.

    One in-process server answers the same warm-cache query mix under three
    telemetry configurations: a :class:`NullRegistry` baseline whose
    instruments absorb every write (the *uninstrumented* floor), the
    production default (a live registry, tracing off), and tracing on
    (``--trace-path``).  The budget the docs promise is <3% overhead with
    tracing off and <10% with tracing on, measured where it matters — on
    whole served requests, client round-trip included.

    This machine's absolute throughput drifts by tens of percent over
    seconds, which dwarfs the single-digit budgets being pinned, so the
    modes are interleaved at single-pass granularity — null, off, on,
    null, off, on, ... — and each round contributes one *paired* overhead
    ratio; the report takes the median across rounds.  Drift slow relative
    to one pass cancels inside each pair, and a scheduler hiccup during
    one pass skews only that round's ratio, which the median discards.
    The registry and tracer are process-wide globals the server reads per
    request, so toggling them between passes re-modes the running server
    without a restart; one tracer stays open for the whole run so file
    creation is not billed to the tracing mode.
    """
    import tempfile

    from repro.dp.accountant import PrivacyBudget
    from repro.obs.metrics import MetricsRegistry, NullRegistry, set_active_registry
    from repro.obs.trace import Tracer, set_active_tracer
    from repro.serving import (
        BudgetLedger,
        QueryPlanner,
        QueryServer,
        ServerThread,
        ServingClient,
    )

    rows = 4_000 if quick_mode else 8_000
    interleavings = (16 if quick_mode else 32) * max(1, repeats)
    # Warm caches, noise resampled per trial.  The paper's experiment cells
    # run ~100 trials per query; 32 keeps a served request representative
    # (a few ms of mechanism work) without inflating bench runtime.
    trials = 32
    planner = QueryPlanner(seed=20230711)
    planner.register("bench", "ssb", scale_factor=1.0, rows_per_scale_factor=rows, seed=7)
    requests = [
        ("PM", epsilon, query)
        for query in ("Qc1", "Qc2", "Qs2")
        for epsilon in (0.1, 0.5, 1.0)
    ]

    server = QueryServer(planner, BudgetLedger(PrivacyBudget(1e9)), port=0, workers=2)
    null_registry, live_registry = NullRegistry(), MetricsRegistry()
    rounds = {"null": [], "off": [], "on": []}
    with tempfile.TemporaryDirectory() as tmp:
        tracer = Tracer(os.path.join(tmp, "bench-trace.jsonl"))
        previous_registry = set_active_registry(null_registry)
        previous_tracer = set_active_tracer(None)
        try:
            with ServerThread(server):
                with ServingClient(port=server.port) as client:

                    def timed_pass() -> float:
                        start = time.perf_counter()
                        for mechanism, epsilon, query in requests:
                            client.query("bench", mechanism, epsilon,
                                         query=query, trials=trials)
                        return time.perf_counter() - start

                    timed_pass()  # untimed warm-up: steady state only
                    for _ in range(interleavings):
                        set_active_registry(null_registry)
                        rounds["null"].append(timed_pass())
                        set_active_registry(live_registry)
                        rounds["off"].append(timed_pass())
                        set_active_tracer(tracer)
                        rounds["on"].append(timed_pass())
                        set_active_tracer(None)
        finally:
            set_active_tracer(previous_tracer)
            set_active_registry(previous_registry)
            spans_written = tracer.spans_written
            tracer.close()

    def median(values: list) -> float:
        ranked = sorted(values)
        middle = len(ranked) // 2
        if len(ranked) % 2:
            return ranked[middle]
        return (ranked[middle - 1] + ranked[middle]) / 2

    def paired_overhead_pct(mode: str) -> float:
        # Median of per-round paired ratios: a scheduler hiccup during one
        # pass skews that single ratio, not a sum it is folded into.
        return median([
            (sample - null) / null * 100
            for null, sample in zip(rounds["null"], rounds[mode])
        ])

    mode_requests = interleavings * len(requests)
    return {
        "requests_per_mode": mode_requests,
        "interleavings": interleavings,
        "query_mix": sorted({query for _, _, query in requests}),
        "uninstrumented_rps": round(len(requests) / median(rounds["null"]), 2),
        "instrumented_rps": round(len(requests) / median(rounds["off"]), 2),
        "tracing_rps": round(len(requests) / median(rounds["on"]), 2),
        "overhead_pct_tracing_off": round(paired_overhead_pct("off"), 2),
        "overhead_pct_tracing_on": round(paired_overhead_pct("on"), 2),
        "budget_pct": {"tracing_off": 3.0, "tracing_on": 10.0},
        "spans_per_request": round(spans_written / mode_requests, 2),
        "round_seconds": {
            name: [round(sample, 6) for sample in samples]
            for name, samples in rounds.items()
        },
    }


def bench_sharded_serving(repeats: int, quick_mode: bool = False) -> dict:
    """Throughput scaling of the fleet router across serving shards, with
    byte-identical answers pinned against a direct single server.

    On this one-CPU container adding shards cannot scale *compute*, so the
    kernel is deliberately latency-bound: every planner execution sleeps a
    fixed simulated I/O latency, each shard admits one request at a time
    (``workers=1, max_inflight=1`` — a shard is a serial resource), and the
    four concurrent clients are analysts pre-picked so the router's hash
    ring homes two on each shard.  One shard then serves ~1/latency rps and
    two shards about twice that; the measured scaling is the router's
    fan-out doing its job, not a parallel-CPU artefact (``cpus`` is recorded
    so readers can tell).  The identity check is the real acceptance bar:
    routed answers must match a direct, router-free server byte for byte.
    """
    import threading

    from repro.dp.accountant import PrivacyBudget
    from repro.serving import (
        BudgetLedger,
        FleetRouter,
        FleetThread,
        QueryPlanner,
        QueryServer,
        ServerThread,
        ServingClient,
    )

    delay_s = 0.02
    rows = 2_000
    clients_n = 4
    requests_per_client = 4 if quick_mode else 8
    queries = ("Qc1", "Qc2", "Qs2")

    class _LatencyPlanner(QueryPlanner):
        """The serving planner with a fixed simulated I/O latency per
        execution — the cache misses / storage reads a bigger deployment
        pays per request, collapsed into one deterministic sleep."""

        def execute(self, planned):
            result = super().execute(planned)
            time.sleep(delay_s)
            return result

    def build_shard(latency: bool = True):
        planner_cls = _LatencyPlanner if latency else QueryPlanner
        planner = planner_cls(seed=20230811)
        planner.register(
            "bench", "ssb", scale_factor=1.0, rows_per_scale_factor=rows, seed=7
        )
        return QueryServer(
            planner,
            BudgetLedger(PrivacyBudget(1e6)),
            port=0,
            workers=1,
            max_inflight=1,
            max_queue=64,
        )

    # Each client gets a distinct epsilon per request so no two in-flight
    # requests share a fingerprint — single-flight coalescing would let one
    # execution serve several clients and flatter the scaling numbers.
    def request_plan(client: int):
        return [
            (queries[index % len(queries)], round(0.1 + 0.05 * client + 0.01 * index, 4))
            for index in range(requests_per_client)
        ]

    def run_level(shard_count: int):
        shards = [build_shard() for _ in range(shard_count)]
        shard_threads = [ServerThread(shard) for shard in shards]
        for thread in shard_threads:
            thread.start()
        labels = [f"127.0.0.1:{shard.port}" for shard in shards]
        router = FleetRouter(labels)
        # Pre-pick analysts so the clients split evenly across the shards
        # (round-robin over home shards) — the scaling number measures the
        # fleet, not the luck of the hash.
        analysts = []
        wanted = {label: 0 for label in labels}
        candidate = 0
        while len(analysts) < clients_n:
            name = f"bench-{candidate}"
            candidate += 1
            home = router.home_shard(name)
            if wanted[home] < (clients_n + shard_count - 1) // shard_count:
                wanted[home] += 1
                analysts.append(name)
        samples = []
        with FleetThread(router):
            # Untimed warm-up: exact answers and masks computed once so the
            # timed passes measure the serving steady state plus the
            # simulated latency, not datagen.
            with ServingClient(port=router.port) as client:
                for query in queries:
                    client.query("bench", "PM", 1.0, query=query, analyst=analysts[0])

            def client_loop(index: int, barrier: threading.Barrier) -> None:
                with ServingClient(port=router.port) as client:
                    barrier.wait()
                    for query, epsilon in request_plan(index):
                        client.query(
                            "bench", "PM", epsilon, query=query, analyst=analysts[index]
                        )

            for _ in range(repeats):
                barrier = threading.Barrier(clients_n + 1)
                threads = [
                    threading.Thread(target=client_loop, args=(index, barrier))
                    for index in range(clients_n)
                ]
                for thread in threads:
                    thread.start()
                barrier.wait()
                start = time.perf_counter()
                for thread in threads:
                    thread.join()
                samples.append(time.perf_counter() - start)
            with ServingClient(port=router.port) as client:
                routed = client.stats()["router"]["routed_per_shard"]
            # The identity pass: every (query, epsilon) cell the clients
            # replayed, once through the router — answers are pure functions
            # of (seed, request), so one replay per cell suffices.
            answers = {}
            with ServingClient(port=router.port) as client:
                for index in range(clients_n):
                    for query, epsilon in request_plan(index):
                        payload = client.query(
                            "bench", "PM", epsilon, query=query, analyst=analysts[index]
                        )
                        answers[(query, epsilon)] = json.dumps(payload["answers"])
        for thread in shard_threads:
            thread.stop()
        total = clients_n * requests_per_client
        mean = sum(samples) / len(samples)
        return {
            "shards": shard_count,
            "requests": total,
            "mean_s": round(mean, 6),
            "rps": round(total / mean, 2),
            "samples": [round(sample, 6) for sample in samples],
            "routed_per_shard": routed,
        }, answers

    one_shard, answers_one = run_level(1)
    two_shards, answers_two = run_level(2)

    # Reference: a direct, router-free server answering the same cells.
    reference = build_shard(latency=False)
    direct_answers = {}
    with ServerThread(reference):
        with ServingClient(port=reference.port) as client:
            for index in range(clients_n):
                for query, epsilon in request_plan(index):
                    payload = client.query(
                        "bench", "PM", epsilon, query=query, analyst="direct"
                    )
                    direct_answers[(query, epsilon)] = json.dumps(payload["answers"])

    results_identical = answers_one == answers_two == direct_answers
    return {
        "delay_s": delay_s,
        "rows_per_scale_factor": rows,
        "clients": clients_n,
        "requests_per_client": requests_per_client,
        "cpus": os.cpu_count() or 1,
        "query_mix": list(queries),
        "levels": {"1": one_shard, "2": two_shards},
        "throughput_scaling": round(two_shards["rps"] / one_shard["rps"], 2),
        "results_identical": results_identical,
    }


def run_benchmarks(repeats: int = 3, quick_mode: bool = False) -> dict:
    # The parallel-runner baseline goes first: forked workers inherit the
    # parent's heap, so measuring it before the other kernels grow the
    # process keeps the pool startup cost representative.
    parallel = bench_parallel_runner(
        repeats, graph_scale=0.05 if quick_mode else 0.25
    )
    print(f"{'parallel_runner':>15}: serial {parallel['serial_mean_s']*1000:8.1f} ms -> "
          f"{parallel['jobs']} jobs {parallel['parallel_mean_s']*1000:.1f} ms "
          f"({parallel['speedup']}x)")

    timings: dict[str, dict] = {}
    for name, kernel in _kernels(quick_mode):
        samples = []
        for _ in range(repeats):
            _clear_caches()
            start = time.perf_counter()
            kernel()
            samples.append(time.perf_counter() - start)
        timings[name] = {
            "mean_s": round(sum(samples) / len(samples), 6),
            "min_s": round(min(samples), 6),
            "max_s": round(max(samples), 6),
            "samples": [round(sample, 6) for sample in samples],
        }
        print(f"{name:>15}: mean {timings[name]['mean_s']*1000:8.1f} ms "
              f"(min {timings[name]['min_s']*1000:.1f} ms over {repeats} repeats)")

    skew = bench_skew_datagen(repeats, rows=24_000 if quick_mode else 240_000)
    print(f"{'skew_datagen':>15}: legacy {skew['legacy_mean_s']*1000:8.1f} ms -> "
          f"cached {skew['cached_mean_s']*1000:.1f} ms ({skew['speedup']}x)")

    backend_rows = 8_000 if quick_mode else 24_000
    backends = bench_cache_backends(repeats, rows=backend_rows)
    shared_stats = backends["stats"]["shared"]
    print(f"{'cache_backends':>15}: local {backends['local_mean_s']*1000:8.1f} ms, "
          f"shared {backends['shared_mean_s']*1000:.1f} ms "
          f"(shared hit rate {shared_stats['shared_hit_rate']:.1%}, "
          f"{backends['cpus']} cpu(s))")

    run_wide = bench_run_wide_scheduler(repeats, rows=backend_rows)
    print(f"{'run_wide_scheduler':>15}: per-experiment "
          f"{run_wide['per_experiment_mean_s']*1000:8.1f} ms "
          f"({run_wide['pools_created']['per_experiment']} pools) -> run-wide "
          f"{run_wide['run_wide_mean_s']*1000:.1f} ms "
          f"({run_wide['pools_created']['run_wide']} pool)")

    cache_server = bench_cache_server(repeats, rows=backend_rows)
    warm = cache_server["details"]["warm"]
    print(f"{'cache_server':>15}: cold {cache_server['cold_mean_s']*1000:8.1f} ms -> "
          f"warm-from-disk {cache_server['warm_mean_s']*1000:.1f} ms "
          f"(remote hit rate {warm['remote_hit_rate']:.1%}, "
          f"{warm['loaded_from_disk']} entries loaded, "
          f"{warm['wire']['bytes_received']/1024:.0f} KiB received)")

    eviction = bench_cache_eviction(repeats, rows=backend_rows)
    print(f"{'cache_eviction':>15}: phase-3 recompute lru "
          f"{eviction['recompute_s']['lru']*1000:8.1f} ms -> cost "
          f"{eviction['recompute_s']['cost']*1000:.1f} ms "
          f"({eviction['lru_over_cost']}x) -> warm "
          f"{eviction['recompute_s']['cost+warm']*1000:.1f} ms "
          f"({eviction['lru_over_warm']}x, hit rates "
          f"{eviction['hit_rates']['lru']:.0%}/"
          f"{eviction['hit_rates']['cost']:.0%}/"
          f"{eviction['hit_rates']['cost+warm']:.0%}, "
          f"identical={eviction['results_identical']})")

    fault = bench_fault_tolerance(repeats, rows=4_000 if quick_mode else 8_000)
    chaos_details = fault["details"]["chaos"]
    print(f"{'fault_tolerance':>15}: clean {fault['clean_mean_s']*1000:8.1f} ms -> "
          f"chaos {fault['chaos_mean_s']*1000:.1f} ms "
          f"({fault['chaos_over_clean']}x, identical={fault['results_identical']}, "
          f"{chaos_details['breaker']['trips']} breaker trip(s), "
          f"{chaos_details['proxy']['chunks_dropped']} chunks dropped)")

    columnar = bench_columnar_storage(repeats, rows=750_000 if quick_mode else 1_500_000)
    print(f"{'columnar_storage':>15}: memory {columnar['memory_wall_s']*1000:8.1f} ms "
          f"@ {columnar['memory_peak_rss_kb']/1024:.0f} MB peak -> mapped "
          f"{columnar['mapped_wall_s']*1000:.1f} ms "
          f"@ {columnar['mapped_peak_rss_kb']/1024:.0f} MB peak "
          f"({columnar['rss_reduction']:.0%} less RSS, "
          f"identical={columnar['results_identical']})")

    _clear_caches()
    serving = bench_serving_throughput(repeats, quick_mode=quick_mode)
    level_text = ", ".join(
        f"{level['clients']}c {level['rps']:.0f} rps"
        for level in serving["levels"].values()
    )
    print(f"{'serving_throughput':>15}: {level_text} "
          f"(cache hit rate {serving['cache_hit_rate']:.1%}, "
          f"{serving['coalesced']} coalesced)")

    _clear_caches()
    sharded = bench_sharded_serving(repeats, quick_mode=quick_mode)
    print(f"{'sharded_serving':>15}: 1 shard {sharded['levels']['1']['rps']:.0f} rps -> "
          f"2 shards {sharded['levels']['2']['rps']:.0f} rps "
          f"({sharded['throughput_scaling']}x, "
          f"identical={sharded['results_identical']}, "
          f"{sharded['cpus']} cpu(s), latency-bound)")

    _clear_caches()
    telemetry = bench_telemetry_overhead(repeats, quick_mode=quick_mode)
    print(f"{'telemetry_overhead':>15}: baseline {telemetry['uninstrumented_rps']:.0f} rps, "
          f"instrumented {telemetry['overhead_pct_tracing_off']:+.1f}% "
          f"(budget <{telemetry['budget_pct']['tracing_off']:.0f}%), "
          f"tracing {telemetry['overhead_pct_tracing_on']:+.1f}% "
          f"(budget <{telemetry['budget_pct']['tracing_on']:.0f}%)")

    return {
        "schema_version": 10,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "experiments": timings,
        "skew_datagen": skew,
        "parallel_runner": parallel,
        "cache_backends": backends,
        "run_wide_scheduler": run_wide,
        "cache_server": cache_server,
        "cache_eviction": eviction,
        "fault_tolerance": fault,
        "columnar_storage": columnar,
        "serving_throughput": serving,
        "sharded_serving": sharded,
        "telemetry_overhead": telemetry,
        "total_mean_s": round(sum(t["mean_s"] for t in timings.values()), 6),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3, help="timed runs per kernel")
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "CI smoke mode: one repeat of shrunken kernels; does not write "
            "the baseline unless --output is given explicitly"
        ),
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: the committed baseline)",
    )
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    repeats = 1 if args.quick else args.repeats
    report = run_benchmarks(repeats=repeats, quick_mode=args.quick)
    output = args.output
    if output is None:
        if args.quick:
            print(f"quick smoke finished (total mean {report['total_mean_s']:.3f} s); "
                  "baseline not rewritten")
            return
        output = RESULTS_DIR / "BENCH_engine.json"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output} (total mean {report['total_mean_s']:.3f} s)")


if __name__ == "__main__":
    main()
