"""A circuit breaker for the remote cache client.

Classic three-state machine (closed → open → half-open → closed) guarding
:class:`~repro.db.cache.remote.RemoteCacheBackend`'s network tier:

* **closed** — traffic flows; consecutive transport failures are counted
  and :attr:`failure_threshold` of them in a row open the circuit.
* **open** — remote traffic is skipped entirely (the backend serves its
  local tier only, which is always correct — just slower) until
  :attr:`reset_timeout` seconds have passed.
* **half-open** — after the timeout, exactly one request is let through as
  a probe.  Success closes the circuit (the server recovered); failure
  re-opens it and restarts the timeout.

The breaker replaces the old permanent ``_broken`` flag: where that flag
turned one hiccup into "local-only for the rest of the process", the
breaker converts it into "local-only until the server answers a probe".
Sharing remains an optimisation, never a correctness requirement — values
are pure functions of their content-derived keys, so open/closed state can
never change result bytes.

All methods are thread-safe; the remote backend is called from pool
workers and the serving executor concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open probing.

    ``clock`` is injectable (monotonic seconds) so tests can step time
    instead of sleeping through ``reset_timeout``.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_inflight = False
        # Lifetime counters (never reset by state transitions).
        self._failures_total = 0
        self._successes_total = 0
        self._trips = 0
        self._recoveries = 0
        self._rejections = 0
        self._last_error: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; reading it performs the open → half-open check."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def is_closed(self) -> bool:
        return self.state == CLOSED

    def allow(self) -> bool:
        """Whether a remote request may be attempted right now.

        Closed: always.  Open: no — unless ``reset_timeout`` has elapsed,
        in which case the circuit half-opens and this call claims the one
        probe slot.  Half-open: only if no probe is already in flight.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            self._rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._successes_total += 1
            self._consecutive_failures = 0
            self._probe_inflight = False
            if self._state != CLOSED:
                self._state = CLOSED
                self._opened_at = None
                self._recoveries += 1

    def record_failure(self, error: Optional[BaseException] = None) -> None:
        with self._lock:
            self._failures_total += 1
            self._consecutive_failures += 1
            self._probe_inflight = False
            if error is not None:
                self._last_error = f"{type(error).__name__}: {error}"
            if self._state == HALF_OPEN or (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open()

    def trip(self, error: Optional[BaseException] = None) -> None:
        """Open the circuit immediately, bypassing the failure threshold.

        Used for failures that prove the conversation itself is unsound — a
        corrupt payload decoded off the wire — where counting up to the
        threshold would just decode more garbage.
        """
        with self._lock:
            self._failures_total += 1
            self._consecutive_failures = max(
                self._consecutive_failures + 1, self.failure_threshold
            )
            self._probe_inflight = False
            if error is not None:
                self._last_error = f"{type(error).__name__}: {error}"
            if self._state != OPEN:
                self._open()
            else:
                self._opened_at = self._clock()  # restart the timeout

    def reset(self) -> None:
        """Force-close (administrative; tests and ``clear()`` use it)."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._probe_inflight = False

    # ------------------------------------------------------------------
    def _open(self) -> None:
        # Caller holds the lock.
        self._state = OPEN
        self._opened_at = self._clock()
        self._trips += 1

    def _maybe_half_open(self) -> None:
        # Caller holds the lock.
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probe_inflight = False

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failures_total": self._failures_total,
                "successes_total": self._successes_total,
                "trips": self._trips,
                "recoveries": self._recoveries,
                "rejections": self._rejections,
                "last_error": self._last_error,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker({self.state}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold}, "
            f"trips={self._trips}, recoveries={self._recoveries})"
        )
