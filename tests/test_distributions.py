"""Tests for the key/measure distribution samplers."""

import numpy as np
import pytest

from repro.datagen.distributions import (
    GaussianMixtureSpec,
    KEY_DISTRIBUTIONS,
    MEASURE_DISTRIBUTIONS,
    key_sampler,
    measure_sampler,
)
from repro.exceptions import DataGenerationError


class TestKeySamplers:
    @pytest.mark.parametrize("name", sorted(KEY_DISTRIBUTIONS))
    def test_probabilities_sum_to_one(self, name):
        sampler = key_sampler(name)
        probabilities = sampler.probabilities(50)
        assert probabilities.shape == (50,)
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities > 0).all()

    @pytest.mark.parametrize("name", sorted(KEY_DISTRIBUTIONS))
    def test_samples_in_range(self, name):
        sampler = key_sampler(name)
        codes = sampler.sample(size=20, count=1000, rng=1)
        assert codes.min() >= 0
        assert codes.max() < 20

    def test_uniform_is_flat(self):
        probabilities = key_sampler("uniform").probabilities(10)
        assert np.allclose(probabilities, 0.1)

    def test_exponential_is_decreasing(self):
        probabilities = key_sampler("exponential").probabilities(30)
        assert (np.diff(probabilities) <= 1e-12).all()

    def test_zipf_is_heavier_than_uniform_at_head(self):
        zipf = key_sampler("zipf").probabilities(100)
        assert zipf[0] > 10 * zipf[-1]

    def test_gamma_is_unimodal_interior(self):
        probabilities = key_sampler("gamma").probabilities(100)
        mode = int(np.argmax(probabilities))
        assert 0 < mode < 99

    def test_gaussian_mixture_is_bimodal(self):
        spec = GaussianMixtureSpec(means=(0.2, 0.8), stds=(0.05, 0.05))
        probabilities = key_sampler("gaussian_mixture", spec=spec).probabilities(200)
        assert probabilities[40] > probabilities[100]
        assert probabilities[160] > probabilities[100]

    def test_unknown_name_rejected(self):
        with pytest.raises(DataGenerationError):
            key_sampler("normalish")

    def test_invalid_domain_size_rejected(self):
        with pytest.raises(DataGenerationError):
            key_sampler("uniform").probabilities(0)

    def test_skewed_sampler_concentrates_mass(self):
        codes = key_sampler("zipf", exponent=2.0).sample(size=1000, count=20_000, rng=2)
        top_share = np.mean(codes < 10)
        assert top_share > 0.5


class TestMeasureSamplers:
    @pytest.mark.parametrize("name", sorted(MEASURE_DISTRIBUTIONS))
    def test_samples_respect_range(self, name):
        sampler = measure_sampler(name)
        values = sampler.sample(5000, rng=1, low=1.0, high=100.0)
        assert values.min() >= 1.0 - 1e-9
        assert values.max() <= 100.0 + 1e-9

    def test_uniform_measure_spread(self):
        values = measure_sampler("uniform").sample(20_000, rng=3, low=0.0, high=1.0)
        assert np.std(values) > 0.2

    def test_exponential_measure_is_right_skewed(self):
        values = measure_sampler("exponential").sample(20_000, rng=3, low=0.0, high=1.0)
        assert np.mean(values) < np.median(values) + 0.5
        assert np.mean(values) < 0.5

    def test_invalid_range_rejected(self):
        with pytest.raises(DataGenerationError):
            measure_sampler("uniform").sample(10, low=5.0, high=1.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(DataGenerationError):
            measure_sampler("weird")

    def test_empty_sample(self):
        assert measure_sampler("uniform").sample(0, rng=1).size == 0

    @pytest.mark.parametrize("name", ["uniform", "exponential", "gamma"])
    def test_rescaling_is_batch_size_independent(self, name):
        """Regression: values were min-max rescaled by each batch's observed
        extremes, so the measure distribution depended on ``count`` and two
        half-size draws differed from one full draw.  (These samplers draw
        value-by-value from the generator, so the raw streams line up;
        the mixture sampler is covered by the per-value transform test.)"""
        sampler = measure_sampler(name)
        rng_full = np.random.default_rng(9)
        full = sampler.sample(10_000, rng=rng_full, low=1.0, high=100.0)
        rng_halves = np.random.default_rng(9)
        halves = np.concatenate(
            [
                sampler.sample(5_000, rng=rng_halves, low=1.0, high=100.0),
                sampler.sample(5_000, rng=rng_halves, low=1.0, high=100.0),
            ]
        )
        np.testing.assert_allclose(full, halves)

    def test_rescaling_is_a_per_value_function(self):
        """The same raw value maps to the same output whatever the batch."""
        from repro.datagen.distributions import MeasureSampler

        sampler = MeasureSampler("echo", lambda rng, n: np.full(n, 4.0), support=(0.0, 8.0))
        small = sampler.sample(3, rng=1, low=0.0, high=10.0)
        large = sampler.sample(100, rng=2, low=0.0, high=10.0)
        np.testing.assert_allclose(small, 5.0)
        np.testing.assert_allclose(large, 5.0)

    def test_values_beyond_support_clip_to_range(self):
        from repro.datagen.distributions import MeasureSampler

        sampler = MeasureSampler(
            "wide", lambda rng, n: np.linspace(-5.0, 15.0, n), support=(0.0, 10.0)
        )
        values = sampler.sample(50, rng=1, low=1.0, high=2.0)
        assert values.min() == 1.0 and values.max() == 2.0

    def test_registered_samplers_declare_supports(self):
        for name in MEASURE_DISTRIBUTIONS:
            assert measure_sampler(name).support is not None

    def test_degenerate_support_rejected(self):
        from repro.datagen.distributions import MeasureSampler

        with pytest.raises(DataGenerationError):
            MeasureSampler("flat", lambda rng, n: np.ones(n), support=(2.0, 2.0))

    def test_constant_batch_without_support_maps_to_midpoint(self):
        from repro.datagen.distributions import MeasureSampler

        sampler = MeasureSampler("const", lambda rng, n: np.full(n, 7.0))
        values = sampler.sample(10, rng=1, low=0.0, high=10.0)
        np.testing.assert_allclose(values, 5.0)


class TestGaussianMixtureSpec:
    def test_valid_spec(self):
        spec = GaussianMixtureSpec(means=(0.3, 0.7), stds=(0.1, 0.1), weights=(0.6, 0.4))
        assert spec.weights == (0.6, 0.4)

    def test_invalid_weights(self):
        with pytest.raises(DataGenerationError):
            GaussianMixtureSpec(means=(0.3, 0.7), stds=(0.1, 0.1), weights=(0.6, 0.6))

    def test_invalid_std(self):
        with pytest.raises(DataGenerationError):
            GaussianMixtureSpec(means=(0.3, 0.7), stds=(0.1, 0.0))
