"""Tests for the Predicate Mechanism (Algorithms 1 and 3)."""

import numpy as np
import pytest

from repro.core.predicate_mechanism import PMAnswer, PredicateMechanism
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.predicates import PointPredicate
from repro.db.query import StarJoinQuery
from repro.exceptions import PrivacyBudgetError
from repro.workloads.ssb_queries import ssb_query


def _color_query(db, value="red"):
    domain = db.dimension("Color").domain("color")
    return StarJoinQuery.count("q", [PointPredicate("Color", "color", domain, value=value)])


class TestConstruction:
    def test_requires_positive_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            PredicateMechanism(epsilon=0.0)

    def test_capability_flags(self):
        mechanism = PredicateMechanism(epsilon=1.0)
        assert mechanism.supports_count
        assert mechanism.supports_sum
        assert mechanism.supports_group_by


class TestBudgetSplit:
    def test_budget_split_evenly_and_exhausted(self, ssb_small):
        mechanism = PredicateMechanism(epsilon=1.0, rng=1)
        query = ssb_query("Qc3")
        noisy_query, accountant = mechanism.perturb_query(query)
        assert accountant.spent_epsilon == pytest.approx(1.0)
        charges = [budget.epsilon for _, budget in accountant.ledger]
        assert charges == pytest.approx([1.0 / 3] * 3)
        assert noisy_query.num_predicates == query.num_predicates

    def test_empty_predicate_query_charges_full_budget(self, tiny_db):
        mechanism = PredicateMechanism(epsilon=0.7, rng=1)
        query = StarJoinQuery.count("all")
        noisy_query, accountant = mechanism.perturb_query(query)
        assert accountant.spent_epsilon == pytest.approx(0.7)
        assert noisy_query is query

    def test_noisy_query_has_same_structure(self, ssb_small):
        mechanism = PredicateMechanism(epsilon=0.5, rng=2)
        query = ssb_query("Qg4")
        noisy_query, _ = mechanism.perturb_query(query)
        assert noisy_query.group_by == query.group_by
        assert noisy_query.aggregate == query.aggregate
        assert [p.table for p in noisy_query.predicates] == [
            p.table for p in query.predicates
        ]


class TestAnswering:
    def test_answer_returns_pm_answer(self, tiny_db):
        mechanism = PredicateMechanism(epsilon=1.0, rng=3)
        answer = mechanism.answer(tiny_db, _color_query(tiny_db))
        assert isinstance(answer, PMAnswer)
        assert answer.epsilon == 1.0
        assert isinstance(answer.value, float)

    def test_answer_is_an_exact_answer_of_some_point_query(self, tiny_db):
        """PM answers a *shifted* query exactly: the released value must equal
        the exact count of one of the domain's point predicates."""
        executor = QueryExecutor(tiny_db)
        domain = tiny_db.dimension("Color").domain("color")
        possible = {
            executor.execute(
                StarJoinQuery.count("q", [PointPredicate("Color", "color", domain, value=v)])
            )
            for v in domain
        }
        mechanism = PredicateMechanism(epsilon=0.5, rng=5)
        for _ in range(20):
            assert mechanism.answer_value(tiny_db, _color_query(tiny_db)) in possible

    def test_high_epsilon_recovers_exact_answer(self, ssb_small):
        executor = QueryExecutor(ssb_small)
        query = ssb_query("Qc3")
        exact = executor.execute(query)
        mechanism = PredicateMechanism(epsilon=1e6, rng=7)
        assert mechanism.answer_value(ssb_small, query) == pytest.approx(exact)

    def test_group_by_answer_is_grouped(self, ssb_small):
        mechanism = PredicateMechanism(epsilon=1.0, rng=9)
        answer = mechanism.answer_value(ssb_small, ssb_query("Qg2"))
        assert isinstance(answer, GroupedResult)
        assert len(answer) > 0

    def test_sum_query(self, ssb_small):
        mechanism = PredicateMechanism(epsilon=1.0, rng=11)
        value = mechanism.answer_value(ssb_small, ssb_query("Qs2"))
        assert value >= 0.0

    def test_reproducible_with_seed(self, ssb_small):
        query = ssb_query("Qc2")
        a = PredicateMechanism(epsilon=0.5, rng=13).answer_value(ssb_small, query)
        b = PredicateMechanism(epsilon=0.5, rng=13).answer_value(ssb_small, query)
        assert a == b

    def test_different_seeds_differ_eventually(self, ssb_small):
        query = ssb_query("Qc2")
        values = {
            PredicateMechanism(epsilon=0.2, rng=seed).answer_value(ssb_small, query)
            for seed in range(25)
        }
        assert len(values) > 1


class TestVarianceBounds:
    def test_tight_bound_below_loose_bound(self):
        query = ssb_query("Qc3")
        mechanism = PredicateMechanism(epsilon=0.5)
        assert mechanism.tight_variance_bound(query) <= mechanism.loose_variance_bound(query)

    def test_tight_bound_formula(self):
        query = ssb_query("Qc3")  # domains 5, 5, 7
        mechanism = PredicateMechanism(epsilon=1.0)
        expected = (2 * 9) * (25 + 25 + 49)
        assert mechanism.tight_variance_bound(query) == pytest.approx(expected)

    def test_loose_bound_formula(self):
        query = ssb_query("Qc2")  # domains 25, 5
        mechanism = PredicateMechanism(epsilon=1.0)
        expected = (2 * 4) ** 2 * (25**2) * (5**2)
        assert mechanism.loose_variance_bound(query) == pytest.approx(expected)

    def test_bounds_shrink_with_epsilon(self):
        query = ssb_query("Qc3")
        loose = PredicateMechanism(epsilon=0.1).tight_variance_bound(query)
        tight = PredicateMechanism(epsilon=1.0).tight_variance_bound(query)
        assert tight < loose
