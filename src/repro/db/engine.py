"""Vectorized, cache-aware execution engine for star-join workloads.

The evaluation harness answers every (mechanism, query, ε) combination over
repeated trials, so the same star-join selections, fan-out statistics and
data cubes are recomputed hundreds of times per experiment.  The
:class:`ExecutionEngine` is the shared layer that removes that redundancy: it
owns, per database instance,

* interned predicate fingerprints → fact-row selection masks (the semi-join
  results), with a bounded LRU so noisy one-off predicates cannot grow the
  cache without limit;
* per-dimension foreign-key codes and fan-out vectors (the statistics the
  LS / TM / R2T baselines are calibrated on);
* measure arrays (the unified accessor both the executor and the workload
  data cube draw from);
* per-key contribution vectors together with their sorted/prefix-summed form,
  so truncation mechanisms can evaluate every candidate threshold in
  ``O(log n)`` instead of re-scanning the selection;
* memoized exact query answers and data cubes.

All cached arrays are returned with ``writeable=False`` so accidental
mutation by a caller fails loudly instead of silently corrupting every later
read.  The engine assumes the underlying :class:`StarDatabase` is immutable
(the whole code base treats tables as frozen after construction); if a
database is ever mutated in place, call :meth:`invalidate`.

Engines are shared per database through :meth:`ExecutionEngine.for_database`,
which is what makes the caching effective across mechanisms, ε values and
trials without threading an engine handle through every call site.
"""

from __future__ import annotations

import weakref
from collections import namedtuple
from typing import Any, Hashable, Optional, Sequence, Union

import numpy as np

from repro.db.database import StarDatabase
from repro.db.predicates import (
    ConjunctionPredicate,
    PointPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
)
from repro.db.query import AggregateKind, Measure, StarJoinQuery
from repro.exceptions import QueryError

__all__ = ["ExecutionEngine", "predicate_fingerprint", "selection_fingerprint", "query_fingerprint"]


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def predicate_fingerprint(predicate: Predicate) -> Optional[Hashable]:
    """A hashable key identifying the selection semantics of a predicate.

    The engine is per-database, so ``(table, attribute)`` pins the column and
    the ordinal codes pin the selected region.  Exact types only: a subclass
    may override evaluation, so anything but the four stock predicate classes
    returns ``None`` and is evaluated directly, never cached.
    """
    kind = type(predicate)
    if kind is PointPredicate:
        return (predicate.table, predicate.attribute, "point", predicate.code)
    if kind is RangePredicate:
        return (
            predicate.table,
            predicate.attribute,
            "range",
            predicate.low_code,
            predicate.high_code,
        )
    if kind is SetPredicate:
        return (
            predicate.table,
            predicate.attribute,
            "set",
            tuple(int(code) for code in predicate.codes),
        )
    if kind is TruePredicate:
        return (predicate.table, predicate.attribute, "true")
    return None


def selection_fingerprint(predicates: ConjunctionPredicate) -> Optional[Hashable]:
    """Order-insensitive key of a conjunction (AND is commutative)."""
    members = []
    for predicate in predicates:
        fingerprint = predicate_fingerprint(predicate)
        if fingerprint is None:
            return None
        members.append(fingerprint)
    return tuple(sorted(members))


def _measure_fingerprint(measure: Union[Measure, str]) -> Hashable:
    if isinstance(measure, str):
        return (measure, None)
    return (measure.column, measure.subtract)


def query_fingerprint(query: StarJoinQuery) -> Optional[Hashable]:
    """A hashable key identifying the semantics (not the name) of a query."""
    selection = selection_fingerprint(query.predicates)
    if selection is None:
        return None
    aggregate = query.aggregate
    measure = None if aggregate.measure is None else _measure_fingerprint(aggregate.measure)
    group_by = None if query.group_by is None else tuple(query.group_by.keys)
    return (aggregate.kind.value, measure, selection, group_by)


_CubeAxis = namedtuple("_CubeAxis", ["table", "attribute", "domain"])

#: Data cubes larger than this fall back to the semi-join plan.
_MAX_CUBE_CELLS = 1 << 21


class _LruCache:
    """A tiny insertion-ordered LRU built on dict ordering."""

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._data: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any:
        try:
            value = self._data.pop(key)
        except KeyError:
            return None
        self._data[key] = value  # move to the fresh end
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._data.pop(key, None)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.pop(next(iter(self._data)))

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


#: Engines shared per database instance (weak keys: an engine dies with its db).
_SHARED_ENGINES: "weakref.WeakKeyDictionary[StarDatabase, ExecutionEngine]" = (
    weakref.WeakKeyDictionary()
)


class ExecutionEngine:
    """Per-database caches for star-join execution (see module docstring)."""

    def __init__(self, database: StarDatabase, max_mask_entries: int = 192):
        self.database = database
        self._predicate_masks = _LruCache(max_mask_entries)
        self._selection_masks = _LruCache(max_mask_entries)
        self._fan_out: dict[Hashable, np.ndarray] = {}
        self._max_fan_out: dict[str, int] = {}
        self._measures: dict[Hashable, np.ndarray] = {}
        self._contributions = _LruCache(max_mask_entries)
        self._sorted_contributions = _LruCache(max_mask_entries)
        self._cubes: dict[Hashable, np.ndarray] = {}
        self._results = _LruCache(max_mask_entries)
        self._direct_of: dict[str, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_database(cls, database: StarDatabase) -> "ExecutionEngine":
        """The shared engine of ``database`` (created on first request).

        Every :class:`~repro.db.executor.QueryExecutor` built without an
        explicit engine goes through here, which is what makes selections,
        statistics and exact answers shared across mechanisms and trials.
        """
        engine = _SHARED_ENGINES.get(database)
        if engine is None:
            engine = cls(database)
            _SHARED_ENGINES[database] = engine
        return engine

    def invalidate(self) -> None:
        """Drop every cache (required after an in-place database mutation)."""
        self._predicate_masks.clear()
        self._selection_masks.clear()
        self._fan_out.clear()
        self._max_fan_out.clear()
        self._measures.clear()
        self._contributions.clear()
        self._sorted_contributions.clear()
        self._cubes.clear()
        self._results.clear()
        self._direct_of.clear()

    # ------------------------------------------------------------------
    # selections
    # ------------------------------------------------------------------
    def fact_mask(self, predicate: Predicate) -> np.ndarray:
        """Cached boolean fact-row mask of a single predicate (read-only)."""
        fingerprint = predicate_fingerprint(predicate)
        if fingerprint is None:
            return self.database.fact_mask_for_predicate(predicate)
        mask = self._predicate_masks.get(fingerprint)
        if mask is None:
            mask = _freeze(self.database.fact_mask_for_predicate(predicate))
            self._predicate_masks.put(fingerprint, mask)
        return mask

    def selection_mask(self, predicates: ConjunctionPredicate) -> np.ndarray:
        """Cached boolean fact-row mask of a conjunction Φ (read-only)."""
        fingerprint = selection_fingerprint(predicates)
        if fingerprint is not None:
            cached = self._selection_masks.get(fingerprint)
            if cached is not None:
                return cached
        mask: Optional[np.ndarray] = None
        for predicate in predicates:
            predicate_mask = self.fact_mask(predicate)
            if mask is None:
                mask = predicate_mask.copy()
            else:
                mask &= predicate_mask
        if mask is None:
            mask = np.ones(self.database.num_fact_rows, dtype=bool)
        mask = _freeze(mask)
        if fingerprint is not None:
            self._selection_masks.put(fingerprint, mask)
        return mask

    def selected_count(self, predicates: ConjunctionPredicate) -> int:
        return int(self.selection_mask(predicates).sum())

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def fan_out(self, dimension_name: str) -> np.ndarray:
        """Cached unfiltered fan-out vector of a direct dimension (read-only)."""
        counts = self._fan_out.get(dimension_name)
        if counts is None:
            counts = _freeze(self.database.fan_out(dimension_name))
            self._fan_out[dimension_name] = counts
        return counts

    def max_fan_out(self, dimension_name: str) -> int:
        value = self._max_fan_out.get(dimension_name)
        if value is None:
            counts = self.fan_out(dimension_name)
            value = int(counts.max()) if counts.size else 0
            self._max_fan_out[dimension_name] = value
        return value

    def measure_values(self, measure: Union[Measure, str]) -> np.ndarray:
        """The measure expression over every fact row, cached (read-only).

        Accepts either a :class:`~repro.db.query.Measure` or a bare column
        name; both resolve through the same path, so cube-based and
        executor-based SUM answers are computed from the same array.
        """
        if isinstance(measure, str):
            measure = Measure(measure)
        fingerprint = _measure_fingerprint(measure)
        values = self._measures.get(fingerprint)
        if values is None:
            values = np.asarray(self.database.fact.codes(measure.column), dtype=np.float64)
            if measure.subtract is not None:
                values = values - np.asarray(
                    self.database.fact.codes(measure.subtract), dtype=np.float64
                )
            values = _freeze(values)
            self._measures[fingerprint] = values
        return values

    # ------------------------------------------------------------------
    # per-key contributions (truncation mechanisms)
    # ------------------------------------------------------------------
    def contribution_per_key(
        self,
        predicates: ConjunctionPredicate,
        dimension_name: str,
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[Union[Measure, str]] = None,
    ) -> np.ndarray:
        """Per-dimension-key contribution to the selected aggregate (read-only)."""
        if kind is not AggregateKind.COUNT and measure is None:
            raise QueryError("per-key SUM contributions require a measure")
        selection = selection_fingerprint(predicates)
        key = None
        if selection is not None:
            measure_key = None if kind is AggregateKind.COUNT else _measure_fingerprint(
                Measure(measure) if isinstance(measure, str) else measure
            )
            key = (selection, dimension_name, kind.value, measure_key)
            cached = self._contributions.get(key)
            if cached is not None:
                return cached
        mask = self.selection_mask(predicates)
        codes = self.database.fact_foreign_key_codes(dimension_name)[mask]
        dim_rows = self.database.dimension(dimension_name).num_rows
        if kind is AggregateKind.COUNT:
            per_key = np.bincount(codes, minlength=dim_rows).astype(np.float64)
        else:
            weights = self.measure_values(measure)[mask]
            per_key = np.bincount(codes, weights=weights, minlength=dim_rows)
        per_key = _freeze(per_key)
        if key is not None:
            self._contributions.put(key, per_key)
        return per_key

    def sorted_contributions(
        self,
        predicates: ConjunctionPredicate,
        dimension_name: str,
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[Union[Measure, str]] = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted per-key contributions, exclusive prefix sums)``.

        With these two arrays a truncated aggregate at any threshold τ is
        ``prefix[i] + τ · (n − i)`` where ``i = searchsorted(sorted, τ)`` —
        evaluating a whole geometric ladder of thresholds costs one sort
        instead of one full scan per candidate.
        """
        selection = selection_fingerprint(predicates)
        key = None
        if selection is not None:
            measure_key = None if kind is AggregateKind.COUNT else _measure_fingerprint(
                Measure(measure) if isinstance(measure, str) else measure
            )
            key = (selection, dimension_name, kind.value, measure_key)
            cached = self._sorted_contributions.get(key)
            if cached is not None:
                return cached
        per_key = self.contribution_per_key(predicates, dimension_name, kind, measure)
        ordered = np.sort(per_key)
        prefix = np.concatenate([[0.0], np.cumsum(ordered)])
        pair = (_freeze(ordered), _freeze(prefix))
        if key is not None:
            self._sorted_contributions.put(key, pair)
        return pair

    @staticmethod
    def truncated_sum_from_sorted(
        ordered: np.ndarray, prefix: np.ndarray, threshold: float
    ) -> float:
        """``Σ_k min(contribution_k, τ)`` from :meth:`sorted_contributions`."""
        index = int(np.searchsorted(ordered, threshold, side="right"))
        return float(prefix[index] + threshold * (ordered.size - index))

    # ------------------------------------------------------------------
    # data cubes (workload answering)
    # ------------------------------------------------------------------
    def data_cube(
        self,
        attributes: Sequence[Any],
        kind: AggregateKind = AggregateKind.COUNT,
        measure: Optional[Union[Measure, str]] = None,
    ) -> np.ndarray:
        """Memoized data cube over workload attributes (read-only).

        ``attributes`` are :class:`~repro.core.workload.WorkloadAttribute`
        instances (typed loosely to avoid an import cycle).  The cube is built
        with ``np.bincount`` over ``np.ravel_multi_index`` composite codes,
        which is substantially faster than ``np.add.at`` on the same shapes.
        """
        if kind is AggregateKind.AVG:
            raise QueryError("data cubes support COUNT and SUM only")
        measure_key = None
        if kind is not AggregateKind.COUNT:
            if measure is None:
                raise QueryError("SUM data cubes require a measure column")
            measure_key = _measure_fingerprint(
                Measure(measure) if isinstance(measure, str) else measure
            )
        key = (
            tuple(
                (attribute.table, attribute.attribute, attribute.domain.size)
                for attribute in attributes
            ),
            kind.value,
            measure_key,
        )
        cube = self._cubes.get(key)
        if cube is not None:
            return cube

        database = self.database
        shape = tuple(attribute.domain.size for attribute in attributes)
        code_arrays = []
        for attribute in attributes:
            if attribute.table == database.fact.name:
                codes = database.fact.codes(attribute.attribute)
            else:
                if not database.is_direct_dimension(attribute.table):
                    raise QueryError(
                        "workload attributes must live on the fact table or a "
                        "direct dimension table"
                    )
                table = database.table(attribute.table)
                fk_codes = database.fact_foreign_key_codes(attribute.table)
                codes = table.codes(attribute.attribute)[fk_codes]
            code_arrays.append(np.asarray(codes))

        if code_arrays:
            flat = np.ravel_multi_index(tuple(code_arrays), shape)
        else:
            flat = np.zeros(database.num_fact_rows, dtype=np.int64)
            shape = ()
        length = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if kind is AggregateKind.COUNT:
            cube = np.bincount(flat, minlength=length).astype(np.float64)
        else:
            weights = self.measure_values(measure)
            cube = np.bincount(flat, weights=weights, minlength=length)
        cube = _freeze(cube.reshape(shape))
        self._cubes[key] = cube
        return cube

    # ------------------------------------------------------------------
    # cube-served scalar counts
    # ------------------------------------------------------------------
    def count_answer_via_cube(self, query: StarJoinQuery) -> Optional[float]:
        """Answer a scalar COUNT query by contracting the memoized data cube.

        The Predicate Mechanism executes a *different* noisy query on every
        trial, so selection-mask caching cannot help it — but all those noisy
        queries share the original query's predicate attributes.  Building the
        COUNT cube over that attribute set once turns each subsequent
        execution into a small sub-cube sum (the paper's own Section 5.3
        device, applied to single queries).  Counts are integers, so the cube
        contraction is exactly the semi-join count.

        Returns ``None`` when the query is not cube-eligible (GROUP BY, SUM /
        AVG, snowflaked or duplicate predicate attributes, domain mismatch, or
        a cube that would exceed :data:`_MAX_CUBE_CELLS`); callers fall back
        to the semi-join plan.
        """
        if query.is_grouped or query.kind is not AggregateKind.COUNT:
            return None
        predicates = list(query.predicates)
        if not predicates:
            return None
        database = self.database
        seen: set[tuple[str, str]] = set()
        pairs = []
        cells = 1
        for predicate in predicates:
            key = (predicate.table, predicate.attribute)
            if key in seen or predicate.domain is None:
                return None
            seen.add(key)
            if predicate.table != database.fact.name and not database.is_direct_dimension(
                predicate.table
            ):
                return None
            column_domain = database.table(predicate.table).domain(predicate.attribute)
            if column_domain is None or column_domain.size != predicate.domain.size:
                return None
            cells *= predicate.domain.size
            if cells > _MAX_CUBE_CELLS:
                return None
            pairs.append((predicate, _CubeAxis(*key, predicate.domain)))
        # Canonical axis order, so every predicate ordering reuses one cube.
        pairs.sort(key=lambda pair: (pair[1].table, pair[1].attribute))
        cube = self.data_cube(tuple(axis for _, axis in pairs), kind=AggregateKind.COUNT)
        selectors = tuple(
            predicate.evaluate_codes(np.arange(axis.domain.size, dtype=np.int64))
            for predicate, axis in pairs
        )
        return float(cube[np.ix_(*selectors)].sum())

    # ------------------------------------------------------------------
    # exact results
    # ------------------------------------------------------------------
    def cached_result(self, query: StarJoinQuery) -> Optional[Any]:
        """A memoized exact answer of ``query``, or ``None``."""
        fingerprint = query_fingerprint(query)
        if fingerprint is None:
            return None
        return self._results.get(fingerprint)

    def store_result(self, query: StarJoinQuery, result: Any) -> None:
        fingerprint = query_fingerprint(query)
        if fingerprint is not None:
            self._results.put(fingerprint, result)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExecutionEngine(db={self.database.fact.name!r}, "
            f"masks={len(self._predicate_masks)}, selections={len(self._selection_masks)}, "
            f"cubes={len(self._cubes)}, results={len(self._results)})"
        )
