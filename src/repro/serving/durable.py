"""Durable charge journal backing the serving budget ledger.

The in-memory :class:`~repro.serving.ledger.BudgetLedger` is the one piece
of serving state a crash must never erase: forgetting spent ε would let an
analyst re-spend their privacy budget, silently voiding the DP guarantee.
:class:`LedgerJournal` gives the ledger a write-ahead record in sqlite
(same WAL + corruption-quarantine machinery as the cache server's
:class:`~repro.db.cache.server.CacheStore`, but with ``synchronous=FULL`` —
a budget row lost to a power cut is a privacy bug, a cache row is not).

The protocol is **charge-before-execute** with pending records:

1. :meth:`record_charge` — written (state ``pending``) inside the ledger's
   admission lock, *before* any engine work runs.
2. :meth:`settle` — the query released an answer (state ``settled``).
3. :meth:`void` — the execution failed without releasing anything; the
   charge was refunded in memory (state ``refunded``).

A crash can therefore strand a charge in ``pending``, which is exactly the
safe direction: at the next startup :meth:`replay` counts pending rows as
spent (the query *may* have released its answer just before the crash —
DP must assume it did) and relabels them ``recovered`` so operators can
audit how much ε each crash stranded.  A refund that was journalled
(``refunded`` rows, and standalone ``refund`` rows from the ledger's
generic refund path) is subtracted on replay, so refunds reconcile across
restarts too.  Under-charging is impossible by construction; the worst a
crash can do is over-charge by the in-flight queries, which is the
conservative, privacy-safe failure.

Journal-write failures fail **closed**: an admission whose pending record
cannot be written is refused (the ledger undoes the in-memory charge), so
no query ever executes on a charge the journal did not capture.  Failures
on the settle/void path only warn — the charge stays pending, which again
errs toward over-charging.
"""

from __future__ import annotations

import sqlite3
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["LedgerJournal", "ReplayedAccount"]

#: Row states of the charge journal.
_PENDING = "pending"
_SETTLED = "settled"
_REFUNDED = "refunded"
_RECOVERED = "recovered"
_REFUND = "refund"  # standalone refund row (generic ledger.refund path)

#: States that count as spent budget during replay.
_CHARGED_STATES = (_PENDING, _SETTLED, _RECOVERED)


@dataclass
class ReplayedAccount:
    """One analyst's reconciled spend, recovered from the journal."""

    spent_epsilon: float = 0.0
    spent_delta: float = 0.0
    charges: int = 0
    refunds: int = 0
    recovered_pending: int = 0  #: charges a crash stranded in ``pending``

    def apply(self, state: str, epsilon: float, delta: float) -> None:
        if state == _REFUND:
            self.spent_epsilon -= epsilon
            self.spent_delta -= delta
            self.refunds += 1
        elif state in _CHARGED_STATES:
            self.spent_epsilon += epsilon
            self.spent_delta += delta
            self.charges += 1
            if state == _PENDING:
                self.recovered_pending += 1
        elif state == _REFUNDED:
            self.refunds += 1  # charge and its refund cancel: no spend
        # Clamp like the accountant: refunds never drive spend negative.
        self.spent_epsilon = max(self.spent_epsilon, 0.0)
        self.spent_delta = max(self.spent_delta, 0.0)


class LedgerJournal:
    """Append-mostly sqlite journal of budget charges, one row per charge.

    Thread-safe (the ledger calls it under its own lock, but ``stats`` and
    tests may probe concurrently).  All sqlite access is autocommit
    (``isolation_level=None``) over WAL with ``synchronous=FULL``: every
    returned :meth:`record_charge` is on disk before the caller proceeds.
    """

    def __init__(self, path: str):
        self.path: Optional[Path] = Path(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._lock = threading.Lock()
        self.charges_journalled = 0
        self.loaded_from_disk = 0
        self._open_persistence()

    # ------------------------------------------------------------------
    # persistence plumbing (mirrors CacheStore._open_persistence)
    # ------------------------------------------------------------------
    def _open_persistence(self) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass  # an unreachable parent is reported by the connect below
        try:
            self._conn = self._connect()
            (self.loaded_from_disk,) = self._conn.execute(
                "SELECT COUNT(*) FROM ledger_entries"
            ).fetchone()
        except sqlite3.Error as error:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None
            quarantine = self.path.with_suffix(self.path.suffix + ".corrupt")
            try:
                self.path.replace(quarantine)
                where = f"moved aside to {quarantine}"
            except OSError:
                where = "left in place"
            for suffix in ("-wal", "-shm"):
                sidecar = Path(str(self.path) + suffix)
                try:
                    sidecar.unlink()
                except OSError:
                    pass
            warnings.warn(
                f"budget ledger journal {self.path} is unreadable ({error}); "
                f"{where}, starting with an empty journal — analysts' previous "
                "spend is NOT recovered",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                self._conn = self._connect()
            except sqlite3.Error as fresh_error:
                warnings.warn(
                    f"cannot create a fresh ledger journal at {self.path} "
                    f"({fresh_error}); budget durability is DISABLED for this run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._conn = None
                self.path = None

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, isolation_level=None, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        # FULL, not the cache's NORMAL: a charge acknowledged to the ledger
        # must survive a power cut, not merely a process crash.
        conn.execute("PRAGMA synchronous=FULL")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS ledger_entries ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " analyst TEXT NOT NULL,"
            " epsilon REAL NOT NULL,"
            " delta REAL NOT NULL,"
            " label TEXT NOT NULL,"
            " parallel INTEGER NOT NULL DEFAULT 0,"
            " state TEXT NOT NULL)"
        )
        return conn

    @property
    def persisted(self) -> bool:
        return self._conn is not None

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:  # pragma: no cover - nothing left to save
                    pass
                self._conn = None

    # ------------------------------------------------------------------
    # the charge protocol
    # ------------------------------------------------------------------
    def record_charge(
        self,
        analyst: str,
        epsilon: float,
        delta: float,
        label: str,
        parallel: bool = False,
    ) -> Optional[int]:
        """Journal a pending charge; returns its row id (``None`` when the
        journal is disabled).  Raises ``sqlite3.Error`` when the write
        fails — the caller must then refuse the admission (fail closed)."""
        with self._lock:
            if self._conn is None:
                return None
            cursor = self._conn.execute(
                "INSERT INTO ledger_entries (analyst, epsilon, delta, label, parallel, state)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (analyst, float(epsilon), float(delta), label, int(parallel), _PENDING),
            )
            self.charges_journalled += 1
            return cursor.lastrowid

    def settle(self, charge_id: Optional[int]) -> None:
        """Mark a pending charge as settled (its answer was released)."""
        self._transition(charge_id, _SETTLED)

    def void(self, charge_id: Optional[int]) -> None:
        """Mark a pending charge as refunded (nothing was released)."""
        self._transition(charge_id, _REFUNDED)

    def _transition(self, charge_id: Optional[int], state: str) -> None:
        if charge_id is None:
            return
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute(
                    "UPDATE ledger_entries SET state = ? WHERE id = ?",
                    (state, charge_id),
                )
            except sqlite3.Error as error:
                # The row stays pending: replay over-charges, never under.
                warnings.warn(
                    f"ledger journal could not mark charge {charge_id} {state} "
                    f"({error}); it will replay as charged",
                    RuntimeWarning,
                    stacklevel=3,
                )

    def record_refund(self, analyst: str, epsilon: float, delta: float, label: str) -> None:
        """Journal a standalone refund (the generic ``ledger.refund`` path).

        Best-effort: a refund the journal loses means replay over-charges,
        which is the privacy-safe direction, so failures only warn.
        """
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute(
                    "INSERT INTO ledger_entries (analyst, epsilon, delta, label, parallel, state)"
                    " VALUES (?, ?, ?, ?, 0, ?)",
                    (analyst, float(epsilon), float(delta), f"refund:{label}", _REFUND),
                )
            except sqlite3.Error as error:
                warnings.warn(
                    f"ledger journal could not record a refund for {analyst!r} "
                    f"({error}); replay will not reflect it",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def replay(self) -> dict[str, ReplayedAccount]:
        """Reconcile the journal into per-analyst spend totals.

        Pending charges count as spent — the crash may have released their
        answers — and are relabelled ``recovered`` so the audit trail shows
        which charges a crash stranded.  Refunds (both voided charges and
        standalone refund rows) are subtracted, clamped at zero.
        """
        with self._lock:
            if self._conn is None:
                return {}
            rows = self._conn.execute(
                "SELECT analyst, epsilon, delta, state FROM ledger_entries ORDER BY id"
            ).fetchall()
            accounts: dict[str, ReplayedAccount] = {}
            for analyst, epsilon, delta, state in rows:
                accounts.setdefault(analyst, ReplayedAccount()).apply(
                    state, float(epsilon), float(delta)
                )
            self._conn.execute(
                "UPDATE ledger_entries SET state = ? WHERE state = ?",
                (_RECOVERED, _PENDING),
            )
            return accounts

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            counts: dict[str, int] = {}
            if self._conn is not None:
                for state, count in self._conn.execute(
                    "SELECT state, COUNT(*) FROM ledger_entries GROUP BY state"
                ):
                    counts[state] = count
            return {
                "path": str(self.path) if self.path is not None else None,
                "persisted": self._conn is not None,
                "entries": sum(counts.values()),
                "by_state": counts,
                "charges_journalled": self.charges_journalled,
                "loaded_from_disk": self.loaded_from_disk,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.path if self._conn is not None else "disabled"
        return f"LedgerJournal({target}, journalled={self.charges_journalled})"
