"""Tests for exact star-join execution, including cross-validation against the
materialise-then-filter reference plan."""

import numpy as np
import pytest

from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.join import execute_by_materialised_join, join_result_size, materialise_star_join
from repro.db.predicates import ConjunctionPredicate, PointPredicate, RangePredicate
from repro.db.query import StarJoinQuery
from repro.exceptions import QueryError
from repro.workloads.ssb_queries import all_ssb_queries


def _color_predicate(db, value):
    domain = db.dimension("Color").domain("color")
    return PointPredicate("Color", "color", domain, value=value)


def _size_predicate(db, low, high):
    domain = db.dimension("Size").domain("size")
    return RangePredicate("Size", "size", domain, low=low, high=high)


class TestTinyDatabase:
    """Answers verified by hand on the 12-row fixture."""

    def test_unfiltered_count(self, tiny_db):
        query = StarJoinQuery.count("all")
        assert QueryExecutor(tiny_db).execute(query) == 12.0

    def test_count_with_point_predicate(self, tiny_db):
        query = StarJoinQuery.count("red", [_color_predicate(tiny_db, "red")])
        assert QueryExecutor(tiny_db).execute(query) == 4.0

    def test_count_with_two_predicates(self, tiny_db):
        query = StarJoinQuery.count(
            "red-small",
            [_color_predicate(tiny_db, "red"), _size_predicate(tiny_db, 1, 2)],
        )
        # Red fact rows are 0, 1, 6, 7 with SizeKey 0, 1, 2, 3 -> sizes 1,2,3,4.
        assert QueryExecutor(tiny_db).execute(query) == 2.0

    def test_sum_query(self, tiny_db):
        query = StarJoinQuery.sum("red-amount", "amount", [_color_predicate(tiny_db, "red")])
        # amounts of rows 0,1,6,7 are 1,2,7,8.
        assert QueryExecutor(tiny_db).execute(query) == 18.0

    def test_sum_with_subtract(self, tiny_db):
        query = StarJoinQuery.sum(
            "diff", "amount", [_color_predicate(tiny_db, "red")], measure_subtract="amount"
        )
        assert QueryExecutor(tiny_db).execute(query) == 0.0

    def test_avg_query(self, tiny_db):
        query = StarJoinQuery.avg("avg-red", "amount", [_color_predicate(tiny_db, "red")])
        assert QueryExecutor(tiny_db).execute(query) == pytest.approx(18.0 / 4)

    def test_avg_of_empty_selection_is_zero(self, tiny_db):
        query = StarJoinQuery.avg(
            "avg-none",
            "amount",
            [_color_predicate(tiny_db, "red"), _size_predicate(tiny_db, 1, 1)],
        )
        executor = QueryExecutor(tiny_db)
        # red rows have sizes 1,2,3,4 -> size exactly 1 happens once (row 0).
        assert executor.execute(query) == pytest.approx(1.0)

    def test_group_by_count(self, tiny_db):
        query = StarJoinQuery.count("by-color", group_by=[("Color", "color")])
        result = QueryExecutor(tiny_db).execute(query)
        assert isinstance(result, GroupedResult)
        assert result.groups == {("red",): 4.0, ("green",): 4.0, ("blue",): 4.0}
        assert result.total() == 12.0

    def test_group_by_sum_two_keys(self, tiny_db):
        query = StarJoinQuery.sum(
            "by-color-size", "amount", group_by=[("Color", "color"), ("Size", "size")]
        )
        result = QueryExecutor(tiny_db).execute(query)
        assert sum(result.groups.values()) == pytest.approx(sum(range(1, 13)))

    def test_selected_count_matches_execute(self, tiny_db):
        executor = QueryExecutor(tiny_db)
        predicates = ConjunctionPredicate.of([_color_predicate(tiny_db, "blue")])
        assert executor.selected_count(predicates) == 4


class TestContributions:
    def test_contribution_per_key_count(self, tiny_db):
        executor = QueryExecutor(tiny_db)
        query = StarJoinQuery.count("all")
        contributions = executor.contribution_per_key(query, "Color")
        assert list(contributions) == [2, 2, 2, 2, 2, 2]

    def test_contribution_per_key_sum(self, tiny_db):
        executor = QueryExecutor(tiny_db)
        query = StarJoinQuery.sum("s", "amount")
        contributions = executor.contribution_per_key(query, "Size")
        # Size key k gets amounts k+1, k+5, k+9.
        assert list(contributions) == [15.0, 18.0, 21.0, 24.0]

    def test_truncated_answer(self, tiny_db):
        executor = QueryExecutor(tiny_db)
        query = StarJoinQuery.count("all")
        assert executor.truncated_answer(query, "Color", threshold=1) == 6.0
        assert executor.truncated_answer(query, "Color", threshold=10) == 12.0


class TestCrossValidationAgainstMaterialisedJoin:
    """The semi-join plan and the materialised-join plan must agree."""

    def test_all_ssb_queries_agree(self, ssb_small):
        executor = QueryExecutor(ssb_small)
        for query in all_ssb_queries():
            fast = executor.execute(query)
            reference = execute_by_materialised_join(ssb_small, query)
            if isinstance(fast, GroupedResult):
                assert fast.groups == pytest.approx(reference)
            else:
                assert fast == pytest.approx(reference)

    def test_join_result_size(self, ssb_small):
        assert join_result_size(ssb_small) == ssb_small.num_fact_rows
        query = all_ssb_queries()[2]  # Qc3
        executor = QueryExecutor(ssb_small)
        assert join_result_size(ssb_small, query.predicates) == executor.selected_count(
            query.predicates
        )

    def test_materialised_join_has_all_dimension_columns(self, ssb_small):
        wide = materialise_star_join(ssb_small)
        assert "Customer.region" in wide
        assert "Part.brand" in wide
        assert wide["Customer.region"].shape[0] == ssb_small.num_fact_rows

    def test_snowflake_materialisation_includes_outer_dimension(self, snowflake_small):
        wide = materialise_star_join(snowflake_small)
        assert "Month.month" in wide
        assert wide["Month.month"].shape[0] == snowflake_small.num_fact_rows

    def test_snowflake_query_agrees(self, snowflake_small):
        from repro.workloads.tpch_queries import snowflake_queries

        executor = QueryExecutor(snowflake_small)
        for query in snowflake_queries():
            assert executor.execute(query) == pytest.approx(
                execute_by_materialised_join(snowflake_small, query)
            )


class TestGroupedResult:
    def test_as_vectors_aligns_union_of_keys(self):
        left = GroupedResult(keys=(("D", "a"),), groups={("x",): 1.0, ("y",): 2.0})
        right = GroupedResult(keys=(("D", "a"),), groups={("y",): 3.0, ("z",): 4.0})
        lv, rv = left.as_vectors(right)
        assert list(lv) == [1.0, 2.0, 0.0]
        assert list(rv) == [0.0, 3.0, 4.0]

    def test_group_by_unsupported_on_snowflaked_attribute(self, snowflake_small):
        month_domain = snowflake_small.dimension("Month").domain("month")
        query = StarJoinQuery.count("bad", group_by=[("Month", "month")])
        with pytest.raises(QueryError):
            QueryExecutor(snowflake_small).execute(query)
