"""Command-line entry point that regenerates every table and figure.

Usage::

    python -m repro.evaluation.cli                 # quick configuration
    python -m repro.evaluation.cli --full          # higher-fidelity configuration
    python -m repro.evaluation.cli --only table1 figure9
    python -m repro.evaluation.cli --output-dir results/
    python -m repro.evaluation.cli --jobs 4        # parallel trial scheduler

Each experiment prints its text table and, when ``--output-dir`` is given,
writes a CSV with the same rows.  The experiment set and configurations are
the ones documented in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.evaluation.experiments import (
    ExperimentConfig,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table2,
)
from repro.evaluation.reporting import ExperimentResult

__all__ = ["EXPERIMENTS", "main", "run_experiments"]

#: Registry of experiment name → callable(config) → ExperimentResult.
EXPERIMENTS: dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    "table1": lambda config: table1.run(config),
    "table2": lambda config: table2.run(config),
    "figure4": lambda config: figure4.run(config),
    "figure5": lambda config: figure5.run(config),
    "figure6": lambda config: figure6.run(config),
    "figure7": lambda config: figure7.run(config),
    "figure8": lambda config: figure8.run(config),
    "figure9": lambda config: figure9.run(config),
    "figure10": lambda config: figure10.run(config),
    "figure11": lambda config: figure11.run(config),
}


def run_experiments(
    names: Sequence[str],
    config: ExperimentConfig,
    output_dir: Optional[Path] = None,
    echo: Callable[[str], None] = print,
) -> dict[str, ExperimentResult]:
    """Run the named experiments and return their results.

    Unknown names raise ``KeyError`` before anything is executed so a typo in
    one name does not waste the time already spent on earlier experiments.
    """
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")

    results: dict[str, ExperimentResult] = {}
    for name in names:
        started = time.perf_counter()
        echo(f"\n=== running {name} ===")
        result = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - started
        echo(result.to_text())
        echo(f"[{name} finished in {elapsed:.1f}s]")
        if output_dir is not None:
            path = result.to_csv(Path(output_dir) / f"{name}.csv")
            echo(f"[rows written to {path}]")
        results[name] = result
    return results


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the DP-starJ evaluation.",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        default=sorted(EXPERIMENTS),
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the higher-fidelity configuration (larger data, 10 trials)",
    )
    parser.add_argument(
        "--trials", type=int, default=None, help="override the number of trials per cell"
    )
    parser.add_argument(
        "--rows-per-scale-factor",
        type=int,
        default=None,
        help="override the fact rows generated per unit of scale factor",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the master seed")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help=(
            "worker processes for the trial scheduler (default 1 = serial; "
            "results are identical for any value)"
        ),
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write one CSV per experiment",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    config = ExperimentConfig.paper_scale() if args.full else ExperimentConfig.quick()
    if args.trials is not None:
        config.trials = args.trials
    if args.rows_per_scale_factor is not None:
        config.rows_per_scale_factor = args.rows_per_scale_factor
    if args.seed is not None:
        config.seed = args.seed
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    config.jobs = args.jobs

    try:
        run_experiments(args.only, config, output_dir=args.output_dir)
    except KeyError as error:
        print(error, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
