"""Property-based tests for the DP building blocks and PM invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pma import PredicateMechanismForAttribute
from repro.db.domains import AttributeDomain
from repro.db.predicates import PointPredicate, RangePredicate
from repro.dp.accountant import PrivacyAccountant, PrivacyBudget
from repro.dp.noise import laplace_scale, laplace_variance
from repro.dp.sensitivity import (
    binomial,
    kstar_local_sensitivity_at_distance,
    local_sensitivity_at_distance,
    smooth_sensitivity_from_local,
)

epsilons = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
sensitivities = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestNoiseProperties:
    @given(sensitivities, epsilons)
    def test_laplace_scale_is_monotone_in_sensitivity(self, sensitivity, epsilon):
        assert laplace_scale(sensitivity, epsilon) <= laplace_scale(sensitivity + 1.0, epsilon)

    @given(sensitivities, epsilons)
    def test_laplace_variance_formula(self, sensitivity, epsilon):
        assert laplace_variance(sensitivity, epsilon) == pytest.approx(
            2.0 * (sensitivity / epsilon) ** 2, rel=1e-12
        )


class TestAccountantProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=0.2), min_size=1, max_size=20))
    def test_sequential_composition_sums(self, charges):
        accountant = PrivacyAccountant(PrivacyBudget(sum(charges) + 1.0))
        for charge in charges:
            accountant.charge(PrivacyBudget(charge))
        assert accountant.spent_epsilon == pytest.approx(sum(charges))

    @given(st.integers(min_value=1, max_value=50), epsilons)
    def test_even_split_reassembles(self, parts, epsilon):
        budget = PrivacyBudget(epsilon)
        assert budget.split(parts).epsilon * parts == pytest.approx(epsilon)


class TestSensitivityProperties:
    @given(st.floats(min_value=0, max_value=1e4), st.integers(min_value=0, max_value=100))
    def test_local_at_distance_monotone(self, local, distance):
        assert local_sensitivity_at_distance(local, distance + 1) >= local_sensitivity_at_distance(
            local, distance
        )

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=4),
        st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=50)
    def test_smooth_at_least_discounted_local(self, degrees, k, beta):
        degrees = np.asarray(degrees)
        smooth = smooth_sensitivity_from_local(
            lambda t: kstar_local_sensitivity_at_distance(degrees, k, t),
            beta,
            max_distance=200,
        )
        assert smooth >= kstar_local_sensitivity_at_distance(degrees, k, 0) - 1e-9

    @given(st.integers(min_value=0, max_value=60), st.integers(min_value=0, max_value=6))
    def test_binomial_matches_math_comb(self, n, k):
        assert binomial(n, k) == float(math.comb(n, k)) if n >= k else binomial(n, k) == 0.0


@st.composite
def point_predicates(draw):
    size = draw(st.integers(min_value=1, max_value=100))
    domain = AttributeDomain.integer_range("attr", 0, size - 1)
    code = draw(st.integers(min_value=0, max_value=size - 1))
    return PointPredicate("T", "attr", domain, value=code)


@st.composite
def range_predicates(draw):
    size = draw(st.integers(min_value=1, max_value=100))
    domain = AttributeDomain.integer_range("attr", 0, size - 1)
    low = draw(st.integers(min_value=0, max_value=size - 1))
    high = draw(st.integers(min_value=low, max_value=size - 1))
    return RangePredicate("T", "attr", domain, low=low, high=high)


class TestPMAProperties:
    @given(point_predicates(), epsilons, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80)
    def test_noisy_point_stays_in_domain(self, predicate, epsilon, seed):
        pma = PredicateMechanismForAttribute(epsilon=epsilon)
        noisy = pma.perturb(predicate, rng=seed)
        assert noisy.value in predicate.domain

    @given(range_predicates(), epsilons, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80)
    def test_shift_mode_preserves_width(self, predicate, epsilon, seed):
        pma = PredicateMechanismForAttribute(epsilon=epsilon, range_mode="shift")
        noisy = pma.perturb(predicate, rng=seed)
        assert noisy.high_code - noisy.low_code == predicate.high_code - predicate.low_code
        assert 0 <= noisy.low_code <= noisy.high_code < predicate.domain.size

    @given(range_predicates(), epsilons, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=80)
    def test_endpoint_mode_yields_valid_interval(self, predicate, epsilon, seed):
        pma = PredicateMechanismForAttribute(epsilon=epsilon, range_mode="endpoints")
        noisy = pma.perturb(predicate, rng=seed)
        assert 0 <= noisy.low_code <= noisy.high_code < predicate.domain.size
