"""Strategy-matrix decomposition for workload queries (Definition 5.1).

The Workload Decomposition strategy of Section 5.3 represents the workload's
per-dimension predicate matrix ``P`` (one row per query, one column per
domain value) as ``P = X A`` where ``A`` is a *strategy matrix* whose rows are
themselves predicates over the same attribute.  The strategy rows are the
only thing that gets perturbed; the workload answers are then reconstructed
through ``X``, so a strategy with fewer rows than the workload receives a
larger per-row privacy budget and yields lower error.

Three strategy families are provided:

* ``distinct_rows`` — the distinct rows of P (always supports P with a 0/1
  selection matrix X; optimal when queries repeat predicates, as in W1);
* ``identity`` — one point predicate per domain value (always supports any P);
* ``hierarchical`` — dyadic ranges over the domain (good for cumulative /
  range-heavy workloads such as W2).

:class:`MatrixDecomposition` picks, per attribute, the candidate strategy with
the smallest estimated reconstruction variance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.db.domains import AttributeDomain
from repro.db.predicates import (
    PointPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
)
from repro.exceptions import QueryError

__all__ = ["StrategyChoice", "MatrixDecomposition", "predicate_from_indicator"]


def predicate_from_indicator(
    vector: np.ndarray, domain: AttributeDomain, table: str, attribute: str
) -> Predicate:
    """Rebuild a predicate from a 0/1 indicator vector over ``domain``.

    Contiguous single runs become point/range predicates (what PMA knows how
    to perturb); the full domain becomes the always-true predicate; anything
    else becomes a set predicate over the selected values.
    """
    vector = np.asarray(vector)
    selected = np.flatnonzero(vector > 0.5)
    if selected.size == 0:
        raise QueryError("cannot build a predicate from an all-zero indicator")
    if selected.size == domain.size:
        return TruePredicate(table=table, attribute=attribute, domain=domain)
    if selected.size == 1:
        return PointPredicate(
            table=table, attribute=attribute, domain=domain, value=domain.decode(int(selected[0]))
        )
    contiguous = bool(np.all(np.diff(selected) == 1))
    if contiguous:
        return RangePredicate(
            table=table,
            attribute=attribute,
            domain=domain,
            low=domain.decode(int(selected[0])),
            high=domain.decode(int(selected[-1])),
        )
    return SetPredicate(
        table=table,
        attribute=attribute,
        domain=domain,
        values=tuple(domain.decode(int(code)) for code in selected),
    )


@dataclass(frozen=True)
class StrategyChoice:
    """One candidate decomposition ``P = X A`` for a per-attribute workload."""

    name: str
    strategy: np.ndarray  # A: (r × m) 0/1 matrix
    solution: np.ndarray  # X: (l × r) real matrix with P = X A

    @property
    def num_rows(self) -> int:
        return int(self.strategy.shape[0])

    def reconstruction_error(self, workload: np.ndarray) -> float:
        """Max-abs error of X A against the workload (0 for exact supports)."""
        return float(np.max(np.abs(self.solution @ self.strategy - workload), initial=0.0))

    def estimated_variance(self) -> float:
        """Rough per-query noise variance proxy used to rank strategies.

        Each strategy row is perturbed with budget ε/r, so its noise variance
        scales with r²; reconstruction mixes rows with weights X, contributing
        the squared row norms of X.  Constant factors common to all candidates
        are dropped.
        """
        row_norms = np.sum(self.solution**2, axis=1)
        return float(self.num_rows**2 * np.mean(row_norms)) if row_norms.size else 0.0


def _distinct_rows_strategy(workload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    unique_rows, inverse = np.unique(workload, axis=0, return_inverse=True)
    solution = np.zeros((workload.shape[0], unique_rows.shape[0]))
    solution[np.arange(workload.shape[0]), inverse] = 1.0
    return unique_rows.astype(np.float64), solution


def _identity_strategy(workload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    size = workload.shape[1]
    strategy = np.eye(size)
    return strategy, workload.astype(np.float64).copy()


def _hierarchical_strategy(workload: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Dyadic-interval strategy rows plus least-squares solution."""
    size = workload.shape[1]
    rows = []
    width = size
    while width >= 1:
        start = 0
        while start < size:
            row = np.zeros(size)
            row[start : min(start + width, size)] = 1.0
            rows.append(row)
            start += width
        if width == 1:
            break
        width = max(width // 2, 1)
    strategy = np.unique(np.vstack(rows), axis=0)
    solution, *_ = np.linalg.lstsq(strategy.T, workload.T, rcond=None)
    return strategy, solution.T


class MatrixDecomposition:
    """Pick and apply the best strategy decomposition for a predicate matrix."""

    CANDIDATES = ("distinct_rows", "identity", "hierarchical")

    def __init__(self, candidates: Sequence[str] = CANDIDATES):
        unknown = set(candidates) - set(self.CANDIDATES)
        if unknown:
            raise QueryError(f"unknown strategy candidates: {sorted(unknown)}")
        self.candidates = tuple(candidates)

    def decompose(self, workload: np.ndarray) -> StrategyChoice:
        """Return the best exact decomposition of ``workload``.

        The workload must be a non-empty ``l × m`` matrix.  Candidates that do
        not reconstruct the workload exactly (within numerical tolerance) are
        discarded; the remaining one with the smallest estimated variance
        wins.
        """
        workload = np.asarray(workload, dtype=np.float64)
        if workload.ndim != 2 or workload.size == 0:
            raise QueryError("workload matrix must be a non-empty 2-D array")
        builders = {
            "distinct_rows": _distinct_rows_strategy,
            "identity": _identity_strategy,
            "hierarchical": _hierarchical_strategy,
        }
        choices: list[StrategyChoice] = []
        for name in self.candidates:
            strategy, solution = builders[name](workload)
            choice = StrategyChoice(name=name, strategy=strategy, solution=solution)
            if choice.reconstruction_error(workload) < 1e-8:
                choices.append(choice)
        if not choices:
            raise QueryError("no candidate strategy reconstructs the workload exactly")
        return min(choices, key=lambda choice: choice.estimated_variance())

    def decompose_with(self, workload: np.ndarray, name: str) -> StrategyChoice:
        """Decompose using a specific named strategy (used by ablations)."""
        return MatrixDecomposition(candidates=(name,)).decompose(workload)
