"""Unit tests for attribute domains."""

import pytest

from repro.db.domains import AttributeDomain
from repro.exceptions import DomainError


class TestConstruction:
    def test_from_values_preserves_order(self):
        domain = AttributeDomain.from_values("letters", ["b", "a", "c"])
        assert domain.values == ("b", "a", "c")
        assert domain.size == 3

    def test_integer_range_inclusive(self):
        domain = AttributeDomain.integer_range("year", 1992, 1998)
        assert domain.size == 7
        assert domain.values[0] == 1992
        assert domain.values[-1] == 1998

    def test_integer_range_single_value(self):
        domain = AttributeDomain.integer_range("x", 5, 5)
        assert domain.size == 1

    def test_integer_range_reversed_raises(self):
        with pytest.raises(DomainError):
            AttributeDomain.integer_range("bad", 3, 1)

    def test_empty_domain_raises(self):
        with pytest.raises(DomainError):
            AttributeDomain("empty", ())

    def test_duplicate_values_raise(self):
        with pytest.raises(DomainError):
            AttributeDomain("dup", ("a", "b", "a"))

    def test_categorical(self):
        domain = AttributeDomain.categorical("region", ["ASIA", "EUROPE"])
        assert "ASIA" in domain
        assert "AFRICA" not in domain


class TestCodec:
    @pytest.fixture()
    def domain(self):
        return AttributeDomain.categorical("region", ["AFRICA", "AMERICA", "ASIA"])

    def test_encode_decode_roundtrip(self, domain):
        for value in domain:
            assert domain.decode(domain.encode(value)) == value

    def test_encode_unknown_raises(self, domain):
        with pytest.raises(DomainError):
            domain.encode("MARS")

    def test_decode_out_of_range_raises(self, domain):
        with pytest.raises(DomainError):
            domain.decode(3)
        with pytest.raises(DomainError):
            domain.decode(-1)

    def test_encode_array(self, domain):
        codes = domain.encode_array(["ASIA", "AFRICA"])
        assert list(codes) == [2, 0]

    def test_decode_array(self, domain):
        assert domain.decode_array([1, 2]) == ["AMERICA", "ASIA"]

    def test_len_and_iter(self, domain):
        assert len(domain) == 3
        assert list(domain) == ["AFRICA", "AMERICA", "ASIA"]


class TestClamping:
    @pytest.fixture()
    def domain(self):
        return AttributeDomain.integer_range("year", 1992, 1998)

    def test_clamp_below(self, domain):
        assert domain.clamp_code(-10.4) == 0

    def test_clamp_above(self, domain):
        assert domain.clamp_code(99.0) == domain.size - 1

    def test_clamp_rounds_to_nearest(self, domain):
        assert domain.clamp_code(2.4) == 2
        assert domain.clamp_code(2.6) == 3

    def test_clamp_value_decodes(self, domain):
        assert domain.clamp_value(100.0) == 1998
        assert domain.clamp_value(-3.0) == 1992


class TestIntervals:
    @pytest.fixture()
    def domain(self):
        return AttributeDomain.integer_range("month", 1, 12)

    def test_code_interval(self, domain):
        assert domain.code_interval(3, 7) == (2, 6)

    def test_code_interval_reversed_raises(self, domain):
        with pytest.raises(DomainError):
            domain.code_interval(7, 3)

    def test_slice_values(self, domain):
        assert domain.slice_values(0, 2) == (1, 2, 3)

    def test_slice_values_clamps_bounds(self, domain):
        assert domain.slice_values(-5, 100) == domain.values

    def test_slice_values_empty_when_reversed(self, domain):
        assert domain.slice_values(5, 2) == ()
