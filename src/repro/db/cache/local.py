"""The in-process cache backend (the default).

Storage layout: namespaces (one per database content fingerprint) hold one
store per region — a bounded :class:`LruCache` for the regions in
:data:`~repro.db.cache.backend.BOUNDED_REGIONS`, a plain dict for the small
unbounded statistics regions.  This reproduces exactly the cache structure
the execution engine owned before the backend layer was extracted, with hit /
miss / eviction counters added.

Namespaces themselves are also a bounded LRU (``max_namespaces``).  The
pre-refactor engine freed its caches when its database was garbage-collected
(the engine registry is weak-keyed); a process-global backend cannot rely on
that, so instead the least-recently-touched namespace is dropped whole when
a database sweep (figure7 alone builds 12 instances) would otherwise pin
every instance's artefacts for the life of the process.  Dropping a live
namespace is always safe — the engine recomputes on the next miss.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Union

from repro.db.cache.backend import BOUNDED_REGIONS, CacheStats

__all__ = ["LocalCacheBackend", "LruCache"]


class LruCache:
    """A tiny insertion-ordered LRU built on dict ordering."""

    def __init__(self, max_entries: int):
        self.max_entries = int(max_entries)
        self._data: dict[Hashable, Any] = {}

    def get(self, key: Hashable) -> Any:
        try:
            value = self._data.pop(key)
        except KeyError:
            return None
        self._data[key] = value  # move to the fresh end
        return value

    def put(self, key: Hashable, value: Any) -> int:
        """Insert ``value``; return the number of entries evicted."""
        self._data.pop(key, None)
        self._data[key] = value
        evicted = 0
        while len(self._data) > self.max_entries:
            self._data.pop(next(iter(self._data)))
            evicted += 1
        return evicted

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class LocalCacheBackend:
    """In-process cache storage with namespaced regions and counters."""

    name = "local"

    def __init__(self, max_entries: int = 192, max_namespaces: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_namespaces < 1:
            raise ValueError("max_namespaces must be at least 1")
        self.max_entries = int(max_entries)
        self.max_namespaces = int(max_namespaces)
        #: namespace -> region -> store, insertion-ordered by recency of use.
        self._namespaces: dict[str, dict[str, Union[LruCache, dict]]] = {}
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    def _regions(self, namespace: str) -> dict[str, Union[LruCache, dict]]:
        """The namespace's region map, freshened in the namespace LRU."""
        regions = self._namespaces.pop(namespace, None)
        if regions is None:
            regions = {}
            while len(self._namespaces) >= self.max_namespaces:
                stale = self._namespaces.pop(next(iter(self._namespaces)))
                self._stats.evictions += sum(len(store) for store in stale.values())
        self._namespaces[namespace] = regions
        return regions

    def _store(self, namespace: str, region: str) -> Union[LruCache, dict]:
        regions = self._regions(namespace)
        store = regions.get(region)
        if store is None:
            store = LruCache(self.max_entries) if region in BOUNDED_REGIONS else {}
            regions[region] = store
        return store

    # ------------------------------------------------------------------
    def get(self, namespace: str, region: str, key: Hashable) -> Any:
        # Lookups never create (or evict) namespaces; only ``put`` does.
        value = None
        regions = self._namespaces.get(namespace)
        if regions is not None:
            self._namespaces.pop(namespace)  # freshen in the namespace LRU
            self._namespaces[namespace] = regions
            store = regions.get(region)
            if store is not None:
                value = store.get(key)
        if value is None:
            self._stats.misses += 1
        else:
            self._stats.hits += 1
        return value

    def put(self, namespace: str, region: str, key: Hashable, value: Any) -> None:
        self._put(namespace, region, key, value)
        self._stats.puts += 1

    def _put(self, namespace: str, region: str, key: Hashable, value: Any) -> None:
        """Insert without counting a put (used for cross-tier promotions)."""
        store = self._store(namespace, region)
        if isinstance(store, LruCache):
            self._stats.evictions += store.put(key, value)
        else:
            store[key] = value

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop one namespace, or — with no argument — everything.

        A full clear is a fresh start and also zeroes the statistics
        counters; a namespace clear leaves them accumulating.  This is the
        cross-backend contract pinned by the conformance suite (the backends
        used to disagree on it).
        """
        if namespace is None:
            self._namespaces.clear()
            self.reset_stats()
        else:
            self._namespaces.pop(namespace, None)

    def release(self, namespace: str) -> None:
        """Everything here is in-process storage, so releasing == clearing."""
        self.clear(namespace)

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        return CacheStats(**self._stats.as_dict())

    def reset_stats(self) -> None:
        self._stats = CacheStats()

    def entry_count(self, namespace: Optional[str] = None) -> int:
        return sum(
            len(store)
            for ns, regions in self._namespaces.items()
            if namespace is None or ns == namespace
            for store in regions.values()
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalCacheBackend(max_entries={self.max_entries}, "
            f"namespaces={len(self._namespaces)}/{self.max_namespaces}, "
            f"entries={self.entry_count()}, {self._stats.summary()})"
        )
