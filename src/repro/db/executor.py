"""Exact star-join query execution.

The executor evaluates a :class:`~repro.db.query.StarJoinQuery` against a
:class:`~repro.db.database.StarDatabase` using the classical OLAP semi-join
plan: each dimension predicate is turned into a fact-row selection through
the foreign key, the selections are intersected, and the aggregate is
computed over the surviving fact rows.  This is the exact (non-private)
answer ``Q(D_s)`` that every mechanism's error is measured against, and it is
also the engine the Predicate Mechanism uses to answer the *noisy* query.

A reference materialise-then-filter implementation lives in
:mod:`repro.db.join` and is used in tests to cross-validate this plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.db.database import StarDatabase
from repro.db.predicates import ConjunctionPredicate
from repro.db.query import Aggregate, AggregateKind, GroupBy, Measure, StarJoinQuery
from repro.exceptions import QueryError

__all__ = ["GroupedResult", "QueryExecutor"]


@dataclass
class GroupedResult:
    """Result of a GROUP BY star-join query.

    ``groups`` maps decoded group-key tuples to aggregate values.  Helper
    methods align two grouped results over the union of their keys so the
    evaluation harness can compute relative errors between a private answer
    and the exact one.
    """

    keys: tuple[tuple[str, str], ...]
    groups: dict[tuple[Any, ...], float]

    def total(self) -> float:
        """Sum of the aggregate over all groups."""
        return float(sum(self.groups.values()))

    def as_vectors(self, other: "GroupedResult") -> tuple[np.ndarray, np.ndarray]:
        """Return aligned value vectors of ``self`` and ``other``.

        The vectors are aligned on the sorted union of both key sets, with
        missing groups treated as 0.
        """
        all_keys = sorted(set(self.groups) | set(other.groups))
        mine = np.array([self.groups.get(k, 0.0) for k in all_keys], dtype=np.float64)
        theirs = np.array([other.groups.get(k, 0.0) for k in all_keys], dtype=np.float64)
        return mine, theirs

    def __len__(self) -> int:
        return len(self.groups)


class QueryExecutor:
    """Evaluate star-join queries exactly on a :class:`StarDatabase`."""

    def __init__(self, database: StarDatabase):
        self.database = database

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def fact_selection_mask(self, predicates: ConjunctionPredicate) -> np.ndarray:
        """Boolean mask over fact rows whose joined tuple satisfies Φ."""
        mask = np.ones(self.database.num_fact_rows, dtype=bool)
        for predicate in predicates:
            mask &= self.database.fact_mask_for_predicate(predicate)
        return mask

    def selected_count(self, predicates: ConjunctionPredicate) -> int:
        """Number of fact rows selected by Φ (COUNT(*) of the star join)."""
        return int(self.fact_selection_mask(predicates).sum())

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    def measure_values(self, measure: Measure) -> np.ndarray:
        """The measure expression evaluated over every fact row."""
        values = np.asarray(self.database.fact.codes(measure.column), dtype=np.float64)
        if measure.subtract is not None:
            values = values - np.asarray(
                self.database.fact.codes(measure.subtract), dtype=np.float64
            )
        return values

    def _aggregate_masked(self, aggregate: Aggregate, mask: np.ndarray) -> float:
        if aggregate.kind is AggregateKind.COUNT:
            return float(mask.sum())
        values = self.measure_values(aggregate.measure)[mask]
        if aggregate.kind is AggregateKind.SUM:
            return float(values.sum())
        if aggregate.kind is AggregateKind.AVG:
            return float(values.mean()) if values.size else 0.0
        raise QueryError(f"unsupported aggregate kind {aggregate.kind!r}")

    # ------------------------------------------------------------------
    # group by
    # ------------------------------------------------------------------
    def _group_codes(self, group_by: GroupBy, mask: np.ndarray) -> list[np.ndarray]:
        """Per-key arrays of group codes for the selected fact rows."""
        per_key = []
        for table_name, attribute in group_by:
            if table_name == self.database.fact.name:
                codes = self.database.fact.codes(attribute)[mask]
            else:
                table = self.database.table(table_name)
                column_codes = table.codes(attribute)
                direct_name, _ = self.database.resolve_to_direct_dimension(
                    table_name, np.ones(table.num_rows, dtype=bool)
                )
                if direct_name != table_name:
                    raise QueryError(
                        "GROUP BY over snowflaked (non-direct) dimension attributes "
                        "is not supported"
                    )
                fk_codes = self.database.fact_foreign_key_codes(table_name)[mask]
                codes = column_codes[fk_codes]
            per_key.append(np.asarray(codes))
        return per_key

    def _grouped(self, query: StarJoinQuery, mask: np.ndarray) -> GroupedResult:
        group_by = query.group_by
        per_key_codes = self._group_codes(group_by, mask)
        if query.kind is AggregateKind.COUNT:
            weights = np.ones(int(mask.sum()), dtype=np.float64)
        else:
            weights = self.measure_values(query.aggregate.measure)[mask]

        # Combine the per-key code arrays into a single composite group id.
        if per_key_codes:
            stacked = np.stack(per_key_codes, axis=1)
        else:
            stacked = np.zeros((int(mask.sum()), 0), dtype=np.int64)
        unique_rows, inverse = np.unique(stacked, axis=0, return_inverse=True)
        sums = np.bincount(inverse, weights=weights, minlength=unique_rows.shape[0])
        if query.kind is AggregateKind.AVG:
            counts = np.bincount(inverse, minlength=unique_rows.shape[0])
            sums = np.divide(sums, np.maximum(counts, 1))

        groups: dict[tuple[Any, ...], float] = {}
        for row, value in zip(unique_rows, sums):
            decoded = []
            for (table_name, attribute), code in zip(group_by, row):
                domain = self.database.table(table_name).domain(attribute)
                decoded.append(domain.decode(int(code)) if domain is not None else int(code))
            groups[tuple(decoded)] = float(value)
        return GroupedResult(keys=tuple(group_by.keys), groups=groups)

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def execute(self, query: StarJoinQuery):
        """Execute ``query`` exactly.

        Returns a ``float`` for scalar aggregates and a :class:`GroupedResult`
        for GROUP BY queries.
        """
        mask = self.fact_selection_mask(query.predicates)
        if query.is_grouped:
            return self._grouped(query, mask)
        return self._aggregate_masked(query.aggregate, mask)

    # ------------------------------------------------------------------
    # helpers for truncation-based mechanisms
    # ------------------------------------------------------------------
    def contribution_per_key(
        self, query: StarJoinQuery, dimension_name: str
    ) -> np.ndarray:
        """Per-dimension-key contribution to the query answer.

        For COUNT queries this is the number of selected fact rows joining to
        each key of ``dimension_name``; for SUM queries it is the summed
        measure.  Truncation-based mechanisms (TM, R2T) cap these
        contributions at a threshold τ.
        """
        mask = self.fact_selection_mask(query.predicates)
        codes = self.database.fact_foreign_key_codes(dimension_name)[mask]
        dim_rows = self.database.dimension(dimension_name).num_rows
        if query.kind is AggregateKind.COUNT:
            return np.bincount(codes, minlength=dim_rows).astype(np.float64)
        weights = self.measure_values(query.aggregate.measure)[mask]
        return np.bincount(codes, weights=weights, minlength=dim_rows)

    def truncated_answer(
        self,
        query: StarJoinQuery,
        dimension_name: str,
        threshold: float,
        per_key: Optional[np.ndarray] = None,
    ) -> float:
        """Answer with each key's contribution truncated at ``threshold``.

        This is ``Q(D_s, τ)`` in the paper's description of the truncation
        mechanism and R2T (Eq. 9): entities contributing more than τ have
        their contribution capped.
        """
        if per_key is None:
            per_key = self.contribution_per_key(query, dimension_name)
        return float(np.minimum(per_key, threshold).sum())
