"""Render a JSONL trace file: per-stage latency breakdowns + critical path.

``python -m repro.obs.summarize TRACE.jsonl`` reads the spans exported by
``--trace-path`` (serving server, evaluation CLI, or any ``trace_scope``)
and prints:

* a per-stage table — count, total/mean and exact p50/p95/p99 over the
  recorded spans of each stage name;
* the **critical path** of the slowest trace — from its root span, the
  chain of heaviest children, with each hop's share of the root;
* orphan diagnostics — spans whose ``parent_id`` names no span in their
  trace (a healthy trace has zero; cross-process propagation bugs show
  up here first).

The module is import-safe for tests: :func:`load_spans`,
:func:`stage_table`, :func:`critical_path` and :func:`orphan_spans` are
plain functions over span dicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Iterable, Optional

__all__ = [
    "critical_path",
    "load_spans",
    "main",
    "orphan_spans",
    "stage_table",
]


def load_spans(path: str) -> list[dict]:
    """Parse a JSONL trace file; malformed lines are skipped, not fatal
    (a crashed process may leave a torn final line)."""
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "span_id" in record:
                spans.append(record)
    return spans


def _exact_percentile(values: list[float], quantile: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, round(quantile * (len(ordered) - 1))))
    return ordered[index]


def stage_table(spans: Iterable[dict]) -> list[dict]:
    """Aggregate spans by name: count, total, mean, p50/p95/p99 (seconds),
    sorted by total descending."""
    by_name: dict[str, list[float]] = defaultdict(list)
    for record in spans:
        by_name[str(record.get("name", "?"))].append(float(record.get("elapsed_s", 0.0)))
    table = []
    for name, samples in by_name.items():
        total = sum(samples)
        table.append({
            "name": name,
            "count": len(samples),
            "total_s": total,
            "mean_s": total / len(samples),
            "p50_s": _exact_percentile(samples, 0.50),
            "p95_s": _exact_percentile(samples, 0.95),
            "p99_s": _exact_percentile(samples, 0.99),
        })
    table.sort(key=lambda row: -row["total_s"])
    return table


def orphan_spans(spans: Iterable[dict]) -> list[dict]:
    """Spans whose ``parent_id`` names no span in the same trace (roots,
    with ``parent_id`` null, are not orphans)."""
    ids_by_trace: dict[str, set] = defaultdict(set)
    records = list(spans)
    for record in records:
        ids_by_trace[record.get("trace_id", "")].add(record.get("span_id"))
    return [
        record for record in records
        if record.get("parent_id") is not None
        and record.get("parent_id") not in ids_by_trace[record.get("trace_id", "")]
    ]


def critical_path(spans: Iterable[dict], trace_id: Optional[str] = None) -> list[dict]:
    """The heaviest root-to-leaf chain of one trace.

    With no ``trace_id``, picks the trace whose root span is slowest.  At
    each node the walk follows the child with the largest ``elapsed_s`` —
    on a synchronous request path that is the stage the wall-clock actually
    sat in.
    """
    records = list(spans)
    if trace_id is not None:
        records = [r for r in records if r.get("trace_id") == trace_id]
    children: dict[Optional[str], list[dict]] = defaultdict(list)
    by_id: dict[str, dict] = {}
    for record in records:
        by_id[record.get("span_id")] = record
        children[record.get("parent_id")].append(record)
    roots = [r for r in records if r.get("parent_id") not in by_id]
    if not roots:
        return []
    root = max(roots, key=lambda r: float(r.get("elapsed_s", 0.0)))
    path = [root]
    seen = {root.get("span_id")}
    node = root
    while True:
        kids = [k for k in children.get(node.get("span_id"), []) if k.get("span_id") not in seen]
        if not kids:
            return path
        node = max(kids, key=lambda k: float(k.get("elapsed_s", 0.0)))
        seen.add(node.get("span_id"))
        path.append(node)


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}"


def render(spans: list[dict], source: str) -> str:
    """The human-readable report the CLI prints."""
    traces = {record.get("trace_id") for record in spans}
    lines = [f"{len(spans)} span(s) across {len(traces)} trace(s) from {source}"]
    if not spans:
        return "\n".join(lines)

    lines.append("")
    lines.append("per-stage latency:")
    header = (f"  {'stage':<28} {'count':>6} {'total_ms':>10} "
              f"{'mean_ms':>9} {'p50_ms':>9} {'p95_ms':>9} {'p99_ms':>9}")
    lines.append(header)
    for row in stage_table(spans):
        lines.append(
            f"  {row['name']:<28} {row['count']:>6} {_format_ms(row['total_s']):>10} "
            f"{_format_ms(row['mean_s']):>9} {_format_ms(row['p50_s']):>9} "
            f"{_format_ms(row['p95_s']):>9} {_format_ms(row['p99_s']):>9}"
        )

    path = critical_path(spans)
    if path:
        root = path[0]
        root_elapsed = max(float(root.get("elapsed_s", 0.0)), 1e-12)
        lines.append("")
        lines.append(
            f"critical path (trace {root.get('trace_id')}, "
            f"{_format_ms(root_elapsed)} ms):"
        )
        for depth, node in enumerate(path):
            elapsed = float(node.get("elapsed_s", 0.0))
            share = 100.0 * elapsed / root_elapsed
            lines.append(
                f"  {'  ' * depth}{node.get('name')}  "
                f"{_format_ms(elapsed)} ms ({share:.0f}%)"
            )

    orphans = orphan_spans(spans)
    lines.append("")
    lines.append(f"orphan spans: {len(orphans)}")
    for record in orphans[:5]:
        lines.append(
            f"  {record.get('name')} (span {record.get('span_id')}, "
            f"parent {record.get('parent_id')} missing)"
        )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.summarize",
        description="Summarize a JSONL request trace: per-stage latency and critical path.",
    )
    parser.add_argument("trace", help="path to a --trace-path JSONL file")
    parser.add_argument(
        "--trace-id", default=None,
        help="restrict the report to one trace id (default: all spans)",
    )
    args = parser.parse_args(argv)
    try:
        spans = load_spans(args.trace)
    except OSError as error:
        print(f"error: cannot read {args.trace}: {error}", file=sys.stderr)
        return 2
    if args.trace_id is not None:
        spans = [record for record in spans if record.get("trace_id") == args.trace_id]
    try:
        print(render(spans, args.trace))
    except BrokenPipeError:  # e.g. `... | head` closed the pipe mid-report
        sys.stderr.close()  # suppress the interpreter's epilogue warning
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
