"""Tests for the out-of-process cache server and its wire formats.

The contracts under test (see docs/CACHE.md):

* **key framing is injective** — distinct ``(namespace, region, key)``
  triples never serialize to the same bytes, and equal triples always do
  (property-based, since the engine's fingerprints are an open-ended space);
* **payload framing is bit-exact** — a round-trip preserves dtype, shape
  and bytes for every array kind the engine caches, and tuples/scalars
  survive structurally;
* **persistence is safe** — entries written through to the sqlite file come
  back warm after a restart; a corrupted or truncated file quarantines with
  a warning and the server starts empty rather than crashing;
* **failure injection** — a server killed mid-run degrades every client to
  local-only without changing a single result byte;
* a batch run warms the server for a *separately constructed* client — the
  batch-to-serving sharing the acceptance criteria require.
"""

from __future__ import annotations

import copy
import dataclasses
import io
import socket
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.db.cache import (
    LocalCacheBackend,
    REGIONS,
    RemoteCacheBackend,
    active_backend,
    make_backend,
    parse_cache_url,
)
from repro.db.cache.server import CacheServer, CacheServerThread, CacheStore
from repro.db.cache.wire import (
    MAX_FRAME_HEADER,
    decode_payload,
    encode_key,
    encode_payload,
    key_from_header,
    key_to_header,
    read_frame,
    write_frame,
)
from repro.db.engine import ExecutionEngine
from repro.db.executor import QueryExecutor
from repro.datagen.ssb import ssb_schema
from repro.evaluation.experiments import table1
from repro.evaluation.experiments.common import ExperimentConfig
from repro.evaluation.parallel import evaluation_session
from repro.workloads.ssb_queries import ssb_query


@pytest.fixture()
def server():
    with CacheServerThread(max_entries=256) as handle:
        yield handle


def _connect(handle) -> RemoteCacheBackend:
    return RemoteCacheBackend(
        host="127.0.0.1", port=handle.server.port, max_entries=32
    )


# ----------------------------------------------------------------------
# key framing: canonical and injective
# ----------------------------------------------------------------------
_KEY_ATOMS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=12),
    st.binary(max_size=12),
)
_KEYS = st.recursive(
    _KEY_ATOMS,
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=12,
)
_TRIPLES = st.tuples(st.text(max_size=8), st.sampled_from(sorted(REGIONS)), _KEYS)


class TestKeyFraming:
    @settings(max_examples=300)
    @given(first=_TRIPLES, second=_TRIPLES)
    def test_distinct_triples_never_collide(self, first, second):
        if encode_key(*first) == encode_key(*second):
            assert first == second

    @settings(max_examples=200)
    @given(triple=_TRIPLES)
    def test_encoding_is_canonical(self, triple):
        """Structurally equal keys encode identically — the property that
        lets two unrelated processes address each other's entries."""
        assert encode_key(*triple) == encode_key(*copy.deepcopy(triple))

    def test_engine_style_fingerprints_are_distinct(self):
        # The shapes the engine actually files: nested sorted tuples of
        # (table, attribute, kind, codes) with floats and ints mixed in.
        keys = [
            ("COUNT", None, (("Date", "year", "point", 5),), None),
            ("COUNT", None, (("Date", "year", "point", 6),), None),
            ("SUM", ("revenue", None), (("Date", "year", "point", 5),), None),
            ("COUNT", None, (("Date", "year", "range", 5, 6),), None),
            ("COUNT", None, (("Date", "year", "point", 5),), ("Customer.region",)),
        ]
        encoded = {encode_key("ns", "result", key) for key in keys}
        assert len(encoded) == len(keys)
        # ... and the same key under another namespace/region is another address.
        assert encode_key("other", "result", keys[0]) not in encoded
        assert encode_key("ns", "cube", keys[0]) not in encoded

    def test_header_transport_round_trips(self):
        blob = encode_key("ns", "cube", ("k", 1, 0.5))
        assert key_from_header(key_to_header(blob)) == blob


# ----------------------------------------------------------------------
# payload framing: bit-exact for everything the engine caches
# ----------------------------------------------------------------------
_ARRAY_DTYPES = (
    np.bool_,
    np.int8,
    np.int16,
    np.int32,
    np.int64,
    np.uint8,
    np.uint32,
    np.uint64,
    np.float16,
    np.float32,
    np.float64,
    np.complex128,
)


def _assert_array_identical(back: np.ndarray, original: np.ndarray) -> None:
    assert back.dtype == original.dtype
    assert back.shape == original.shape
    assert back.tobytes() == original.tobytes()  # bitwise, NaNs included


class TestPayloadFraming:
    @pytest.mark.parametrize("dtype", _ARRAY_DTYPES, ids=lambda d: np.dtype(d).name)
    def test_dtype_round_trip(self, dtype):
        rng = np.random.default_rng(7)
        array = (rng.random((3, 5)) * 100).astype(dtype)
        _assert_array_identical(decode_payload(encode_payload(array)), array)

    @pytest.mark.parametrize(
        "array",
        [
            np.empty((0,), dtype=np.float64),
            np.empty((0, 4), dtype=np.int64),
            np.float64(3.5) * np.ones(()),  # 0-d
            np.asfortranarray(np.arange(12).reshape(3, 4)),
            np.arange(24).reshape(2, 3, 4)[:, ::2, :],  # non-contiguous view
            np.array([np.nan, np.inf, -np.inf, -0.0]),
        ],
        ids=["empty", "empty-2d", "zero-d", "fortran", "strided", "specials"],
    )
    def test_shape_and_order_round_trip(self, array):
        _assert_array_identical(decode_payload(encode_payload(array)), array)

    @settings(max_examples=150, deadline=None)
    @given(
        data=st.lists(
            st.floats(width=64, allow_nan=True, allow_infinity=True), max_size=30
        )
    )
    def test_float_payloads_bitwise(self, data):
        array = np.asarray(data, dtype=np.float64)
        _assert_array_identical(decode_payload(encode_payload(array)), array)

    def test_tuple_payloads_recurse(self):
        value = (
            np.arange(5, dtype=np.int64),
            (np.ones(3, dtype=bool), 2.5),
            None,
            "label",
        )
        back = decode_payload(encode_payload(value))
        assert isinstance(back, tuple) and len(back) == 4
        _assert_array_identical(back[0], value[0])
        _assert_array_identical(back[1][0], value[1][0])
        assert back[1][1] == 2.5 and back[2] is None and back[3] == "label"

    def test_scalar_and_object_payloads_fall_back_to_pickle(self):
        from repro.db.executor import GroupedResult

        grouped = GroupedResult(
            keys=(("Customer", "region"),), groups={("ASIA",): 4.0, ("EUROPE",): 2.0}
        )
        back = decode_payload(encode_payload(grouped))
        assert back.groups == grouped.groups and back.keys == grouped.keys
        assert decode_payload(encode_payload(123.5)) == 123.5

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode_payload(encode_payload(1.0) + b"extra")
        with pytest.raises(ValueError):
            decode_payload(b"Zjunk")


# ----------------------------------------------------------------------
# frame I/O
# ----------------------------------------------------------------------
class TestFrames:
    def test_round_trip(self):
        buffer = io.BytesIO()
        sent = write_frame(buffer, {"op": "put", "key": "abc"}, b"\x00\x01payload")
        buffer.seek(0)
        header, payload, received = read_frame(buffer)
        assert header == {"op": "put", "key": "abc"}
        assert payload == b"\x00\x01payload"
        # Sender and receiver agree on the wire size, header included.
        assert sent == received == len(buffer.getvalue())

    def test_header_bound_enforced(self):
        buffer = io.BytesIO(struct.pack(">I", MAX_FRAME_HEADER + 1))
        with pytest.raises(ValueError):
            read_frame(buffer)

    def test_short_read_is_eof(self):
        buffer = io.BytesIO(struct.pack(">I", 10) + b"{}")
        with pytest.raises(EOFError):
            read_frame(buffer)


# ----------------------------------------------------------------------
# the store: LRU + persistence
# ----------------------------------------------------------------------
class TestCacheStore:
    def test_lru_eviction_deletes_from_disk_too(self, tmp_path):
        path = tmp_path / "cache.db"
        store = CacheStore(path=str(path), max_entries=2)
        for index in range(4):
            store.put("ns", "result", f"k{index}".encode(), b"v%d" % index)
        assert store.entry_count() == 2 and store.evictions == 2
        store.close()
        reloaded = CacheStore(path=str(path), max_entries=8)
        assert reloaded.entry_count() == 2  # evicted rows are gone on disk
        assert reloaded.get("ns", "result", b"k3") == b"v3"
        assert reloaded.get("ns", "result", b"k0") is None
        reloaded.close()

    def test_restart_honours_a_smaller_bound(self, tmp_path):
        path = tmp_path / "cache.db"
        store = CacheStore(path=str(path), max_entries=16)
        for index in range(8):
            store.put("ns", "result", b"k%d" % index, b"v")
        store.close()
        shrunk = CacheStore(path=str(path), max_entries=3)
        assert shrunk.entry_count() == 3
        shrunk.close()

    def test_namespace_clear_persists(self, tmp_path):
        path = tmp_path / "cache.db"
        store = CacheStore(path=str(path))
        store.put("ns-a", "result", b"k", b"va")
        store.put("ns-b", "result", b"k", b"vb")
        store.clear("ns-a")
        store.close()
        reloaded = CacheStore(path=str(path))
        assert reloaded.entry_count("ns-a") == 0
        assert reloaded.get("ns-b", "result", b"k") == b"vb"
        reloaded.close()

    def test_full_clear_resets_counters(self):
        store = CacheStore()
        store.put("ns", "result", b"k", b"v")
        store.get("ns", "result", b"k")
        store.get("ns", "result", b"missing")
        store.clear()
        stats = store.stats()
        assert (stats["hits"], stats["misses"], stats["puts"]) == (0, 0, 0)
        assert stats["entries"] == 0


class TestPersistenceRecovery:
    def test_corrupted_file_starts_empty_with_warning(self, tmp_path):
        path = tmp_path / "cache.db"
        path.write_bytes(b"this is definitely not a sqlite database")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            store = CacheStore(path=str(path))
        assert store.entry_count() == 0
        assert path.with_suffix(".db.corrupt").exists()  # quarantined, not lost
        # The fresh file is live: writes persist again.
        store.put("ns", "result", b"k", b"v")
        store.close()
        healthy = CacheStore(path=str(path))
        assert healthy.get("ns", "result", b"k") == b"v"
        healthy.close()

    def test_stale_wal_sidecars_do_not_block_recovery(self, tmp_path):
        """A crash can corrupt the main file and leave -wal/-shm sidecars;
        recovery must quarantine the body AND drop the sidecars, or the
        fresh database would trip over a mismatched WAL."""
        path = tmp_path / "cache.db"
        path.write_bytes(b"corrupt body")
        (tmp_path / "cache.db-wal").write_bytes(b"stale wal frames")
        (tmp_path / "cache.db-shm").write_bytes(b"stale shm index")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            store = CacheStore(path=str(path))
        assert store.entry_count() == 0
        assert not (tmp_path / "cache.db-wal").read_bytes() == b"stale wal frames"
        store.put("ns", "result", b"k", b"v")
        store.close()
        healthy = CacheStore(path=str(path))
        assert healthy.get("ns", "result", b"k") == b"v"
        healthy.close()

    def test_truncated_file_starts_empty_with_warning(self, tmp_path):
        path = tmp_path / "cache.db"
        store = CacheStore(path=str(path))
        for index in range(64):
            store.put("ns", "result", b"key-%d" % index, b"x" * 512)
        store.close()
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 3])  # tear the file mid-page
        with pytest.warns(RuntimeWarning, match="unreadable"):
            recovered = CacheStore(path=str(path))
        assert recovered.entry_count() == 0
        recovered.close()

    def test_unwritable_path_continues_memory_only(self, tmp_path):
        blocked = tmp_path / "not-a-dir"
        blocked.write_bytes(b"a file where a directory is needed")
        with pytest.warns(RuntimeWarning):
            store = CacheStore(path=str(blocked / "cache.db"))
        assert store.path is None  # memory-only from here on
        store.put("ns", "result", b"k", b"v")
        assert store.get("ns", "result", b"k") == b"v"
        assert store.stats()["persisted"] is False
        store.close()

    def test_persistence_path_parent_is_created(self, tmp_path):
        nested = tmp_path / "deep" / "nested" / "cache.db"
        store = CacheStore(path=str(nested))
        store.put("ns", "result", b"k", b"v")
        store.close()
        assert nested.exists()

    def test_client_survives_a_server_restart_on_the_same_port(self, tmp_path):
        """A pooled socket predating a server restart must retry on a fresh
        connection, not permanently degrade the backend — restarts are the
        whole point of the persistence file."""
        path = tmp_path / "cache.db"
        first = CacheServerThread(path=str(path)).start()
        port = first.server.port
        backend = RemoteCacheBackend(host="127.0.0.1", port=port)
        backend.put("ns", "cube", "k", np.arange(4))  # pools a connection
        first.stop()
        second = CacheServerThread(
            server=CacheServer(path=str(path), port=port)
        ).start()
        try:
            backend._local.clear()
            fetched = backend.get("ns", "cube", "k")  # stale socket → retry
            np.testing.assert_array_equal(fetched, np.arange(4))
            assert not backend.degraded
        finally:
            backend.close()
            second.stop()

    def test_server_restart_is_warm(self, tmp_path):
        path = tmp_path / "cache.db"
        with CacheServerThread(path=str(path)) as first:
            backend = _connect(first)
            backend.put("ns", "cube", ("q", 1), np.arange(10, dtype=np.int64))
            backend.close()
        with CacheServerThread(path=str(path)) as second:
            assert second.server.store.loaded_from_disk == 1
            fresh = _connect(second)
            fresh._local.clear()  # nothing in-process: the hit is from disk
            fetched = fresh.get("ns", "cube", ("q", 1))
            np.testing.assert_array_equal(fetched, np.arange(10))
            fresh.close()


# ----------------------------------------------------------------------
# server protocol edges
# ----------------------------------------------------------------------
class TestServerProtocol:
    def test_ping_reports_identity(self, server):
        backend = _connect(server)
        response, _ = backend._request({"op": "ping"})
        assert response["server"] == "repro-cache-server"
        assert response["persisted"] is False
        backend.close()

    def test_unknown_op_is_structured(self, server):
        backend = _connect(server)
        with pytest.raises(RuntimeError, match="unknown op"):
            backend._request({"op": "frobnicate"})
        # The connection survives a refused op.
        response, _ = backend._request({"op": "ping"})
        assert response["ok"]
        backend.close()

    def test_malformed_frame_answered_then_dropped(self, server):
        with socket.create_connection(("127.0.0.1", server.server.port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            stream.write(struct.pack(">I", MAX_FRAME_HEADER + 5))  # absurd length
            stream.flush()
            header, _, _ = read_frame(stream)
            assert header["ok"] is False and "bad frame" in header["error"]
            assert stream.read(1) == b""  # server dropped the connection

    def test_garbage_put_headers_are_refused(self, server):
        backend = _connect(server)
        with pytest.raises(RuntimeError, match="namespace/region/key"):
            backend._request({"op": "put"}, b"payload")
        backend.close()

    def test_shutdown_op_stops_the_server(self):
        handle = CacheServerThread().start()
        backend = _connect(handle)
        response, _ = backend._request({"op": "shutdown"})
        assert response["stopping"]
        handle._thread.join(timeout=10)
        assert not handle._thread.is_alive()
        backend.close()

    def test_server_side_stats_accumulate_across_clients(self, server):
        first = _connect(server)
        second = _connect(server)
        first.put("ns", "cube", "k", 1.0)
        second.get("ns", "cube", "k")
        stats = second.server_stats()
        assert stats["puts"] == 1 and stats["hits"] == 1
        assert stats["bytes_received"] > 0 and stats["bytes_sent"] > 0
        first.close()
        second.close()


class TestCacheUrl:
    def test_parse_variants(self):
        assert parse_cache_url("127.0.0.1:8643") == ("127.0.0.1", 8643)
        assert parse_cache_url("tcp://cache-host:9000") == ("cache-host", 9000)

    @pytest.mark.parametrize("bad", ["", "no-port", ":8643", "host:not-a-port", "host:0"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_cache_url(bad)

    def test_make_backend_accepts_url(self, server):
        backend = make_backend("remote", 32, url=f"127.0.0.1:{server.server.port}")
        try:
            backend.put("ns", "result", "k", 5.0)
            assert server.server.store.entry_count("ns") == 1
        finally:
            backend.close()


# ----------------------------------------------------------------------
# failure injection: the server dies, the run does not
# ----------------------------------------------------------------------
def _table1_rows(config, **kwargs):
    """Table 1 rows with the wall-clock column dropped (not reproducible)."""
    with evaluation_session(config):
        result = table1.run(config, **kwargs)
    return [{k: v for k, v in row.items() if k != "mean_time_s"} for row in result.rows]


class TestFailureInjection:
    QUERIES = ("Qc1", "Qs2")

    @pytest.fixture()
    def tiny_config(self):
        return ExperimentConfig(
            epsilons=(0.1, 1.0),
            trials=2,
            scale_factor=1.0,
            rows_per_scale_factor=6000,
            seed=11,
        )

    def test_engine_keeps_answering_after_server_death(self, ssb_small):
        handle = CacheServerThread().start()
        backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
        engine = ExecutionEngine(ssb_small, backend=backend)
        executor = QueryExecutor(ssb_small, engine=engine)
        query = ssb_query("Qc1", ssb_schema())
        before = executor.execute(query)
        handle.stop()  # the server is gone mid-"run"
        engine.backend._local.clear()  # even with a cold L1 ...
        after = executor.execute(query)  # ... recompute, don't crash
        assert after == before
        assert backend._broken
        backend.close()

    def test_run_degrades_to_local_without_corrupting_results(self, tiny_config):
        reference = _table1_rows(
            dataclasses.replace(tiny_config, cache_backend="local"),
            query_names=self.QUERIES,
        )
        handle = CacheServerThread().start()
        config = dataclasses.replace(
            tiny_config,
            cache_backend="remote",
            cache_url=f"127.0.0.1:{handle.server.port}",
        )
        with evaluation_session(config):
            first = table1.run(config, query_names=self.QUERIES[:1])
            assert active_backend().stats().shared_puts > 0  # server was live
            handle.stop()  # killed mid-session
            survivor = table1.run(config, query_names=self.QUERIES)
            assert active_backend()._broken
        rows = [
            {k: v for k, v in row.items() if k != "mean_time_s"}
            for row in survivor.rows
        ]
        assert rows == reference
        assert first.rows  # the pre-kill run produced output too

    def test_corrupt_server_payload_degrades_instead_of_raising(self, server):
        """A truncated/garbage value blob on the server must cost a
        recomputation (degrade + miss), never crash the run."""
        backend = _connect(server)
        backend.put("ns", "cube", "k", np.arange(4, dtype=np.float64))
        address = next(iter(server.server.store._data))
        server.server.store._data[address] = b"A\x00\x00\x00\xffgarbage"  # torn blob
        backend._local.clear()
        assert backend.get("ns", "cube", "k") is None  # no exception escapes
        assert backend._broken
        backend.close()

    def test_unpicklable_value_stays_local_only(self, server):
        """A value that cannot cross the wire is a value problem, not a
        server problem: it stays in L1 and the backend keeps sharing."""
        backend = _connect(server)
        backend.put("ns", "result", "k", lambda: None)  # unpicklable
        assert not backend._broken
        assert server.server.store.entry_count("ns") == 0  # never sent
        assert callable(backend.get("ns", "result", "k"))  # L1 serves it
        backend.put("ns", "result", "j", 2.0)  # sharing still works
        assert server.server.store.entry_count("ns") == 1
        backend.close()

    def test_puts_and_clears_never_raise_when_degraded(self):
        handle = CacheServerThread().start()
        backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
        handle.stop()
        backend.put("ns", "cube", "k", 1.0)
        assert backend._broken
        backend.put("ns", "cube", "j", 2.0)
        backend.clear("ns")
        backend.clear()
        assert backend.entry_count() == 0
        assert backend.server_stats() is None
        backend.close()


# ----------------------------------------------------------------------
# batch-run warming for an unrelated client (the acceptance criterion)
# ----------------------------------------------------------------------
class TestBatchWarmsUnrelatedClients:
    def test_fresh_client_scores_remote_hits_after_a_batch_run(self, server):
        config = ExperimentConfig(
            epsilons=(0.1, 1.0),
            trials=2,
            rows_per_scale_factor=6000,
            seed=11,
            cache_backend="remote",
            cache_url=f"127.0.0.1:{server.server.port}",
        )
        rows_warm = _table1_rows(config, query_names=("Qc1", "Qs2"))
        assert server.server.store.entry_count() > 0  # the batch run warmed it

        # A brand-new client — separate backend, never forked from the batch
        # run — replays the same workload and is served by the batch's work.
        hits_before = server.server.store.hits
        rows_fresh = _table1_rows(dataclasses.replace(config), query_names=("Qc1", "Qs2"))
        assert server.server.store.hits > hits_before  # nonzero remote hits
        assert rows_fresh == rows_warm  # ... and warm hits change no bytes


# ----------------------------------------------------------------------
# cost-aware store economics: byte budget, policy, restart parity
# ----------------------------------------------------------------------
class TestCostAwareStore:
    def test_byte_budget_bounds_the_store(self):
        store = CacheStore(max_entries=1000, max_bytes=1000)
        for index in range(10):
            store.put("ns", "result", b"k%d" % index, b"x" * 300)
        assert store.stats()["bytes_stored"] <= 1000
        assert store.entry_count() == 3

    def test_oversized_payload_rejected_not_stored(self):
        store = CacheStore(max_entries=10, max_bytes=100)
        assert store.put("ns", "result", b"small", b"x" * 10) is True
        assert store.put("ns", "result", b"huge", b"x" * 500) is False
        assert store.get("ns", "result", b"huge") is None
        assert store.get("ns", "result", b"small") == b"x" * 10
        assert store.rejected_puts == 1
        assert store.stats()["rejected_puts"] == 1

    def test_cost_weighted_eviction_keeps_expensive_entries(self):
        store = CacheStore(max_entries=2)
        store.put("ns", "result", b"gold", b"g", cost=10.0)
        store.put("ns", "result", b"cheap-a", b"a", cost=1e-6)
        store.put("ns", "result", b"cheap-b", b"b", cost=1e-6)
        assert store.get("ns", "result", b"gold") == b"g"
        assert store.get("ns", "result", b"cheap-a") is None

    def test_lru_policy_ignores_cost(self):
        store = CacheStore(max_entries=2, policy="lru")
        store.put("ns", "result", b"gold", b"g", cost=10.0)
        store.put("ns", "result", b"b", b"b")
        store.put("ns", "result", b"c", b"c")  # evicts the oldest despite cost
        assert store.get("ns", "result", b"gold") is None
        assert store.stats()["policy"] == "lru"

    def test_deterministic_tie_break_on_sequence(self):
        store = CacheStore(max_entries=3)
        for name in (b"a", b"b", b"c", b"d"):  # equal costs -> equal priority
            store.put("ns", "result", name, b"v", cost=0.5)
        assert store.get("ns", "result", b"a") is None  # oldest loses the tie
        assert store.get("ns", "result", b"b") == b"v"

    @staticmethod
    def _traffic(store):
        """A fixed put/get history with evictions under both phases."""
        for index in range(6):
            store.put("ns", "result", b"k%d" % index, b"x" * (10 + index), cost=0.01 * index)
        store.get("ns", "result", b"k2")
        store.get("ns", "result", b"k2")
        store.get("ns", "result", b"k5")

    @staticmethod
    def _more_traffic(store):
        for index in range(6, 12):
            store.put("ns", "result", b"k%d" % index, b"x" * 10, cost=0.001)

    def test_restart_eviction_parity(self, tmp_path):
        """A restarted server evicts in exactly the order the old one would
        have: same subsequent traffic, same survivors (the warm-restart
        recency-loss fix)."""
        continuous = CacheStore(max_entries=4)
        self._traffic(continuous)
        self._more_traffic(continuous)
        expected = sorted(continuous._data)

        path = tmp_path / "cache.db"
        restarted = CacheStore(path=str(path), max_entries=4)
        self._traffic(restarted)
        restarted.close()  # flushes per-get freshened metadata + clock
        reloaded = CacheStore(path=str(path), max_entries=4)
        self._more_traffic(reloaded)
        assert sorted(reloaded._data) == expected
        reloaded.close()

    def test_restart_restores_cost_metadata(self, tmp_path):
        path = tmp_path / "cache.db"
        store = CacheStore(path=str(path), max_entries=8)
        store.put("ns", "result", b"k", b"v", cost=2.5)
        store.close()
        reloaded = CacheStore(path=str(path), max_entries=8)
        assert reloaded.entry_cost("ns", "result", b"k") == 2.5
        meta = reloaded._meta[("ns", "result", b"k")]
        assert meta[2] == 1  # nbytes
        reloaded.close()

    def test_v1_file_without_metadata_columns_migrates_in_place(self, tmp_path):
        """A persistence file written by a protocol-v1 server (four columns,
        no metadata) must load warm — migrated, never quarantined."""
        import sqlite3

        path = tmp_path / "cache.db"
        conn = sqlite3.connect(path)
        conn.execute(
            "CREATE TABLE cache_entries ("
            " namespace TEXT NOT NULL, region TEXT NOT NULL,"
            " key BLOB NOT NULL, value BLOB NOT NULL,"
            " PRIMARY KEY (namespace, region, key))"
        )
        conn.execute(
            "INSERT INTO cache_entries VALUES (?, ?, ?, ?)", ("ns", "result", b"k", b"v")
        )
        conn.commit()
        conn.close()
        store = CacheStore(path=str(path), max_entries=8)
        assert store.loaded_from_disk == 1
        assert store.get("ns", "result", b"k") == b"v"
        store.put("ns", "result", b"j", b"w", cost=1.0)  # new columns writable
        store.close()


class TestByteBudgetServer:
    def test_stats_report_bytes_and_policy(self):
        with CacheServerThread(max_entries=64, max_bytes=1 << 20) as handle:
            backend = _connect(handle)
            backend.put("ns", "cube", "k", np.arange(32, dtype=np.float64))
            stats = backend.server_stats()
            assert stats["bytes_stored"] > 0
            assert stats["max_bytes"] == 1 << 20
            assert stats["policy"] == "cost"
            backend.close()

    def test_cli_parser_accepts_budget_and_policy(self):
        from repro.db.cache.server import _build_parser

        args = _build_parser().parse_args(
            ["--max-bytes", "1048576", "--policy", "lru", "--port", "0"]
        )
        assert args.max_bytes == 1048576 and args.policy == "lru"

    def test_rejected_put_reported_to_client(self):
        with CacheServerThread(max_entries=64, max_bytes=64) as handle:
            backend = _connect(handle)
            backend.put("ns", "cube", "k", np.zeros(1000))  # payload >> budget
            assert handle.server.store.entry_count() == 0
            assert handle.server.store.rejected_puts == 1
            # The value still serves from L1 — a refusal is not a failure.
            assert backend.get("ns", "cube", "k") is not None
            backend.close()


# ----------------------------------------------------------------------
# the cost channel and fingerprint short-circuit on the wire
# ----------------------------------------------------------------------
class TestCostOnTheWire:
    def test_put_cost_round_trips_to_store(self, server):
        backend = _connect(server)
        backend.put("ns", "cube", "k", np.arange(4), cost=0.125)
        address = next(iter(server.server.store._data))
        assert server.server.store._meta[address][4] == 0.125
        backend.close()

    def test_hit_promotes_cost_to_l1(self, server):
        first = _connect(server)
        first.put("ns", "result", "k", np.arange(4), cost=0.5)
        second = _connect(server)
        assert second.get("ns", "result", "k") is not None
        # The promoted L1 entry carries the server's cost metadata: its
        # utility term is cost/bytes, not the neutral cost-less 1.0.
        store = second._local._store("ns", "result")
        (meta,) = store._meta.values()
        assert meta[4] != 1.0
        first.close()
        second.close()


class TestFingerprintShortCircuit:
    def test_identical_reput_skips_the_round_trip(self, server):
        backend = _connect(server)
        value = np.arange(64, dtype=np.float64)
        backend.put("ns", "cube", "k", value)
        puts_before = server.server.store.puts
        backend.put("ns", "cube", "k", value)  # byte-identical payload
        assert server.server.store.puts == puts_before  # no wire write
        stats = backend.breaker_stats()
        assert stats["put_short_circuits"] == 1
        assert stats["put_bytes_saved"] > 0
        backend.close()

    def test_changed_payload_is_written(self, server):
        backend = _connect(server)
        backend.put("ns", "cube", "k", np.arange(4))
        backend.put("ns", "cube", "k", np.arange(5))  # different bytes
        assert server.server.store.puts == 2
        assert backend.breaker_stats()["put_short_circuits"] == 0
        backend.close()

    def test_server_miss_drops_the_fingerprint(self, server):
        """An evicted entry must be re-storable: the digest map may never
        short-circuit a put the server actually needs."""
        backend = _connect(server)
        value = np.arange(8)
        backend.put("ns", "cube", "k", value)
        server.server.store.clear()  # the server lost everything (eviction)
        backend._local.clear()
        assert backend.get("ns", "cube", "k") is None  # miss drops the digest
        backend.put("ns", "cube", "k", value)
        assert server.server.store.entry_count() == 1  # written again
        backend.close()

    def test_get_learns_the_fingerprint(self, server):
        first = _connect(server)
        value = np.arange(16, dtype=np.int64)
        first.put("ns", "cube", "k", value)
        second = _connect(server)
        np.testing.assert_array_equal(second.get("ns", "cube", "k"), value)
        puts_before = server.server.store.puts
        second.put("ns", "cube", "k", value)  # learned from the get
        assert server.server.store.puts == puts_before
        assert second.breaker_stats()["put_short_circuits"] == 1
        first.close()
        second.close()


# ----------------------------------------------------------------------
# the miss log and the warm op
# ----------------------------------------------------------------------
class TestMissLogAndWarmOp:
    def test_misses_are_recorded_per_namespace(self, server):
        backend = _connect(server)
        backend.get("ns-a", "cube", "k1")
        backend.get("ns-a", "cube", "k2")
        backend.get("ns-b", "cube", "k1")
        log = backend.miss_log()
        assert log["recorded"] == 3
        assert log["counts"] == {"ns-a": 2, "ns-b": 1}
        assert len(log["recent"]) == 3
        backend.close()

    def test_namespace_scope_and_clear(self, server):
        backend = _connect(server)
        backend.get("ns-a", "cube", "k")
        backend.get("ns-b", "cube", "k")
        scoped = backend.miss_log("ns-a")
        assert [entry[0] for entry in scoped["recent"]] == ["ns-a"]
        drained = backend.miss_log(clear=True)
        assert drained["recorded"] == 2
        assert backend.miss_log()["recent"] == []
        backend.close()

    def test_hits_are_not_recorded(self, server):
        backend = _connect(server)
        backend.put("ns", "cube", "k", 1.0)
        backend._local.clear()
        assert backend.get("ns", "cube", "k") == 1.0
        assert backend.miss_log()["recorded"] == 0
        backend.close()

    def test_recent_log_is_bounded_and_deduped(self):
        from repro.db.cache.server import MissLog

        log = MissLog(max_recent=4)
        for index in range(10):
            log.record("ns", "result", b"k%d" % index)
        assert len(log.snapshot()) == 4
        log.record("ns", "result", b"k9")  # re-miss: de-duped, refreshed
        assert len(log.snapshot()) == 4
        assert log.recorded == 11

    def test_stats_expose_miss_log_counter(self, server):
        backend = _connect(server)
        backend.get("ns", "cube", "nope")
        assert backend.server_stats()["miss_log_recorded"] == 1
        backend.close()

    def test_old_protocol_ops_still_answered(self, server):
        """Protocol v2 must keep serving a v1 client: the v1 op set (no cost
        field, no warm op) round-trips unchanged."""
        backend = _connect(server)
        response, _ = backend._request({"op": "ping"})
        assert response["protocol"] >= 2
        # A v1-style put header (no cost field) is accepted verbatim.
        from repro.db.cache.wire import encode_key, encode_payload, key_to_header

        encoded_key = encode_key("ns", "cube", "k")
        header = {
            "op": "put",
            "namespace": "ns",
            "region": "cube",
            "key": key_to_header(encoded_key),
        }
        response, _ = backend._request(header, encode_payload(1.5))
        assert response["stored"] is True
        assert server.server.store.entry_count("ns") == 1
        backend.close()
