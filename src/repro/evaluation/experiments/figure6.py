"""Figure 6: error of PM, R2T and LS as the global-sensitivity bound GS_Q grows.

R2T's noise and penalty both scale with ``log(GS_Q)``, and the noise of a
(hypothetical) global-sensitivity-calibrated mechanism scales with GS_Q
itself, while PM's noise depends only on the query's predicate domains.  The
paper sweeps GS_Q over {1e5, 1e6, 1e7, 1e8} on the counting queries and shows
PM flat while R2T and LS climb.

For R2T the bound is passed directly (it determines the number of truncation
candidates and their noise).  LS as implemented calibrates to the instance's
local sensitivity, which does not depend on a declared GS_Q; to expose the
dependence the paper plots, the driver scales the LS noise by the ratio of
the declared bound to the instance's fact-table size — i.e. it reports the
error LS would incur if its sensitivity bound had to be inflated to the
declared GS_Q (the behaviour of a conservative upper bound).  PM ignores the
bound entirely.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import (
    ExperimentConfig,
    build_ssb_database,
    cell_stream,
)
from repro.evaluation.parallel import StarCell, scheduler_for, resolve_database, run_star_cell
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.metrics import relative_error
from repro.dp.mechanisms import LaplaceMechanism
from repro.rng import spawn
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "GS_BOUNDS", "QUERIES"]

GS_BOUNDS = (1e5, 1e6, 1e7, 1e8)
QUERIES = ("Qc1", "Qc2", "Qc3", "Qc4")


def _inflated_ls_cell(config: ExperimentConfig, epsilon: float, cell: tuple) -> float:
    """LS with its sensitivity bound inflated to the declared GS_Q: plain
    Laplace output perturbation at scale GS_Q / ε (importable worker entry
    point; returns the mean relative error)."""
    query_name, gs_bound = cell
    database = resolve_database(build_ssb_database, (config,))
    exact = float(QueryExecutor(database).execute(ssb_query(query_name)))
    laplace = LaplaceMechanism(sensitivity=float(gs_bound), epsilon=epsilon)
    trial_rngs = spawn(cell_stream(config.seed, "figure6", query_name, gs_bound, "LS"),
                       config.trials)
    errors = [
        relative_error(exact, laplace.randomise(exact, rng=trial_rng))
        for trial_rng in trial_rngs
    ]
    return float(sum(errors) / len(errors))


def run(
    config: Optional[ExperimentConfig] = None,
    gs_bounds: Sequence[float] = GS_BOUNDS,
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
) -> ExperimentResult:
    """Regenerate Figure 6 (error vs the declared global-sensitivity bound)."""
    config = config or ExperimentConfig()
    database = resolve_database(build_ssb_database, (config,))
    executor = QueryExecutor(database)
    for query_name in query_names:  # warm exact answers before the pool forks
        executor.execute(ssb_query(query_name))
    result = ExperimentResult(
        title="Figure 6: error level of PM, R2T, LS for different GS_Q",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    scheduler = scheduler_for(config)
    # PM's noise is independent of GS_Q, so it is evaluated once per query
    # and the same series is reported at every bound (a flat line, as in the
    # paper's figure).  R2T re-runs per bound: the bound controls its
    # candidate ladder and per-candidate noise.
    pm_cells = [
        StarCell(
            mechanism="PM",
            epsilon=epsilon,
            query_builder=ssb_query,
            query_args=(query_name,),
            database_builder=build_ssb_database,
            database_args=(config,),
            stream=("figure6", query_name, "PM"),
        )
        for query_name in query_names
    ]
    r2t_cells = [
        StarCell(
            mechanism="R2T",
            epsilon=epsilon,
            query_builder=ssb_query,
            query_args=(query_name,),
            database_builder=build_ssb_database,
            database_args=(config,),
            stream=("figure6", query_name, gs_bound, "R2T"),
            mechanism_kwargs=(("global_sensitivity_bound", gs_bound),),
        )
        for query_name in query_names
        for gs_bound in gs_bounds
    ]
    evaluations = scheduler.map(partial(run_star_cell, config), pm_cells + r2t_cells)
    pm_evals = dict(zip(query_names, evaluations[: len(pm_cells)]))
    r2t_evals = dict(
        zip(
            ((c.query_args[0], c.mechanism_kwargs[0][1]) for c in r2t_cells),
            evaluations[len(pm_cells) :],
        )
    )
    # The inflated-LS cells are a handful of Laplace draws each — not worth a
    # pool; their per-cell streams make them identical for any ``jobs``.
    ls_errors = {
        cell: _inflated_ls_cell(config, epsilon, cell)
        for cell in ((query_name, gs_bound) for query_name in query_names for gs_bound in gs_bounds)
    }

    for query_name in query_names:
        for gs_bound in gs_bounds:
            result.add_row(
                query=query_name, gs_bound=gs_bound, mechanism="PM",
                relative_error_pct=pm_evals[query_name].mean_relative_error,
            )
            result.add_row(
                query=query_name, gs_bound=gs_bound, mechanism="R2T",
                relative_error_pct=r2t_evals[(query_name, gs_bound)].mean_relative_error,
            )
            result.add_row(
                query=query_name, gs_bound=gs_bound, mechanism="LS",
                relative_error_pct=ls_errors[(query_name, gs_bound)],
            )
    return result
