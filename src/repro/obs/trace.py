"""Request tracing: contextvar spans, JSONL export, wire propagation.

A *trace* is one logical request; a *span* is one timed stage inside it.
Spans form a tree: the serving request is the root, planning / execution /
engine kernels / cache round-trips are descendants.  The current span rides
a :class:`contextvars.ContextVar`, so propagation is automatic through
ordinary calls and explicit at the three places work changes context:

* **threads** — the serving server copies its context into the executor
  thread (``contextvars.copy_context().run``);
* **forked workers** — the scheduler ships :func:`wire_context` with each
  cell and the worker re-parents via :func:`resume_span` (the tracer module
  global is fork-inherited, so worker spans land in the same JSONL file);
* **the cache wire** — the remote backend attaches :func:`wire_context` as
  an optional ``trace`` header field (protocol-v2-compatible: servers that
  predate it ignore unknown fields) and the cache server records its
  handling as a child span via :func:`record_span`.

Tracing is **off by default** and free when off: every entry point checks
the module-global tracer first and yields without allocating.  Turning it
on (``--trace-path``) must never change computed answers — spans only
*observe* timings the code already takes; the parity suites pin
byte-identical output with tracing on and off.

Each completed span is one JSON line::

    {"trace_id": ..., "span_id": ..., "parent_id": ..., "name": ...,
     "start_s": <epoch>, "elapsed_s": ..., "pid": ..., ...attrs,
     "stages": {"child-name": seconds, ...}}   # rolled-up child wall-clock

``python -m repro.obs.summarize`` turns a trace file into per-stage latency
tables and the critical path (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "add_to_span",
    "annotate",
    "current_span",
    "record_span",
    "record_timed",
    "resume_span",
    "set_active_tracer",
    "span",
    "trace_scope",
    "wire_context",
]


def _new_id() -> str:
    return os.urandom(8).hex()


class _JsonlWriter:
    """Append-only JSONL sink that survives forks.

    In the owning process, serialization and file IO run on a dedicated
    writer thread: the instrumented request path only enqueues the record
    dict, which is what keeps traced hot paths within the overhead budget.
    The thread's handle is line-buffered, so every record reaches the OS
    as one whole-line ``O_APPEND`` write.

    Forked workers cannot rely on that thread (it does not survive the
    fork, and a worker may exit via ``os._exit``, which skips buffered-file
    finalization), so a write from any pid other than the creator's goes
    through a synchronous append-and-flush on a per-process handle —
    single-line ``O_APPEND`` writes keep concurrent processes from
    corrupting each other's records.
    """

    #: Seconds between writer-thread drains.  Spans buffer in memory for at
    #: most this long before reaching the file (``close()`` drains fully).
    FLUSH_INTERVAL_S = 0.25

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = None
        self._pid: Optional[int] = None
        self._origin_pid = os.getpid()
        # Create/truncate up front so an empty trace run leaves an empty
        # file rather than nothing (summarize can tell "no spans" from
        # "wrong path").
        with open(self.path, "w", encoding="utf-8"):
            pass
        self._buffer: list = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-trace-writer", daemon=True
        )
        self._thread.start()

    def _take_buffered(self) -> list:
        with self._lock:
            items, self._buffer = self._buffer, []
        return items

    def _drain_loop(self) -> None:
        # Line buffering (``buffering=1``) flushes exactly at each newline,
        # so every record is one raw append even with other processes
        # writing the same file.
        with open(self.path, "a", encoding="utf-8", buffering=1) as handle:
            while True:
                stopped = self._stop.wait(self.FLUSH_INTERVAL_S)
                for item in self._take_buffered():
                    if isinstance(item, tuple):  # a finished Span + elapsed
                        item = item[0]._record(item[1])
                    handle.write(
                        json.dumps(item, separators=(",", ":"), sort_keys=True) + "\n"
                    )
                if stopped:
                    return

    def write(self, record: dict) -> None:
        if os.getpid() == self._origin_pid:
            with self._lock:
                self._buffer.append(record)
            return
        self._write_sync(record)

    def write_span(self, span: "Span", elapsed_s: float) -> None:
        """Buffer a finished span; the writer thread builds its record.

        This is the traced request path, so the caller pays one list append
        under an uncontended lock — no serialization, no IO, and (unlike a
        queue) no writer-thread wakeup; the writer polls on its own clock
        and drains in bulk.  Safe because a span is immutable once its
        ``with`` block exits.
        """
        if os.getpid() == self._origin_pid:
            with self._lock:
                self._buffer.append((span, elapsed_s))
            return
        self._write_sync(span._record(elapsed_s))

    def _write_sync(self, record: dict) -> None:
        # Forked worker: the writer thread did not survive the fork, so
        # serialize and flush inline.
        line = json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        with self._lock:
            pid = os.getpid()
            if self._handle is None or self._pid != pid:
                self._handle = open(self.path, "a", encoding="utf-8")
                self._pid = pid
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        if os.getpid() == self._origin_pid and self._thread.is_alive():
            self._stop.set()
            self._thread.join(timeout=10.0)
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                self._handle.close()
            self._handle = None


class Tracer:
    """Owns the JSONL sink and counts what it wrote."""

    def __init__(self, path: str):
        self._writer = _JsonlWriter(path)
        self.path = self._writer.path
        self.spans_written = 0

    def record(self, record: dict) -> None:
        self.spans_written += 1
        self._writer.write(record)

    def record_finished(self, span: "Span", elapsed_s: float) -> None:
        """Record a completed :class:`Span` (serialization deferred to the
        writer thread — the cheap path for traced hot code)."""
        self.spans_written += 1
        self._writer.write_span(span, elapsed_s)

    def close(self) -> None:
        self._writer.close()


class Span:
    """One timed stage of a trace; ``attrs`` may be mutated inside the block."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name",
                 "start_s", "_began", "attrs", "stages")

    def __init__(self, name: str, trace_id: str, parent_id: Optional[str],
                 attrs: Optional[dict] = None):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_s = time.time()
        self._began = time.perf_counter()
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.stages: dict[str, float] = {}

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def add(self, key: str, amount: float = 1) -> None:
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def _record(self, elapsed_s: float) -> dict:
        record = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "elapsed_s": round(elapsed_s, 9),
            "pid": os.getpid(),
        }
        record.update(self.attrs)
        if self.stages:
            record["stages"] = {k: round(v, 9) for k, v in self.stages.items()}
        return record


_CURRENT: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_obs_span", default=None
)

#: The process-wide tracer; ``None`` means tracing is off (the default).
#: Module-global on purpose: fork workers inherit it, so one ``--trace-path``
#: collects the whole pool's spans.
_TRACER: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _TRACER


def set_active_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with ``None``, remove) the process-wide tracer; returns
    the previous one."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


@contextmanager
def trace_scope(path: Optional[str]) -> Iterator[Optional[Tracer]]:
    """``with trace_scope(path):`` — trace the block to ``path`` (JSONL),
    restoring the previous tracer (and closing this one) on exit.  A
    ``None`` path yields without installing anything, so callers can wrap
    unconditionally."""
    if path is None:
        yield None
        return
    tracer = Tracer(path)
    previous = set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(previous)
        tracer.close()


def current_span() -> Optional[Span]:
    return _CURRENT.get()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Open a child span of the current one (a new trace if none).

    No-op — ``yield None`` with no allocation — when tracing is off, which
    is what keeps instrumented hot paths within the overhead budget.
    """
    tracer = _TRACER
    if tracer is None:
        yield None
        return
    parent = _CURRENT.get()
    current = Span(
        name,
        trace_id=parent.trace_id if parent is not None else _new_id(),
        parent_id=parent.span_id if parent is not None else None,
        attrs=attrs,
    )
    token = _CURRENT.set(current)
    try:
        yield current
    finally:
        _CURRENT.reset(token)
        elapsed = time.perf_counter() - current._began
        if parent is not None:
            parent.stages[name] = parent.stages.get(name, 0.0) + elapsed
        tracer.record_finished(current, elapsed)


@contextmanager
def resume_span(context: Optional[dict], name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Open a span whose parent came over a process/wire boundary.

    ``context`` is a :func:`wire_context` dict captured on the other side;
    when it is ``None`` (tracing was off there) or no tracer is installed
    here, the block runs untraced.
    """
    tracer = _TRACER
    if tracer is None or not context:
        yield None
        return
    current = Span(
        name,
        trace_id=str(context.get("trace_id", _new_id())),
        parent_id=context.get("span_id"),
        attrs=attrs,
    )
    token = _CURRENT.set(current)
    try:
        yield current
    finally:
        _CURRENT.reset(token)
        tracer.record_finished(current, time.perf_counter() - current._began)


def wire_context() -> Optional[dict]:
    """The current span's identity as a JSON-safe dict, for shipping to a
    worker process or a cache server (``None`` when not tracing)."""
    current = _CURRENT.get() if _TRACER is not None else None
    if current is None:
        return None
    return {"trace_id": current.trace_id, "span_id": current.span_id}


def record_timed(name: str, elapsed_s: float, **attrs: Any) -> None:
    """Record an already-measured duration as a child span of the current
    one — zero extra clock reads, used for timings the code takes anyway
    (engine kernels measure recompute cost for the cache's GDSF policy)."""
    tracer = _TRACER
    if tracer is None:
        return
    parent = _CURRENT.get()
    record = {
        "trace_id": parent.trace_id if parent is not None else _new_id(),
        "span_id": _new_id(),
        "parent_id": parent.span_id if parent is not None else None,
        "name": name,
        "start_s": round(time.time() - elapsed_s, 6),
        "elapsed_s": round(elapsed_s, 9),
        "pid": os.getpid(),
    }
    record.update(attrs)
    if parent is not None:
        parent.stages[name] = parent.stages.get(name, 0.0) + elapsed_s
    tracer.record(record)


def record_span(name: str, context: Optional[dict], elapsed_s: float, **attrs: Any) -> None:
    """Record a span parented by a wire ``trace`` header (cache server side).

    No contextvar involvement: the server measures its own handling time
    and links it under the client's span so the merged JSONL reads as one
    connected trace.  No-op without a tracer or without a context.
    """
    tracer = _TRACER
    if tracer is None or not context:
        return
    record = {
        "trace_id": str(context.get("trace_id", "")),
        "span_id": _new_id(),
        "parent_id": context.get("span_id"),
        "name": name,
        "start_s": round(time.time() - elapsed_s, 6),
        "elapsed_s": round(elapsed_s, 9),
        "pid": os.getpid(),
    }
    record.update(attrs)
    tracer.record(record)


def annotate(**attrs: Any) -> None:
    """Merge attributes into the current span (no-op when not tracing)."""
    if _TRACER is None:
        return
    current = _CURRENT.get()
    if current is not None:
        current.attrs.update(attrs)


def add_to_span(key: str, amount: float = 1) -> None:
    """Increment a numeric attribute on the current span (no-op when not
    tracing) — how the engine folds cache hit/miss counts into whichever
    request span is running."""
    if _TRACER is None:
        return
    current = _CURRENT.get()
    if current is not None:
        current.attrs[key] = current.attrs.get(key, 0) + amount
