"""Graphs as relational edge tables.

The k-star counting queries of the paper are SQL self-joins over an
``Edge(from_id, to_id)`` table (Appendix A.2).  :class:`Graph` stores an
undirected simple graph as a numpy edge list, exposes the degree sequence the
counting algorithms work from, and can materialise the relational edge-table
view so the self-join formulation can be tested against the degree-based one.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.db.table import Column, Table
from repro.exceptions import DataGenerationError

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph over nodes ``0 .. num_nodes - 1``."""

    def __init__(self, num_nodes: int, edges: np.ndarray, name: str = "graph"):
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
            raise DataGenerationError("edges must be an (m, 2) array")
        if num_nodes <= 0:
            raise DataGenerationError("a graph needs at least one node")
        if edges.size:
            if edges.min() < 0 or edges.max() >= num_nodes:
                raise DataGenerationError(
                    f"edge endpoints must lie in [0, {num_nodes}), got "
                    f"[{edges.min()}, {edges.max()}]"
                )
        self.name = name
        self.num_nodes = int(num_nodes)
        self.edges = self._canonicalise(edges)

    # ------------------------------------------------------------------
    @staticmethod
    def _canonicalise(edges: np.ndarray) -> np.ndarray:
        """Drop self-loops and duplicate edges; store each edge as (min, max)."""
        if edges.size == 0:
            return edges.reshape(0, 2)
        low = np.minimum(edges[:, 0], edges[:, 1])
        high = np.maximum(edges[:, 0], edges[:, 1])
        keep = low != high
        stacked = np.stack([low[keep], high[keep]], axis=1)
        return np.unique(stacked, axis=0)

    @classmethod
    def from_edge_list(
        cls, edges: Iterable[tuple[int, int]], num_nodes: Optional[int] = None, name: str = "graph"
    ) -> "Graph":
        array = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
        if num_nodes is None:
            num_nodes = int(array.max()) + 1 if array.size else 1
        return cls(num_nodes=num_nodes, edges=array, name=name)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    def degrees(self) -> np.ndarray:
        """Degree of every node (length ``num_nodes``)."""
        counts = np.zeros(self.num_nodes, dtype=np.int64)
        if self.edges.size:
            counts += np.bincount(self.edges[:, 0], minlength=self.num_nodes)
            counts += np.bincount(self.edges[:, 1], minlength=self.num_nodes)
        return counts

    def max_degree(self) -> int:
        degrees = self.degrees()
        return int(degrees.max()) if degrees.size else 0

    def adjacency_lists(self) -> list[np.ndarray]:
        """Neighbour arrays per node (used by the join-based reference count)."""
        neighbours: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            neighbours[int(u)].append(int(v))
            neighbours[int(v)].append(int(u))
        return [np.asarray(sorted(adj), dtype=np.int64) for adj in neighbours]

    # ------------------------------------------------------------------
    def truncate_degrees(self, threshold: int, rng: Optional[np.random.Generator] = None) -> "Graph":
        """Return a subgraph where every node keeps at most ``threshold`` edges.

        This is the naive truncation step of the TM baseline: edges incident
        to over-threshold nodes are dropped (uniformly at random when an rng
        is supplied, deterministically by edge order otherwise) until every
        degree is at most τ.
        """
        if threshold < 0:
            raise DataGenerationError("truncation threshold must be non-negative")
        order = np.arange(self.num_edges)
        if rng is not None:
            order = rng.permutation(self.num_edges)
        remaining = np.zeros(self.num_nodes, dtype=np.int64)
        keep = np.zeros(self.num_edges, dtype=bool)
        for index in order:
            u, v = self.edges[index]
            if remaining[u] < threshold and remaining[v] < threshold:
                keep[index] = True
                remaining[u] += 1
                remaining[v] += 1
        return Graph(self.num_nodes, self.edges[keep], name=f"{self.name}|trunc{threshold}")

    # ------------------------------------------------------------------
    def as_edge_table(self, symmetric: bool = True) -> Table:
        """The relational ``Edge(from_id, to_id)`` view of the graph.

        With ``symmetric=True`` every undirected edge produces both directed
        rows, matching how the SQL self-join queries of the appendix count
        stars around each centre node.
        """
        if symmetric and self.edges.size:
            from_ids = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
            to_ids = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        else:
            from_ids = self.edges[:, 0] if self.edges.size else np.zeros(0, dtype=np.int64)
            to_ids = self.edges[:, 1] if self.edges.size else np.zeros(0, dtype=np.int64)
        return Table(
            "Edge",
            [
                Column(name="from_id", values=from_ids),
                Column(name="to_id", values=to_ids),
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"
