"""The cross-worker shared cache backend.

A two-tier design:

* **L1** — a private :class:`~repro.db.cache.local.LocalCacheBackend` per
  process, so hot entries cost a dict lookup, exactly like the local backend.
* **L2** — a ``multiprocessing.Manager`` dict living in a dedicated server
  process.  Entries in :data:`~repro.db.cache.backend.SHARED_REGIONS`
  (selection masks, contributions, data cubes, exact answers) are written
  through to L2 and, on an L1 miss, fetched from it — which is how pool
  workers share work *with each other* after fork, not just inherit the
  parent's pre-fork state copy-on-write.

Lifecycle: the backend (and its manager process) must be created in the
parent **before** the worker pool forks, so every worker inherits the proxy
and the shared counters.  The owning process shuts the manager down via
:meth:`close` (the evaluation session does this after closing the pool).
Cross-process counters are fork-inherited ``multiprocessing.Value`` slots, so
hits scored inside workers are visible to the parent's ``stats()`` — that is
what the ``--cache-stats`` report and the acceptance check ("non-zero
cross-worker hit counters") read.

If the manager becomes unreachable (e.g. it was shut down while a stray
process still holds a proxy), the backend degrades to L1-only instead of
failing: sharing is an optimisation, never a correctness requirement.

Consistency: every shared value is a pure function of its content-derived
``(namespace, region, key)`` address, so a worker can never observe a value
different from the one it would have computed itself — results stay
bit-identical to the local backend and to serial runs.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from typing import Any, Hashable, Optional

import numpy as np

from repro.db.cache.backend import (
    DEFAULT_EVICTION_POLICY,
    SHARED_REGIONS,
    CacheStats,
    telemetry_from_stats,
    value_nbytes,
)
from repro.db.cache.local import LocalCacheBackend

__all__ = ["SharedMemoryCacheBackend"]

#: Exceptions that mean "the manager process is gone"; the backend degrades
#: to its local tier when it sees one.
_PROXY_ERRORS = (
    EOFError,
    BrokenPipeError,
    ConnectionError,
    FileNotFoundError,
    AssertionError,  # raised by a proxy used after manager shutdown
    pickle.PicklingError,
)


def _freeze_value(value: Any) -> Any:
    """Mark arrays fetched from the shared tier read-only (they arrive as
    fresh writable copies from the pickle round-trip)."""
    if isinstance(value, np.ndarray):
        value.flags.writeable = False
    elif isinstance(value, tuple):
        for member in value:
            if isinstance(member, np.ndarray):
                member.flags.writeable = False
    return value


class SharedMemoryCacheBackend:
    """Two-tier cache backend: in-process LRU over a Manager-held shared dict."""

    name = "shared"

    def __init__(
        self,
        max_entries: int = 192,
        max_shared_entries: int = 4096,
        shared_regions: frozenset[str] = SHARED_REGIONS,
        policy: str = DEFAULT_EVICTION_POLICY,
        max_bytes: Optional[int] = None,
        max_shared_bytes: Optional[int] = None,
    ):
        self._local = LocalCacheBackend(max_entries, policy=policy, max_bytes=max_bytes)
        self.max_entries = self._local.max_entries
        self.max_shared_entries = int(max_shared_entries)
        self.max_shared_bytes = None if max_shared_bytes is None else int(max_shared_bytes)
        self.policy = self._local.policy
        self.shared_regions = frozenset(shared_regions)
        self._owner_pid = os.getpid()
        self._broken = False
        self._manager = multiprocessing.Manager()
        self._store = self._manager.dict()
        #: Parallel metadata tier: key -> (cost | None, nbytes, access seq).
        #: Values stay raw in ``_store``; eviction decisions read only this.
        self._meta = self._manager.dict()
        self._evict_lock = multiprocessing.Lock()
        # Fork-inherited atomic counters: workers increment, the parent reads.
        self._shared_hits = multiprocessing.Value("Q", 0)
        self._shared_misses = multiprocessing.Value("Q", 0)
        self._shared_puts = multiprocessing.Value("Q", 0)
        self._shared_evictions = multiprocessing.Value("Q", 0)
        self._shared_bytes = multiprocessing.Value("Q", 0)
        self._shared_seq = multiprocessing.Value("Q", 0)

    # ------------------------------------------------------------------
    def _count(self, counter) -> None:
        with counter.get_lock():
            counter.value += 1

    def _next_seq(self) -> int:
        with self._shared_seq.get_lock():
            self._shared_seq.value += 1
            return self._shared_seq.value

    def _add_bytes(self, delta: int) -> None:
        with self._shared_bytes.get_lock():
            self._shared_bytes.value = max(0, self._shared_bytes.value + delta)

    def get(self, namespace: str, region: str, key: Hashable) -> Any:
        value = self._local.get(namespace, region, key)
        if value is not None or region not in self.shared_regions or self._broken:
            return value
        address = (namespace, region, key)
        try:
            value = self._store[address]
        except KeyError:
            self._count(self._shared_misses)
            return None
        except _PROXY_ERRORS:
            self._broken = True
            return None
        cost = None
        try:
            meta = self._meta.get(address)
            if meta is not None:
                cost = meta[0]
                # Freshen the access sequence so recency survives in L2.
                self._meta[address] = (meta[0], meta[1], self._next_seq())
        except _PROXY_ERRORS:
            self._broken = True
        self._count(self._shared_hits)
        value = _freeze_value(value)
        # Promote to L1 quietly: a promotion is not a new artefact, so it
        # must not inflate the put counter.
        self._local._put(namespace, region, key, value, cost)
        return value

    def put(
        self,
        namespace: str,
        region: str,
        key: Hashable,
        value: Any,
        cost: Optional[float] = None,
    ) -> None:
        self._local.put(namespace, region, key, value, cost)
        if region not in self.shared_regions or self._broken:
            return
        address = (namespace, region, key)
        nbytes = value_nbytes(value)
        if self.max_shared_bytes is not None and nbytes > self.max_shared_bytes:
            return  # larger than the whole L2 budget: L1-only
        try:
            previous = self._meta.get(address)
            self._store[address] = value
            self._meta[address] = (cost, nbytes, self._next_seq())
            self._add_bytes(nbytes - (previous[1] if previous else 0))
            self._count(self._shared_puts)
            if len(self._store) > self.max_shared_entries or (
                self.max_shared_bytes is not None
                and self._shared_bytes.value > self.max_shared_bytes
            ):
                self._evict_shared()
        except _PROXY_ERRORS:
            self._broken = True

    def _utility(self, meta) -> tuple[float, int]:
        """Sort key of an L2 entry: lowest evicts first, ties on age.

        L2 has no per-entry frequency (that would cost a manager round-trip
        per hit); instead the utility is the insertion-time term
        ``cost / bytes`` with recency as tie-break — under ``policy="lru"``
        the term collapses to a constant, leaving pure access order.
        """
        cost, nbytes, seq = meta
        if self.policy == "lru" or cost is None:
            return (0.0, seq)
        return (max(float(cost), 0.0) / max(int(nbytes), 1), seq)

    def _evict_shared(self) -> None:
        """Drop the lowest-utility shared entries down to both bounds
        (approximate: concurrent writers may briefly overshoot; the lock only
        prevents two processes evicting the same keys)."""
        with self._evict_lock:
            meta = dict(self._meta)
            overflow = len(self._store) - self.max_shared_entries
            stored_bytes = self._shared_bytes.value
            byte_overflow = (
                stored_bytes - self.max_shared_bytes if self.max_shared_bytes is not None else 0
            )
            if overflow <= 0 and byte_overflow <= 0:
                return
            victims = sorted(self._store.keys(), key=lambda k: self._utility(meta.get(k, (None, 0, 0))))
            evicted_entries = 0
            evicted_bytes = 0
            for stale_key in victims:
                if evicted_entries >= overflow and evicted_bytes >= byte_overflow:
                    break
                if self._store.pop(stale_key, None) is not None:
                    self._count(self._shared_evictions)
                    evicted_entries += 1
                    stale_meta = meta.get(stale_key)
                    nbytes = int(stale_meta[1]) if stale_meta else 0
                    evicted_bytes += nbytes
                    self._add_bytes(-nbytes)
                self._meta.pop(stale_key, None)

    def release(self, namespace: str) -> None:
        """Drop the L1 entries only: the manager tier may still be serving
        other processes whose copy of the same logical database is alive."""
        self._local.clear(namespace)

    def clear(self, namespace: Optional[str] = None) -> None:
        self._local.clear(namespace)
        if namespace is None:
            self.reset_stats()  # full clear == fresh start, counters included
        if self._broken:
            return
        try:
            if namespace is None:
                self._store.clear()
                self._meta.clear()
                with self._shared_bytes.get_lock():
                    self._shared_bytes.value = 0
            else:
                for stored in list(self._store.keys()):
                    if stored[0] == namespace:
                        self._store.pop(stored, None)
                        dropped = self._meta.pop(stored, None)
                        if dropped is not None:
                            self._add_bytes(-int(dropped[1]))
        except _PROXY_ERRORS:
            self._broken = True

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        stats = self._local.stats()
        stats.shared_hits = int(self._shared_hits.value)
        stats.shared_misses = int(self._shared_misses.value)
        stats.shared_puts = int(self._shared_puts.value)
        stats.shared_evictions = int(self._shared_evictions.value)
        return stats

    def reset_stats(self) -> None:
        self._local.reset_stats()
        for counter in (
            self._shared_hits,
            self._shared_misses,
            self._shared_puts,
            self._shared_evictions,
        ):
            with counter.get_lock():
                counter.value = 0

    def byte_count(self, namespace: Optional[str] = None) -> int:
        """L1 byte estimate plus (for the full count) the L2 gauge."""
        count = self._local.byte_count(namespace)
        if namespace is None and not self._broken:
            count += int(self._shared_bytes.value)
        return count

    def entry_count(self, namespace: Optional[str] = None) -> int:
        count = self._local.entry_count(namespace)
        if self._broken:
            return count
        try:
            if namespace is None:
                return count + len(self._store)
            return count + sum(1 for stored in self._store.keys() if stored[0] == namespace)
        except _PROXY_ERRORS:
            self._broken = True
            return count

    def telemetry_snapshot(self) -> dict:
        """Both tiers' counters in the unified telemetry schema
        (``stats()`` remains the legacy-shaped compatibility surface)."""
        return telemetry_from_stats(
            self.stats(),
            self.name,
            gauges={
                "entries": self.entry_count(),
                "bytes": self.byte_count(),
                "shared_bytes": int(self._shared_bytes.value) if not self._broken else 0,
            },
            subsystem_extra={
                "policy": self._local.policy,
                "max_entries": self._local.max_entries,
                "max_shared_entries": self.max_shared_entries,
                "degraded": self._broken,
            },
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the manager process down (owner process only; workers that
        inherited the backend through fork must never tear it down)."""
        self._broken = True
        if os.getpid() != self._owner_pid:
            return
        try:
            self._manager.shutdown()
        except Exception:  # pragma: no cover - already dead
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "broken" if self._broken else "live"
        return (
            f"SharedMemoryCacheBackend({state}, max_entries={self.max_entries}, "
            f"max_shared_entries={self.max_shared_entries}, {self.stats().summary()})"
        )
