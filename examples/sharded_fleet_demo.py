"""Sharded-fleet smoke: a router, two serving shards, two cache shards.

The full topology of docs/SERVING.md's "Sharded fleet" section, end to end
(CI runs this next to the serving and fault-tolerance smokes):

1. **Topology up** — two cache shard servers, two serving shard processes
   (``--cache-url shard1,shard2 --cache-replicas 2``: every cache entry on
   both shards), one fleet router process fronting the serving shards.
2. **Routed answers are the shard's answers** — the same queries through
   the router and directly against each analyst's home shard are
   byte-identical, and repeats are deterministic.
3. **Kill a cache shard mid-run** — answers do not move (replica reads and
   recompute absorb the loss), the survivors' breakers trip and are visible
   through the router's aggregated health; restart the shard on the same
   port and the breaker-recovery trace shows the probe closing it again.

Usage::

    PYTHONPATH=src python examples/sharded_fleet_demo.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from repro.db.cache.server import CacheServerThread
from repro.serving import ServingClient

DEMO_SPEC = {
    "name": "demo",
    "kind": "ssb",
    "scale_factor": 1.0,
    "rows_per_scale_factor": 2000,
    "seed": 5,
}

QUERIES = ("Qc1", "Qs2", "Qc3")
ANALYSTS = ("alice", "bob", "carol", "dave")


def _spawn_serving_shard(cache_urls: str) -> tuple[subprocess.Popen, int]:
    """One serving shard on an ephemeral port, caching through the shard list."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro.serving",
            "--port",
            "0",
            "--workers",
            "2",
            "--analyst-epsilon",
            "1000.0",
            "--cache-backend",
            "remote",
            "--cache-url",
            cache_urls,
            "--cache-replicas",
            "2",
            # A one-entry L1: the demo has three distinct cache keys, so any
            # L1 that can hold all of them would absorb every repeat query
            # in-process and the remote shards (and, in step 3, the failover
            # ladder) would never be exercised.
            "--cache-size",
            "1",
            "--register",
            json.dumps(DEMO_SPEC),
        ],
        env=os.environ.copy(),
        stdout=subprocess.PIPE,
        text=True,
    )
    return process, _await_banner(process, "serving on ")


def _spawn_router(shards: list[str]) -> tuple[subprocess.Popen, int]:
    argv = [sys.executable, "-u", "-m", "repro.serving.fleet", "--port", "0"]
    for shard in shards:
        argv += ["--shard", shard]
    process = subprocess.Popen(
        argv, env=os.environ.copy(), stdout=subprocess.PIPE, text=True
    )
    return process, _await_banner(process, "fleet router on ")


def _await_banner(process: subprocess.Popen, prefix: str) -> int:
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(f"process exited at startup ({process.returncode})")
        line = process.stdout.readline()
        if not line:
            time.sleep(0.05)
            continue
        print(f"    {line.rstrip()}")
        if line.startswith(prefix):
            address = line.removeprefix(prefix).split(" ", 1)[0]
            return int(address.rstrip(":").rsplit(":", 1)[1])
    process.kill()
    raise RuntimeError(f"process did not print {prefix!r} within 120s")


def _query_answers(port: int, analyst: str) -> dict[str, str]:
    """One answer blob per named query, for byte comparison."""
    answers = {}
    with ServingClient(port=port) as client:
        for index, query in enumerate(QUERIES):
            payload = client.query(
                "demo", "PM", round(0.1 + 0.1 * index, 2), query=query, analyst=analyst
            )
            answers[query] = json.dumps(payload["answers"])
    return answers


def main() -> int:
    cache_a = CacheServerThread(max_entries=4096).start()
    cache_b = CacheServerThread(max_entries=4096).start()
    cache_urls = f"127.0.0.1:{cache_a.server.port},127.0.0.1:{cache_b.server.port}"
    shard_1, port_1 = _spawn_serving_shard(cache_urls)
    shard_2, port_2 = _spawn_serving_shard(cache_urls)
    shard_labels = [f"127.0.0.1:{port_1}", f"127.0.0.1:{port_2}"]
    router, router_port = _spawn_router(shard_labels)
    print(
        f"[1/3] topology up: router :{router_port} -> serving "
        f"{shard_labels} -> cache shards [{cache_urls}] (1 replica)"
    )
    try:
        with ServingClient(port=router_port) as client:
            fleet = client.ping()["fleet"]
            if sorted(fleet["shards"]) != sorted(shard_labels):
                print(f"router fronts the wrong shards: {fleet}", file=sys.stderr)
                return 1

        # --- routed answers == each home shard's own answers -------------
        routed = {analyst: _query_answers(router_port, analyst) for analyst in ANALYSTS}
        again = {analyst: _query_answers(router_port, analyst) for analyst in ANALYSTS}
        if routed != again:
            print("repeat queries through the router changed bytes", file=sys.stderr)
            return 1
        direct = {}
        for shard_port in (port_1, port_2):
            for analyst in ANALYSTS:
                direct[analyst] = _query_answers(shard_port, analyst)
                break  # answers are analyst-independent; one shard suffices
            break
        for analyst in ANALYSTS:
            if routed[analyst] != routed[ANALYSTS[0]]:
                print("answers depended on the analyst", file=sys.stderr)
                return 1
        if routed[ANALYSTS[0]] != direct[ANALYSTS[0]]:
            print("routed answers differ from a direct shard's", file=sys.stderr)
            return 1
        with ServingClient(port=router_port) as client:
            per_shard = client.stats()["router"]["routed_per_shard"]
        print(
            f"[2/3] parity: routed == direct == repeat for {len(ANALYSTS)} analysts "
            f"x {len(QUERIES)} queries (routed per shard: {per_shard})"
        )

        # --- kill one cache shard mid-run ---------------------------------
        dead_port = cache_a.server.port
        cache_a.stop()
        after_kill = {
            analyst: _query_answers(router_port, analyst) for analyst in ANALYSTS
        }
        if after_kill != routed:
            print("answers moved after a cache shard died", file=sys.stderr)
            return 1
        with ServingClient(port=router_port) as client:
            health = client.health()
        trips = 0
        for label, shard_health in health["shards"].items():
            breaker = (shard_health.get("cache") or {}).get("breaker") or {}
            trips += int(breaker.get("trips", 0))
        if trips < 1:
            print(f"no breaker trip recorded after the kill: {health}", file=sys.stderr)
            return 1

        # Restart the cache shard on the same port; the breakers probe back.
        cache_a = CacheServerThread(port=dead_port, max_entries=4096).start()
        time.sleep(2.2)  # past the default breaker_reset_timeout (2s)
        recovered = {
            analyst: _query_answers(router_port, analyst) for analyst in ANALYSTS
        }
        if recovered != routed:
            print("answers moved after the cache shard came back", file=sys.stderr)
            return 1
        with ServingClient(port=router_port) as client:
            health = client.health()
        open_shards = []
        for label, shard_health in health["shards"].items():
            breaker = (shard_health.get("cache") or {}).get("breaker") or {}
            open_shards.extend(breaker.get("open_shards") or [])
        if open_shards:
            print(f"breakers still open after recovery: {health}", file=sys.stderr)
            return 1
        print(
            f"[3/3] cache shard killed and restarted: answers byte-identical "
            f"throughout ({trips} breaker trip(s), all breakers closed again)"
        )
        return 0
    finally:
        for process in (router, shard_1, shard_2):
            process.terminate()
        for process in (router, shard_1, shard_2):
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
        for cache in (cache_a, cache_b):
            try:
                cache.stop()
            except RuntimeError:
                pass


if __name__ == "__main__":
    sys.exit(main())
