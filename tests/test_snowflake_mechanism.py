"""Tests for PM on snowflake queries (Section 5.3)."""

import pytest

from repro.core.snowflake import SnowflakePredicateMechanism
from repro.db.executor import QueryExecutor
from repro.db.predicates import PointPredicate
from repro.db.query import StarJoinQuery
from repro.exceptions import QueryError
from repro.workloads.tpch_queries import snowflake_queries, tpch_count_query, tpch_sum_query


class TestSnowflakePM:
    def test_answers_count_query(self, snowflake_small):
        mechanism = SnowflakePredicateMechanism(epsilon=1.0, rng=1)
        answer = mechanism.answer(snowflake_small, tpch_count_query())
        assert answer.value >= 0.0

    def test_answers_sum_query(self, snowflake_small):
        mechanism = SnowflakePredicateMechanism(epsilon=1.0, rng=2)
        answer = mechanism.answer(snowflake_small, tpch_sum_query())
        assert answer.value >= 0.0

    def test_high_epsilon_recovers_exact(self, snowflake_small):
        executor = QueryExecutor(snowflake_small)
        for query in snowflake_queries():
            exact = executor.execute(query)
            mechanism = SnowflakePredicateMechanism(epsilon=1e6, rng=3)
            assert mechanism.answer_value(snowflake_small, query) == pytest.approx(exact)

    def test_unknown_table_rejected(self, snowflake_small):
        domain = snowflake_small.dimension("Customer").domain("region")
        query = StarJoinQuery.count(
            "bad", [PointPredicate("Ghost", "region", domain, value="ASIA")]
        )
        mechanism = SnowflakePredicateMechanism(epsilon=1.0)
        with pytest.raises(QueryError):
            mechanism.answer(snowflake_small, query)

    def test_unreachable_parent_rejected(self, ssb_small, snowflake_small):
        """A predicate on Month is only valid against a schema that declares
        the Date → Month snowflake edge."""
        month_domain = snowflake_small.dimension("Month").domain("month")
        query = StarJoinQuery.count(
            "months", [PointPredicate("Month", "month", month_domain, value=3)]
        )
        mechanism = SnowflakePredicateMechanism(epsilon=1.0)
        with pytest.raises(QueryError):
            mechanism.answer(ssb_small, query)

    def test_star_queries_still_work(self, snowflake_small):
        """Predicates on direct dimensions pass through unchanged."""
        domain = snowflake_small.dimension("Customer").domain("region")
        query = StarJoinQuery.count(
            "asia", [PointPredicate("Customer", "region", domain, value="ASIA")]
        )
        mechanism = SnowflakePredicateMechanism(epsilon=1.0, rng=5)
        assert mechanism.answer_value(snowflake_small, query) >= 0.0
