"""Figure 11: error under Gaussian-mixture data skew (Qc3 / Qs3) by varying ε.

To isolate the effect of skew on the Predicate Mechanism, the paper
regenerates the data from two-component Gaussian mixtures with increasingly
separated / unbalanced components and reports the error of PM, R2T and LS on
the counting query Qc3 and the sum query Qs3 across privacy budgets.  The
observation to reproduce: skew hurts PM on COUNT queries more than on SUM
queries (count answers depend directly on how much probability mass the
shifted predicate region captures).
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.datagen.distributions import GaussianMixtureSpec, key_sampler, measure_sampler
from repro.datagen.ssb import SSBConfig, SSBGenerator
from repro.evaluation.experiments.common import ExperimentConfig, cell_seed
from repro.evaluation.parallel import StarCell, scheduler_for, run_star_cell
from repro.evaluation.reporting import ExperimentResult
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "MIXTURES", "QUERIES", "MECHANISMS"]

#: Three mixtures of increasing skew (component means/stds as domain fractions).
MIXTURES: tuple[tuple[str, GaussianMixtureSpec], ...] = (
    ("GM-mild", GaussianMixtureSpec(means=(0.4, 0.6), stds=(0.2, 0.2))),
    ("GM-moderate", GaussianMixtureSpec(means=(0.25, 0.75), stds=(0.1, 0.1))),
    ("GM-strong", GaussianMixtureSpec(means=(0.1, 0.9), stds=(0.05, 0.05), weights=(0.8, 0.2))),
)

QUERIES = ("Qc3", "Qs3")
MECHANISMS = ("PM", "R2T", "LS")


def build_mixture_database(
    config: ExperimentConfig, mixture_name: str, spec: GaussianMixtureSpec
):
    """Build one Figure 11 mixture instance (importable worker entry point)."""
    generator = SSBGenerator(
        SSBConfig(
            scale_factor=config.scale_factor,
            rows_per_scale_factor=config.rows_per_scale_factor,
            key_distribution=key_sampler("gaussian_mixture", spec=spec),
            measure_distribution=measure_sampler("gaussian_mixture", spec=spec),
            seed=config.seed + cell_seed(mixture_name, modulus=1000),
        )
    )
    return generator.build()


def run(
    config: Optional[ExperimentConfig] = None,
    mixtures: Sequence[tuple[str, GaussianMixtureSpec]] = MIXTURES,
    epsilons: Optional[Sequence[float]] = None,
    query_names: Sequence[str] = QUERIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 11 (error under Gaussian-mixture skew)."""
    config = config or ExperimentConfig()
    epsilons = tuple(epsilons) if epsilons is not None else config.epsilons
    result = ExperimentResult(
        title="Figure 11: error level for Gaussian-mixture distributions (Qc3 / Qs3)",
        notes=f"{config.trials} trials per cell.",
    )
    grid = [
        StarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=ssb_query,
            query_args=(query_name,),
            database_builder=build_mixture_database,
            database_args=(config, mixture_name, spec),
            stream=("figure11", mixture_name, query_name, epsilon, mechanism_name),
        )
        for mixture_name, spec in mixtures
        for query_name in query_names
        for epsilon in epsilons
        for mechanism_name in mechanisms
    ]
    evaluations = scheduler_for(config).map(partial(run_star_cell, config), grid)
    for cell, evaluation in zip(grid, evaluations):
        result.add_row(
            mixture=cell.database_args[1],
            query=cell.query_args[0],
            epsilon=cell.epsilon,
            mechanism=cell.mechanism,
            relative_error_pct=(
                None if evaluation.unsupported else evaluation.mean_relative_error
            ),
        )
    return result
