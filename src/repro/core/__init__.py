"""DP-starJ: the paper's primary contribution.

* :mod:`~repro.core.pma` — Algorithm 2: the Predicate Mechanism for a single
  Attribute (point and range constraints).
* :mod:`~repro.core.predicate_mechanism` — Algorithms 1 and 3: the Predicate
  Mechanism for aggregate star-join queries (COUNT / SUM / GROUP BY).
* :mod:`~repro.core.dp_starj` — the DP-starJ framework facade (extract
  predicates → perturb → answer), Figure 2.
* :mod:`~repro.core.workload` — Algorithm 4: star-join workload queries with
  the Workload Decomposition (WD) strategy.
* :mod:`~repro.core.matrix_decomposition` — strategy-matrix selection and the
  P = XA decomposition used by WD (Definition 5.1).
* :mod:`~repro.core.snowflake` — PM applied to snowflake queries (Section 5.3).
"""

from repro.core.pma import PredicateMechanismForAttribute, perturb_predicate
from repro.core.predicate_mechanism import PredicateMechanism
from repro.core.dp_starj import DPStarJoin
from repro.core.workload import (
    IndependentPMWorkload,
    WorkloadDecomposition,
    answer_workload_exact,
    build_data_cube,
)
from repro.core.matrix_decomposition import (
    MatrixDecomposition,
    StrategyChoice,
    predicate_from_indicator,
)
from repro.core.snowflake import SnowflakePredicateMechanism

__all__ = [
    "PredicateMechanismForAttribute",
    "perturb_predicate",
    "PredicateMechanism",
    "DPStarJoin",
    "IndependentPMWorkload",
    "WorkloadDecomposition",
    "answer_workload_exact",
    "build_data_cube",
    "MatrixDecomposition",
    "StrategyChoice",
    "predicate_from_indicator",
    "SnowflakePredicateMechanism",
]
