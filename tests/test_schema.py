"""Unit tests for schema metadata (TableSchema, ForeignKey, StarSchema)."""

import pytest

from repro.db.domains import AttributeDomain
from repro.db.schema import ForeignKey, SnowflakeEdge, StarSchema, TableSchema
from repro.exceptions import SchemaError


@pytest.fixture()
def domains():
    return {
        "color": AttributeDomain.categorical("color", ("red", "green", "blue")),
        "size": AttributeDomain.from_values("size", (1, 2, 3)),
    }


@pytest.fixture()
def simple_schema(domains):
    fact = TableSchema(name="Sales", key=None, measures=("amount",))
    color = TableSchema(name="Color", key="ColorKey", attributes={"color": domains["color"]})
    size = TableSchema(name="Size", key="SizeKey", attributes={"size": domains["size"]})
    return StarSchema(
        fact=fact,
        dimensions=[color, size],
        foreign_keys=[
            ForeignKey("ColorKey", "Color", "ColorKey"),
            ForeignKey("SizeKey", "Size", "SizeKey"),
        ],
    )


class TestTableSchema:
    def test_column_names_order(self, domains):
        schema = TableSchema(
            name="Color",
            key="ColorKey",
            attributes={"color": domains["color"]},
            measures=("weight",),
        )
        assert schema.column_names == ["ColorKey", "color", "weight"]

    def test_domain_of(self, domains):
        schema = TableSchema(name="Color", key="k", attributes={"color": domains["color"]})
        assert schema.domain_of("color").size == 3
        with pytest.raises(SchemaError):
            schema.domain_of("size")

    def test_overlapping_attributes_and_measures_rejected(self, domains):
        with pytest.raises(SchemaError):
            TableSchema(
                name="Bad", key=None, attributes={"x": domains["color"]}, measures=("x",)
            )


class TestStarSchema:
    def test_dimension_names(self, simple_schema):
        assert simple_schema.dimension_names == ["Color", "Size"]
        assert simple_schema.num_dimensions == 2
        assert not simple_schema.is_snowflake

    def test_foreign_key_lookup(self, simple_schema):
        fk = simple_schema.foreign_key_for("Color")
        assert fk.fact_column == "ColorKey"
        with pytest.raises(SchemaError):
            simple_schema.foreign_key_for("Missing")

    def test_table_schema_lookup(self, simple_schema):
        assert simple_schema.table_schema("Sales").name == "Sales"
        assert simple_schema.table_schema("Color").key == "ColorKey"
        with pytest.raises(SchemaError):
            simple_schema.table_schema("Nope")

    def test_locate_attribute(self, simple_schema):
        table, domain = simple_schema.locate_attribute("size")
        assert table == "Size"
        assert domain.size == 3

    def test_locate_unknown_attribute(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.locate_attribute("weight")

    def test_locate_ambiguous_attribute(self, domains):
        fact = TableSchema(name="F", key=None)
        d1 = TableSchema(name="D1", key="k1", attributes={"color": domains["color"]})
        d2 = TableSchema(name="D2", key="k2", attributes={"color": domains["color"]})
        schema = StarSchema(
            fact=fact,
            dimensions=[d1, d2],
            foreign_keys=[ForeignKey("k1", "D1", "k1"), ForeignKey("k2", "D2", "k2")],
        )
        with pytest.raises(SchemaError):
            schema.locate_attribute("color")

    def test_dimension_without_key_rejected(self, domains):
        fact = TableSchema(name="F", key=None)
        bad = TableSchema(name="D", key=None, attributes={"color": domains["color"]})
        with pytest.raises(SchemaError):
            StarSchema(fact=fact, dimensions=[bad], foreign_keys=[ForeignKey("k", "D", "k")])

    def test_unreachable_dimension_rejected(self, domains):
        fact = TableSchema(name="F", key=None)
        d1 = TableSchema(name="D1", key="k1", attributes={"color": domains["color"]})
        d2 = TableSchema(name="D2", key="k2", attributes={"size": domains["size"]})
        with pytest.raises(SchemaError):
            StarSchema(
                fact=fact,
                dimensions=[d1, d2],
                foreign_keys=[ForeignKey("k1", "D1", "k1")],
            )

    def test_foreign_key_must_reference_primary_key(self, domains):
        fact = TableSchema(name="F", key=None)
        d1 = TableSchema(name="D1", key="k1", attributes={"color": domains["color"]})
        with pytest.raises(SchemaError):
            StarSchema(
                fact=fact,
                dimensions=[d1],
                foreign_keys=[ForeignKey("k1", "D1", "not_the_key")],
            )

    def test_foreign_key_to_unknown_dimension_rejected(self, domains):
        fact = TableSchema(name="F", key=None)
        d1 = TableSchema(name="D1", key="k1", attributes={"color": domains["color"]})
        with pytest.raises(SchemaError):
            StarSchema(
                fact=fact,
                dimensions=[d1],
                foreign_keys=[ForeignKey("k1", "D1", "k1"), ForeignKey("x", "Ghost", "x")],
            )

    def test_duplicate_dimension_names_rejected(self, domains):
        fact = TableSchema(name="F", key=None)
        d1 = TableSchema(name="D1", key="k1", attributes={"color": domains["color"]})
        with pytest.raises(SchemaError):
            StarSchema(
                fact=fact,
                dimensions=[d1, d1],
                foreign_keys=[ForeignKey("k1", "D1", "k1")],
            )


class TestSnowflakeSchema:
    def test_snowflake_parent_without_fact_fk_is_allowed(self, domains):
        fact = TableSchema(name="F", key=None)
        child = TableSchema(name="Child", key="ck", attributes={"color": domains["color"]})
        parent = TableSchema(name="Parent", key="pk", attributes={"size": domains["size"]})
        schema = StarSchema(
            fact=fact,
            dimensions=[child, parent],
            foreign_keys=[ForeignKey("ck", "Child", "ck")],
            snowflake_edges=[SnowflakeEdge("Child", "pk_ref", "Parent", "pk")],
        )
        assert schema.is_snowflake
        assert schema.parents_of("Child")[0].parent_table == "Parent"

    def test_snowflake_edge_to_unknown_table_rejected(self, domains):
        fact = TableSchema(name="F", key=None)
        child = TableSchema(name="Child", key="ck", attributes={"color": domains["color"]})
        with pytest.raises(SchemaError):
            StarSchema(
                fact=fact,
                dimensions=[child],
                foreign_keys=[ForeignKey("ck", "Child", "ck")],
                snowflake_edges=[SnowflakeEdge("Child", "pk_ref", "Ghost", "pk")],
            )
