"""Multi-level snowflake traversal: Fact → Day → Month → Year.

The paper's snowflake discussion normalises ``Date`` one level; the executor
and the materialised-join reference are written to follow snowflake edges to
any depth.  This test builds a small two-level hierarchy by hand and checks
that predicates on the outermost table (``Year``) produce the same answers
through the semi-join plan, the materialised join and the Predicate
Mechanism at very large ε.
"""

import numpy as np
import pytest

from repro.core.snowflake import SnowflakePredicateMechanism
from repro.db.database import StarDatabase
from repro.db.domains import AttributeDomain
from repro.db.executor import QueryExecutor
from repro.db.join import execute_by_materialised_join
from repro.db.predicates import PointPredicate, RangePredicate
from repro.db.query import StarJoinQuery
from repro.db.schema import ForeignKey, SnowflakeEdge, StarSchema, TableSchema
from repro.db.table import Column, Table

NUM_YEARS = 3
MONTHS_PER_YEAR = 4
DAYS_PER_MONTH = 5
FACT_ROWS = 600


@pytest.fixture(scope="module")
def deep_snowflake() -> StarDatabase:
    year_domain = AttributeDomain.integer_range("year", 2001, 2000 + NUM_YEARS)
    month_domain = AttributeDomain.integer_range("month", 1, MONTHS_PER_YEAR)
    day_domain = AttributeDomain.integer_range("day", 1, DAYS_PER_MONTH)

    year_schema = TableSchema(name="Year", key="YK", attributes={"year": year_domain})
    month_schema = TableSchema(name="Month", key="MK", attributes={"month": month_domain})
    day_schema = TableSchema(name="Day", key="DK", attributes={"day": day_domain})
    fact_schema = TableSchema(name="Fact", key=None, measures=("amount",))

    schema = StarSchema(
        fact=fact_schema,
        dimensions=[day_schema, month_schema, year_schema],
        foreign_keys=[ForeignKey("DK", "Day", "DK")],
        snowflake_edges=[
            SnowflakeEdge("Day", "MK", "Month", "MK"),
            SnowflakeEdge("Month", "YK", "Year", "YK"),
        ],
    )

    num_months = NUM_YEARS * MONTHS_PER_YEAR
    num_days = num_months * DAYS_PER_MONTH

    year_table = Table(
        "Year",
        [
            Column("YK", np.arange(NUM_YEARS)),
            Column("year", np.arange(NUM_YEARS), domain=year_domain),
        ],
    )
    month_index = np.arange(num_months)
    month_table = Table(
        "Month",
        [
            Column("MK", month_index),
            Column("month", month_index % MONTHS_PER_YEAR, domain=month_domain),
            Column("YK", month_index // MONTHS_PER_YEAR),
        ],
    )
    day_index = np.arange(num_days)
    day_table = Table(
        "Day",
        [
            Column("DK", day_index),
            Column("day", day_index % DAYS_PER_MONTH, domain=day_domain),
            Column("MK", day_index // DAYS_PER_MONTH),
        ],
    )
    rng = np.random.default_rng(17)
    fact_table = Table(
        "Fact",
        [
            Column("DK", rng.integers(0, num_days, size=FACT_ROWS)),
            Column("amount", rng.uniform(1.0, 10.0, size=FACT_ROWS)),
        ],
    )
    return StarDatabase(
        schema=schema,
        fact=fact_table,
        dimensions={"Day": day_table, "Month": month_table, "Year": year_table},
    )


def _year_query(database: StarDatabase, year: int) -> StarJoinQuery:
    domain = database.dimension("Year").domain("year")
    return StarJoinQuery.count(
        "by-year", [PointPredicate("Year", "year", domain, value=year)]
    )


class TestTwoLevelResolution:
    def test_year_mask_resolves_to_day(self, deep_snowflake):
        domain = deep_snowflake.dimension("Year").domain("year")
        predicate = PointPredicate("Year", "year", domain, value=2001)
        year_mask = deep_snowflake.dimension_mask(predicate)
        name, day_mask = deep_snowflake.resolve_to_direct_dimension("Year", year_mask)
        assert name == "Day"
        # The first year owns the first MONTHS_PER_YEAR * DAYS_PER_MONTH days.
        assert int(day_mask.sum()) == MONTHS_PER_YEAR * DAYS_PER_MONTH
        assert bool(day_mask[:DAYS_PER_MONTH].all())

    def test_year_counts_partition_fact_table(self, deep_snowflake):
        executor = QueryExecutor(deep_snowflake)
        domain = deep_snowflake.dimension("Year").domain("year")
        total = sum(
            executor.execute(_year_query(deep_snowflake, year)) for year in domain
        )
        assert total == FACT_ROWS

    def test_semi_join_matches_materialised_join(self, deep_snowflake):
        month_domain = deep_snowflake.dimension("Month").domain("month")
        year_domain = deep_snowflake.dimension("Year").domain("year")
        query = StarJoinQuery.sum(
            "mixed",
            "amount",
            [
                PointPredicate("Year", "year", year_domain, value=2002),
                RangePredicate("Month", "month", month_domain, low=1, high=2),
            ],
        )
        executor = QueryExecutor(deep_snowflake)
        assert executor.execute(query) == pytest.approx(
            execute_by_materialised_join(deep_snowflake, query)
        )

    def test_pm_on_outermost_predicate(self, deep_snowflake):
        executor = QueryExecutor(deep_snowflake)
        query = _year_query(deep_snowflake, 2003)
        exact = executor.execute(query)
        mechanism = SnowflakePredicateMechanism(epsilon=1e6, rng=4)
        assert mechanism.answer_value(deep_snowflake, query) == pytest.approx(exact)

    def test_pm_with_moderate_budget_returns_valid_count(self, deep_snowflake):
        query = _year_query(deep_snowflake, 2001)
        mechanism = SnowflakePredicateMechanism(epsilon=0.5, rng=9)
        value = mechanism.answer_value(deep_snowflake, query)
        assert 0.0 <= value <= FACT_ROWS
