"""Tests for the paper's query workloads (SSB queries, W1/W2, Qtc/Qts, Q2*/Q3*)."""

import numpy as np
import pytest

from repro.datagen.ssb import ssb_schema
from repro.db.predicates import PointPredicate, RangePredicate, SetPredicate
from repro.db.query import AggregateKind
from repro.exceptions import QueryError
from repro.graph.generators import powerlaw_graph
from repro.workloads.kstar_queries import kstar_query, q2star, q3star
from repro.workloads.ssb_queries import (
    SSB_QUERY_NAMES,
    all_ssb_queries,
    count_queries,
    groupby_queries,
    ssb_query,
    sum_queries,
)
from repro.workloads.tpch_queries import snowflake_queries, tpch_count_query, tpch_sum_query
from repro.workloads.workload_matrices import (
    W1_MATRIX,
    W2_MATRIX,
    workload_matrix_from_queries,
    workload_queries_from_matrix,
    workload_w1,
    workload_w2,
)


class TestSSBQueries:
    def test_all_queries_build(self):
        queries = all_ssb_queries()
        assert [q.name for q in queries] == list(SSB_QUERY_NAMES)

    def test_unknown_query_rejected(self):
        with pytest.raises(QueryError):
            ssb_query("Qc9")

    def test_query_families(self):
        assert all(q.kind is AggregateKind.COUNT for q in count_queries())
        assert all(q.kind is AggregateKind.SUM for q in sum_queries())
        assert all(q.is_grouped for q in groupby_queries())

    def test_domain_sizes_match_appendix(self):
        """The appendix lists the predicate domain sizes of every query."""
        expected = {
            "Qc1": [7],
            "Qc2": [25, 5],
            "Qc3": [5, 5, 7],
            "Qc4": [5, 25, 7, 5],
            "Qs2": [25, 5],
            "Qs3": [5, 5, 7],
            "Qs4": [5, 25, 7, 5],
            "Qg2": [25, 5],
            "Qg4": [5, 25, 7, 5],
        }
        for name, sizes in expected.items():
            assert sorted(ssb_query(name).domain_sizes()) == sorted(sizes), name

    def test_qc1_predicate(self):
        query = ssb_query("Qc1")
        predicate = query.predicates.predicates[0]
        assert isinstance(predicate, PointPredicate)
        assert (predicate.table, predicate.value) == ("Date", 1993)

    def test_qc3_has_year_range(self):
        ranges = [p for p in ssb_query("Qc3").predicates if isinstance(p, RangePredicate)]
        assert len(ranges) == 1
        assert (ranges[0].low, ranges[0].high) == (1992, 1997)

    def test_qc4_has_mfgr_set(self):
        sets = [p for p in ssb_query("Qc4").predicates if isinstance(p, SetPredicate)]
        assert len(sets) == 1
        assert set(sets[0].values) == {"MFGR#1", "MFGR#2"}

    def test_qg4_measure_difference_and_groupby(self):
        query = ssb_query("Qg4")
        assert query.aggregate.measure.column == "revenue"
        assert query.aggregate.measure.subtract == "supplycost"
        assert list(query.group_by) == [("Date", "year"), ("Part", "category")]

    def test_describe_mentions_aggregate(self):
        assert "COUNT(*)" in ssb_query("Qc1").describe()
        assert "SUM" in ssb_query("Qs2").describe()


class TestWorkloadMatrices:
    def test_matrix_shapes(self):
        assert W1_MATRIX.shape == (11, 17)
        assert W2_MATRIX.shape == (7, 17)

    def test_every_row_selects_something_in_every_block(self):
        for matrix in (W1_MATRIX, W2_MATRIX):
            for row in matrix:
                assert row[:7].sum() >= 1
                assert row[7:12].sum() >= 1
                assert row[12:].sum() >= 1

    def test_w2_year_block_is_cumulative(self):
        year_block = W2_MATRIX[:, :7]
        widths = year_block.sum(axis=1)
        assert list(widths) == [1, 2, 3, 4, 5, 6, 7]

    def test_queries_roundtrip_to_matrix(self):
        for matrix in (W1_MATRIX, W2_MATRIX):
            queries = workload_queries_from_matrix(matrix)
            assert np.array_equal(workload_matrix_from_queries(queries), matrix)

    def test_workload_builders(self):
        assert len(workload_w1()) == 11
        assert len(workload_w2()) == 7
        assert all(q.kind is AggregateKind.COUNT for q in workload_w1())

    def test_invalid_row_length_rejected(self):
        with pytest.raises(QueryError):
            workload_queries_from_matrix(np.ones((2, 5)))

    def test_all_zero_block_rejected(self):
        bad = np.ones((1, 17))
        bad[0, 7:12] = 0
        with pytest.raises(QueryError):
            workload_queries_from_matrix(bad)


class TestSnowflakeQueries:
    def test_count_query_structure(self):
        query = tpch_count_query()
        assert query.kind is AggregateKind.COUNT
        tables = {p.table for p in query.predicates}
        assert tables == {"Month", "Customer"}

    def test_sum_query_structure(self):
        query = tpch_sum_query()
        assert query.kind is AggregateKind.SUM
        assert query.aggregate.measure.column == "revenue"

    def test_snowflake_queries_list(self):
        names = [q.name for q in snowflake_queries()]
        assert names == ["Qtc", "Qts"]


class TestKStarQueries:
    def test_full_range(self):
        graph = powerlaw_graph(100, 300, rng=1)
        query = q2star(graph)
        assert query.k == 2
        assert query.low == 0
        assert query.high == graph.num_nodes - 1
        assert q3star(graph).k == 3

    def test_custom_k(self):
        graph = powerlaw_graph(100, 300, rng=1)
        query = kstar_query(4, graph, name="Q4*")
        assert query.k == 4
        assert query.label == "Q4*"
