"""Wire formats of the out-of-process cache: keys, payloads, frames.

Three codecs, shared by the cache server (:mod:`repro.db.cache.server`) and
the remote backend client (:mod:`repro.db.cache.remote`):

* :func:`encode_key` — a **canonical, prefix-free** encoding of a
  ``(namespace, region, key)`` address.  Cache keys are the semantic
  fingerprints of :mod:`repro.db.cache.fingerprints` — flat structures of
  strings, numbers, ``None`` and tuples — and the encoding tags every term
  and length-prefixes every variable-size field, so distinct addresses can
  never serialize to the same bytes (two byte strings are equal only if
  every tagged term is equal) and equal addresses always serialize to the
  same bytes regardless of which process encodes them.  The property suite
  in ``tests/test_cache_server.py`` fuzzes both directions.
* :func:`encode_payload` / :func:`decode_payload` — cached values as bytes.
  Arrays travel in ``np.save`` framing (``numpy.lib.format``), which
  preserves dtype, shape and order exactly; tuples recurse; everything else
  (floats, memoized :class:`~repro.db.executor.GroupedResult` answers) falls
  back to pickle.  A payload round-trip is bit-identical — the
  backend-consistency contract of :mod:`repro.db.cache.backend` depends on
  it.
* :func:`write_frame` / :func:`read_frame` (+ the asyncio variants) — the
  length-prefixed binary framing on the socket: one frame is a 4-byte
  big-endian header length, a UTF-8 JSON header, a 4-byte payload length and
  the raw payload bytes.  Headers carry the op and the base64-encoded key;
  payloads carry values, so array bytes never pass through JSON.

Headers are plain JSON objects and *extensible*: readers ignore fields they
do not know, which is how optional metadata rides along without a protocol
bump.  The ``trace`` field on get/put (:data:`TRACE_HEADER_FIELD`, a
``{"trace_id", "span_id"}`` dict from :func:`repro.obs.trace.wire_context`)
propagates request traces across the wire — a v2 server records its
handling as a child span, an older server simply ignores the field, and
the bytes of every *response* are identical either way.

Trust boundary: payload decoding falls back to pickle, so a cache server
must only be shared by mutually trusting processes on a trusted network —
the same boundary as the shared backend's ``multiprocessing.Manager`` tier.
"""

from __future__ import annotations

import base64
import io
import json
import pickle
import struct
from typing import Any, Hashable, Tuple

import numpy as np

__all__ = [
    "MAX_FRAME_HEADER",
    "MAX_FRAME_PAYLOAD",
    "TRACE_HEADER_FIELD",
    "decode_payload",
    "encode_key",
    "encode_payload",
    "key_from_header",
    "key_to_header",
    "read_frame",
    "read_frame_async",
    "write_frame",
    "write_frame_async",
]

#: Upper bounds a reader enforces before allocating (a garbage length prefix
#: must produce a clean error, not a memory bomb).  The payload bound caps
#: a single cached value at 64 MiB — an order of magnitude above the
#: largest artefact the engine shares (data cubes a few MiB at SF 1) while
#: keeping the worst case a corrupt prefix can make a reader allocate far
#: below anything that could distress a host.  The server answers an
#: over-bound length with a structured ``bad frame`` error before dropping
#: the connection; the client simply refuses to send oversized values
#: (they stay in its local tier).
MAX_FRAME_HEADER = 1 << 20  # 1 MiB of JSON header
MAX_FRAME_PAYLOAD = 1 << 26  # 64 MiB of value bytes

#: The optional request-header field carrying a trace context over the wire
#: (see the module docstring); named here so client and server agree on it.
TRACE_HEADER_FIELD = "trace"


# ----------------------------------------------------------------------
# canonical key encoding
# ----------------------------------------------------------------------
def _encode_term(value: Any, out: bytearray) -> None:
    """Append one tagged, length-prefixed term to ``out``.

    The tag distinguishes types and every variable-length field carries its
    byte length, so the concatenation of terms is prefix-free: no encoded
    address is a prefix of a different one, which is what makes the overall
    encoding injective.
    """
    if value is None:
        out += b"N"
    elif value is True:  # bool before int: True would match the int branch
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        text = str(value).encode("ascii")
        out += b"I" + struct.pack(">I", len(text)) + text
    elif isinstance(value, float):
        out += b"D" + struct.pack(">d", value)
    elif isinstance(value, str):
        text = value.encode("utf-8")
        out += b"S" + struct.pack(">I", len(text)) + text
    elif isinstance(value, bytes):
        out += b"B" + struct.pack(">I", len(value)) + value
    elif isinstance(value, tuple):
        out += b"(" + struct.pack(">I", len(value))
        for member in value:
            _encode_term(member, out)
    else:
        # Anything exotic (no engine fingerprint produces one) goes through
        # pickle, length-prefixed like every other variable-size term.
        blob = pickle.dumps(value, protocol=4)
        out += b"P" + struct.pack(">I", len(blob)) + blob


def encode_key(namespace: str, region: str, key: Hashable) -> bytes:
    """The canonical byte address of one ``(namespace, region, key)`` triple.

    Requests *also* carry namespace and region as plain header fields — the
    server addresses, clears and counts by those — so the copies baked in
    here are deliberate redundancy: every stored blob (including rows in a
    persistence file read years later) is self-describing, and the store's
    header-derived address means a client that disagreed with its own key
    bytes could only mis-file its own entries, never collide with another
    client's.
    """
    out = bytearray(b"K1")  # key-encoding version tag
    _encode_term(str(namespace), out)
    _encode_term(str(region), out)
    _encode_term(key, out)
    return bytes(out)


def key_to_header(key_bytes: bytes) -> str:
    """Key bytes as a JSON-safe header field."""
    return base64.b64encode(key_bytes).decode("ascii")


def key_from_header(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"), validate=True)


# ----------------------------------------------------------------------
# payload encoding
# ----------------------------------------------------------------------
def encode_payload(value: Any) -> bytes:
    """Serialise one cached value; bit-exact under :func:`decode_payload`."""
    if isinstance(value, np.ndarray) and value.dtype != object:
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, value, allow_pickle=False)
        blob = buffer.getvalue()
        return b"A" + struct.pack(">I", len(blob)) + blob
    if isinstance(value, tuple):
        out = bytearray(b"(") + struct.pack(">I", len(value))
        for member in value:
            blob = encode_payload(member)
            out += struct.pack(">I", len(blob)) + blob
        return bytes(out)
    blob = pickle.dumps(value, protocol=4)
    return b"P" + struct.pack(">I", len(blob)) + blob


def decode_payload(blob: bytes) -> Any:
    """Reverse :func:`encode_payload` (arrays come back fresh and writable)."""
    value, consumed = _decode_payload(blob, 0)
    if consumed != len(blob):
        raise ValueError(f"payload has {len(blob) - consumed} trailing bytes")
    return value


def _decode_payload(blob: bytes, offset: int) -> Tuple[Any, int]:
    tag = blob[offset : offset + 1]
    if tag == b"A":
        (length,) = struct.unpack_from(">I", blob, offset + 1)
        start = offset + 5
        array = np.lib.format.read_array(
            io.BytesIO(blob[start : start + length]), allow_pickle=False
        )
        return array, start + length
    if tag == b"(":
        (count,) = struct.unpack_from(">I", blob, offset + 1)
        cursor = offset + 5
        members = []
        for _ in range(count):
            (length,) = struct.unpack_from(">I", blob, cursor)
            member, consumed = _decode_payload(blob, cursor + 4)
            if consumed != cursor + 4 + length:
                raise ValueError("tuple member length mismatch")
            members.append(member)
            cursor = consumed
        return tuple(members), cursor
    if tag == b"P":
        (length,) = struct.unpack_from(">I", blob, offset + 1)
        start = offset + 5
        return pickle.loads(blob[start : start + length]), start + length
    raise ValueError(f"unknown payload tag {tag!r}")


# ----------------------------------------------------------------------
# frame I/O (blocking, over a socket file object)
# ----------------------------------------------------------------------
def _build_frame(header: dict, payload: bytes) -> bytes:
    """The one place frame bytes are assembled — the blocking and asyncio
    writers must never drift apart in framing."""
    header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return (
        struct.pack(">I", len(header_bytes))
        + header_bytes
        + struct.pack(">I", len(payload))
        + payload
    )


def write_frame(stream, header: dict, payload: bytes = b"") -> int:
    """Write one frame; returns the number of bytes put on the wire."""
    frame = _build_frame(header, payload)
    stream.write(frame)
    stream.flush()
    return len(frame)


def _read_exactly(stream, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(f"connection closed mid-frame ({remaining} bytes short)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _parse_lengths(prefix: bytes, bound: int, what: str) -> int:
    (length,) = struct.unpack(">I", prefix)
    if length > bound:
        raise ValueError(f"{what} length {length} exceeds the {bound}-byte bound")
    return length


def read_frame(stream) -> Tuple[dict, bytes, int]:
    """Read one frame; returns ``(header, payload, bytes_on_the_wire)``.

    Raises ``EOFError`` on a cleanly closed connection.  The byte count is
    the full frame — both length prefixes and the header included — so the
    receive counters match what the sender's :func:`write_frame` reported.
    """
    header_len = _parse_lengths(_read_exactly(stream, 4), MAX_FRAME_HEADER, "header")
    header = json.loads(_read_exactly(stream, header_len).decode("utf-8"))
    payload_len = _parse_lengths(_read_exactly(stream, 4), MAX_FRAME_PAYLOAD, "payload")
    payload = _read_exactly(stream, payload_len) if payload_len else b""
    if not isinstance(header, dict):
        raise ValueError("frame header must be a JSON object")
    return header, payload, 8 + header_len + payload_len


# ----------------------------------------------------------------------
# frame I/O (asyncio, server side)
# ----------------------------------------------------------------------
async def read_frame_async(reader) -> Tuple[dict, bytes, int]:
    """Asyncio twin of :func:`read_frame` (raises ``IncompleteReadError``/
    ``ValueError`` on malformed input; the server answers structurally)."""
    header_len = _parse_lengths(await reader.readexactly(4), MAX_FRAME_HEADER, "header")
    header = json.loads((await reader.readexactly(header_len)).decode("utf-8"))
    payload_len = _parse_lengths(await reader.readexactly(4), MAX_FRAME_PAYLOAD, "payload")
    payload = await reader.readexactly(payload_len) if payload_len else b""
    if not isinstance(header, dict):
        raise ValueError("frame header must be a JSON object")
    return header, payload, 8 + header_len + payload_len


async def write_frame_async(writer, header: dict, payload: bytes = b"") -> int:
    frame = _build_frame(header, payload)
    writer.write(frame)
    await writer.drain()
    return len(frame)
