"""Cache-consistency suite for the shared execution engine.

The engine may reorganise execution however it likes (cached selection masks,
memoized answers, cube-served counts, prefix-summed truncations) as long as
every answer stays *bit-identical* to the uncached reference plan — the
materialise-then-filter join in :mod:`repro.db.join`.  This suite pins that
contract across predicate shapes (point / range / set / snowflake), GROUP BY,
and COUNT / SUM / AVG aggregates, and covers the engine-specific behaviours:
shared-engine identity, read-only cached arrays, cube/executor SUM agreement
and the vectorized greedy truncation's equivalence to the sequential rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine, predicate_fingerprint, query_fingerprint
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.join import execute_by_materialised_join
from repro.db.predicates import PointPredicate, RangePredicate, SetPredicate
from repro.db.query import AggregateKind, Measure, StarJoinQuery
from repro.core.workload import WorkloadAttribute, build_data_cube, contract_cube
from repro.datagen.ssb import ssb_schema
from repro.datagen.tpch import snowflake_schema
from repro.graph.edge_table import Graph
from repro.graph.kstar import KStarQuery, kstar_count, per_node_star_counts
from repro.workloads.ssb_queries import all_ssb_queries, ssb_query


def _reference_answer(database: StarDatabase, query: StarJoinQuery):
    """The uncached materialise-then-filter reference plan."""
    return execute_by_materialised_join(database, query)


def _assert_matches_reference(database: StarDatabase, query: StarJoinQuery) -> None:
    engine_answer = QueryExecutor(database).execute(query)
    reference = _reference_answer(database, query)
    if isinstance(engine_answer, GroupedResult):
        assert engine_answer.groups == reference  # bit-identical floats
    else:
        assert engine_answer == reference


# ----------------------------------------------------------------------
# engine answers == uncached reference, bit for bit
# ----------------------------------------------------------------------
class TestCacheConsistency:
    @pytest.mark.parametrize("name", ["Qc1", "Qc2", "Qc3", "Qc4", "Qs2", "Qs3", "Qs4", "Qg2", "Qg4"])
    def test_paper_queries_match_reference(self, ssb_small, name):
        _assert_matches_reference(ssb_small, ssb_query(name, ssb_schema()))

    def test_every_query_matches_reference_twice(self, ssb_small):
        # The second run is served from the memoized-result cache; it must be
        # indistinguishable from the first.
        for query in all_ssb_queries(ssb_schema()):
            first = QueryExecutor(ssb_small).execute(query)
            second = QueryExecutor(ssb_small).execute(query)
            if isinstance(first, GroupedResult):
                assert first.groups == second.groups
            else:
                assert first == second
            _assert_matches_reference(ssb_small, query)

    def test_point_predicate(self, ssb_small):
        schema = ssb_schema()
        domain = schema.dimensions["Customer"].attributes["region"]
        predicate = PointPredicate(
            table="Customer", attribute="region", domain=domain, value=domain.values[0]
        )
        query = StarJoinQuery.count("point", predicates=[predicate])
        _assert_matches_reference(ssb_small, query)

    def test_range_predicate(self, ssb_small):
        schema = ssb_schema()
        domain = schema.dimensions["Date"].attributes["year"]
        predicate = RangePredicate(
            table="Date",
            attribute="year",
            domain=domain,
            low=domain.values[1],
            high=domain.values[-2],
        )
        query = StarJoinQuery.sum("range", measure="revenue", predicates=[predicate])
        _assert_matches_reference(ssb_small, query)

    def test_set_predicate(self, ssb_small):
        schema = ssb_schema()
        domain = schema.dimensions["Part"].attributes["mfgr"]
        predicate = SetPredicate(
            table="Part",
            attribute="mfgr",
            domain=domain,
            values=(domain.values[0], domain.values[-1]),
        )
        query = StarJoinQuery.count("set", predicates=[predicate])
        _assert_matches_reference(ssb_small, query)

    def test_snowflake_predicate(self, snowflake_small):
        schema = snowflake_schema()
        month_domain = schema.dimensions["Month"].attributes["month"]
        predicate = RangePredicate(
            table="Month",
            attribute="month",
            domain=month_domain,
            low=month_domain.values[0],
            high=month_domain.values[5],
        )
        query = StarJoinQuery.count("snowflake", predicates=[predicate])
        _assert_matches_reference(snowflake_small, query)

    def test_group_by_count_sum_avg(self, ssb_small):
        schema = ssb_schema()
        domain = schema.dimensions["Date"].attributes["year"]
        predicate = RangePredicate(
            table="Date", attribute="year", domain=domain,
            low=domain.values[0], high=domain.values[-1],
        )
        count_query = StarJoinQuery.count(
            "g-count", predicates=[predicate], group_by=[("Customer", "region")]
        )
        sum_query = StarJoinQuery.sum(
            "g-sum", measure="revenue", predicates=[predicate],
            group_by=[("Customer", "region"), ("Part", "mfgr")],
        )
        _assert_matches_reference(ssb_small, count_query)
        _assert_matches_reference(ssb_small, sum_query)
        avg_query = StarJoinQuery(
            name="g-avg",
            aggregate=sum_query.aggregate.__class__(
                kind=AggregateKind.AVG, measure=Measure("quantity")
            ),
            predicates=sum_query.predicates,
            group_by=sum_query.group_by,
        )
        _assert_matches_reference(ssb_small, avg_query)

    def test_measure_subtract_expression(self, ssb_small):
        query = StarJoinQuery.sum(
            "profit", measure="revenue", measure_subtract="supplycost"
        )
        _assert_matches_reference(ssb_small, query)

    def test_empty_selection(self, ssb_small):
        schema = ssb_schema()
        year = schema.dimensions["Date"].attributes["year"]
        mfgr = schema.dimensions["Part"].attributes["mfgr"]
        # An impossible conjunction: two disjoint point constraints cannot be
        # expressed on one attribute, so pick a region/mfgr pair that selects
        # nothing by intersecting a zero-probability range … simplest is a
        # range of width one year joined with every mfgr, then verified empty
        # or not against the reference either way.
        query = StarJoinQuery.count(
            "maybe-empty",
            predicates=[
                RangePredicate(table="Date", attribute="year", domain=year,
                               low=year.values[0], high=year.values[0]),
                PointPredicate(table="Part", attribute="mfgr", domain=mfgr,
                               value=mfgr.values[-1]),
            ],
        )
        _assert_matches_reference(ssb_small, query)


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
class TestEngineSharing:
    def test_executors_share_one_engine(self, ssb_small):
        first = QueryExecutor(ssb_small)
        second = QueryExecutor(ssb_small)
        assert first.engine is second.engine
        assert first.engine is ExecutionEngine.for_database(ssb_small)

    def test_explicit_engine_respected(self, ssb_small):
        private_engine = ExecutionEngine(ssb_small)
        executor = QueryExecutor(ssb_small, engine=private_engine)
        assert executor.engine is private_engine
        assert executor.engine is not ExecutionEngine.for_database(ssb_small)

    def test_selection_mask_is_cached_and_read_only(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        query = ssb_query("Qc1", ssb_schema())
        mask_a = engine.selection_mask(query.predicates)
        mask_b = engine.selection_mask(query.predicates)
        assert mask_a is mask_b
        assert not mask_a.flags.writeable
        with pytest.raises(ValueError):
            mask_a[0] = True

    def test_invalidate_clears_caches(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        query = ssb_query("Qc1", ssb_schema())
        mask_a = engine.selection_mask(query.predicates)
        engine.invalidate()
        mask_b = engine.selection_mask(query.predicates)
        assert mask_a is not mask_b
        assert np.array_equal(mask_a, mask_b)

    def test_fingerprints_are_order_insensitive(self, ssb_small):
        query = ssb_query("Qc3", ssb_schema())
        reordered = query.with_predicates(tuple(reversed(tuple(query.predicates))))
        assert query_fingerprint(query) == query_fingerprint(
            StarJoinQuery.count(query.name, predicates=tuple(reordered.predicates))
        )

    def test_unknown_predicate_subclass_is_uncached(self, ssb_small):
        class OddPredicate(RangePredicate):
            pass

        schema = ssb_schema()
        domain = schema.dimensions["Date"].attributes["year"]
        odd = OddPredicate(
            table="Date", attribute="year", domain=domain,
            low=domain.values[0], high=domain.values[-1],
        )
        assert predicate_fingerprint(odd) is None
        engine = ExecutionEngine(ssb_small)
        mask = engine.fact_mask(odd)
        reference = ssb_small.fact_mask_for_predicate(odd)
        assert np.array_equal(mask, reference)

    def test_fan_out_matches_database(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        for dimension in ("Customer", "Supplier", "Part", "Date"):
            assert np.array_equal(engine.fan_out(dimension), ssb_small.fan_out(dimension))
            assert engine.max_fan_out(dimension) == ssb_small.max_fan_out(dimension)

    def test_sorted_contributions_truncate_exactly(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        query = ssb_query("Qc2", ssb_schema())
        per_key = engine.contribution_per_key(query.predicates, "Customer")
        ordered, prefix = engine.sorted_contributions(query.predicates, "Customer")
        for tau in (0.0, 1.0, 2.5, 7.0, float(per_key.max()), float(per_key.max()) + 10):
            direct = float(np.minimum(per_key, tau).sum())
            assert engine.truncated_sum_from_sorted(ordered, prefix, tau) == direct


# ----------------------------------------------------------------------
# the engine holds no cache storage: everything goes through the backend
# ----------------------------------------------------------------------
class _SpyBackend:
    """A protocol-conforming backend that records every region touched."""

    name = "spy"

    def __init__(self):
        self._data: dict = {}
        self.regions_touched: set[str] = set()
        self._stats = None

    def get(self, namespace, region, key):
        self.regions_touched.add(region)
        return self._data.get((namespace, region, key))

    def put(self, namespace, region, key, value):
        self.regions_touched.add(region)
        self._data[(namespace, region, key)] = value

    def clear(self, namespace=None):
        if namespace is None:
            self._data.clear()
        else:
            self._data = {k: v for k, v in self._data.items() if k[0] != namespace}

    def release(self, namespace):
        self.clear(namespace)

    def stats(self):
        from repro.db.cache import CacheStats

        return CacheStats()

    def reset_stats(self):
        pass

    def entry_count(self, namespace=None):
        return len(self._data)


class TestBackendRouting:
    def test_all_cached_artefacts_flow_through_the_backend(self, ssb_small):
        """Exercising every engine path against a spy backend proves the
        engine owns no private cache storage — remove any backend call and
        either the spy misses a region or answers change."""
        spy = _SpyBackend()
        engine = ExecutionEngine(ssb_small, backend=spy)
        executor = QueryExecutor(ssb_small, engine=engine)
        for name in ("Qc1", "Qs2", "Qg2"):
            query = ssb_query(name, ssb_schema())
            assert executor.execute(query) == executor.execute(query)
        engine.fan_out("Customer")
        engine.max_fan_out("Customer")
        qc2 = ssb_query("Qc2", ssb_schema())
        engine.contribution_per_key(qc2.predicates, "Customer")
        engine.sorted_contributions(qc2.predicates, "Customer")
        assert spy.regions_touched == {
            "predicate_mask",
            "selection_mask",
            "fan_out",
            "max_fan_out",
            "measure",
            "contribution",
            "sorted_contribution",
            "cube",
            "result",
        }

    def test_spy_served_answers_match_reference(self, ssb_small):
        spy = _SpyBackend()
        engine = ExecutionEngine(ssb_small, backend=spy)
        executor = QueryExecutor(ssb_small, engine=engine)
        for name in ("Qc3", "Qs3"):
            query = ssb_query(name, ssb_schema())
            assert executor.execute(query) == _reference_answer(ssb_small, query)


# ----------------------------------------------------------------------
# satellite: unified measure accessor / SUM-cube agreement
# ----------------------------------------------------------------------
class TestSumCubeConsistency:
    def _attributes_and_indicators(self, query: StarJoinQuery):
        attributes, indicators = [], []
        for predicate in query.predicates:
            attributes.append(
                WorkloadAttribute(
                    table=predicate.table,
                    attribute=predicate.attribute,
                    domain=predicate.domain,
                )
            )
            indicators.append(predicate.indicator_vector())
        return attributes, indicators

    @pytest.mark.parametrize("name", ["Qs2", "Qs3", "Qs4"])
    def test_cube_sum_equals_executor_sum(self, ssb_small, name):
        query = ssb_query(name, ssb_schema())
        attributes, indicators = self._attributes_and_indicators(query)
        cube = build_data_cube(
            ssb_small, attributes, kind=AggregateKind.SUM, measure=query.aggregate.measure
        )
        cube_answer = contract_cube(cube, indicators)
        exact = QueryExecutor(ssb_small).execute(query)
        assert cube_answer == pytest.approx(exact, rel=1e-12, abs=1e-9)

    def test_string_measure_equals_measure_object(self, ssb_small):
        query = ssb_query("Qs2", ssb_schema())
        attributes, _ = self._attributes_and_indicators(query)
        by_name = build_data_cube(
            ssb_small, attributes, kind=AggregateKind.SUM, measure="revenue"
        )
        by_object = build_data_cube(
            ssb_small, attributes, kind=AggregateKind.SUM, measure=Measure("revenue")
        )
        assert np.array_equal(by_name, by_object)

    @pytest.mark.parametrize("name", ["Qc1", "Qc4"])
    def test_cube_count_equals_executor_count(self, ssb_small, name):
        query = ssb_query(name, ssb_schema())
        attributes, indicators = self._attributes_and_indicators(query)
        cube = build_data_cube(ssb_small, attributes, kind=AggregateKind.COUNT)
        assert contract_cube(cube, indicators) == QueryExecutor(ssb_small).execute(query)

    def test_cube_count_fast_path_matches_semi_join(self, ssb_small):
        engine = ExecutionEngine(ssb_small)
        for name in ("Qc1", "Qc2", "Qc3", "Qc4"):
            query = ssb_query(name, ssb_schema())
            via_cube = engine.count_answer_via_cube(query)
            assert via_cube is not None
            assert via_cube == float(engine.selection_mask(query.predicates).sum())

    def test_cube_fast_path_declines_ineligible_queries(self, ssb_small, snowflake_small):
        engine = ExecutionEngine(ssb_small)
        assert engine.count_answer_via_cube(ssb_query("Qs2", ssb_schema())) is None
        assert engine.count_answer_via_cube(ssb_query("Qg2", ssb_schema())) is None
        snowflake_engine = ExecutionEngine(snowflake_small)
        schema = snowflake_schema()
        month_domain = schema.dimensions["Month"].attributes["month"]
        snowflaked = StarJoinQuery.count(
            "snow",
            predicates=[
                RangePredicate(
                    table="Month", attribute="month", domain=month_domain,
                    low=month_domain.values[0], high=month_domain.values[3],
                )
            ],
        )
        assert snowflake_engine.count_answer_via_cube(snowflaked) is None


# ----------------------------------------------------------------------
# satellite: is_direct_dimension
# ----------------------------------------------------------------------
class TestIsDirectDimension:
    def test_star_schema_dimensions_are_direct(self, ssb_small):
        for dimension in ("Customer", "Supplier", "Part", "Date"):
            assert ssb_small.is_direct_dimension(dimension)

    def test_fact_and_snowflake_tables_are_not_direct(self, snowflake_small):
        assert snowflake_small.is_direct_dimension("Date")
        assert not snowflake_small.is_direct_dimension("Month")
        assert not snowflake_small.is_direct_dimension(snowflake_small.fact.name)
        assert not snowflake_small.is_direct_dimension("NoSuchTable")


# ----------------------------------------------------------------------
# vectorized greedy truncation == sequential greedy rule
# ----------------------------------------------------------------------
def _sequential_truncation_keep(edges, num_nodes, threshold, order):
    remaining = np.zeros(num_nodes, dtype=np.int64)
    keep = np.zeros(len(edges), dtype=bool)
    for index in order:
        u, v = edges[index]
        if remaining[u] < threshold and remaining[v] < threshold:
            keep[index] = True
            remaining[u] += 1
            remaining[v] += 1
    return keep


class TestTruncationEquivalence:
    def test_matches_sequential_rule_on_random_graphs(self):
        rng = np.random.default_rng(321)
        for _ in range(120):
            num_nodes = int(rng.integers(2, 40))
            raw = rng.integers(0, num_nodes, size=(int(rng.integers(0, 140)), 2))
            graph = Graph(num_nodes, raw)
            threshold = int(rng.integers(0, 6))
            order_rng_seed = int(rng.integers(0, 2**31))
            order = np.random.default_rng(order_rng_seed).permutation(graph.num_edges)
            expected_keep = _sequential_truncation_keep(
                graph.edges, num_nodes, threshold, order
            )
            truncated = graph.truncate_degrees(
                threshold, rng=np.random.default_rng(order_rng_seed)
            )
            assert np.array_equal(truncated.edges, graph.edges[expected_keep])
            degrees = graph.truncated_degree_sequence(
                threshold, rng=np.random.default_rng(order_rng_seed)
            )
            assert np.array_equal(degrees, truncated.degrees())
            assert degrees.max(initial=0) <= threshold

    def test_deterministic_without_rng(self, small_graph):
        truncated_a = small_graph.truncate_degrees(3)
        truncated_b = small_graph.truncate_degrees(3)
        assert np.array_equal(truncated_a.edges, truncated_b.edges)
        expected = _sequential_truncation_keep(
            small_graph.edges, small_graph.num_nodes, 3, np.arange(small_graph.num_edges)
        )
        assert np.array_equal(truncated_a.edges, small_graph.edges[expected])

    def test_star_prefix_matches_direct_counts(self, small_graph):
        for k in (1, 2, 3):
            counts = per_node_star_counts(small_graph.degrees(), k)
            for low, high in ((0, small_graph.num_nodes - 1), (5, 40), (17, 17)):
                direct = float(counts[low : high + 1].sum())
                assert kstar_count(small_graph, KStarQuery(k=k, low=low, high=high)) == direct
