"""Figure 9: error of independent PM vs Workload Decomposition on W1 / W2.

The paper answers the two star-join workloads under each privacy budget with
(a) the Predicate Mechanism applied to every query independently and (b) the
Workload Decomposition strategy (Algorithm 4), and shows that WD always
introduces lower error, especially on W1 (whose per-attribute predicate
matrices contain many repeated rows).
"""

from __future__ import annotations

import weakref
from functools import partial
from typing import Optional, Sequence

import numpy as np

from repro.core.workload import IndependentPMWorkload, WorkloadDecomposition, answer_workload_exact
from repro.datagen.ssb import ssb_schema
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database, cell_stream
from repro.evaluation.metrics import workload_relative_error
from repro.evaluation.parallel import scheduler_for, resolve_database
from repro.evaluation.reporting import ExperimentResult
from repro.rng import spawn
from repro.workloads.workload_matrices import workload_w1, workload_w2

__all__ = ["run"]

_WORKLOAD_BUILDERS = {"W1": workload_w1, "W2": workload_w2}
_MECHANISMS = {"PM": IndependentPMWorkload, "WD": WorkloadDecomposition}

#: Per-process memo of workload queries and exact answers, weakly keyed by
#: the database (matching the engine registry's pattern) so entries die with
#: their instance instead of outliving it and being served to a new database.
_EXACT_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _workload_and_exact(workload_name: str, database):
    per_database = _EXACT_CACHE.setdefault(database, {})
    entry = per_database.get(workload_name)
    if entry is None:
        queries = _WORKLOAD_BUILDERS[workload_name](ssb_schema())
        entry = (queries, answer_workload_exact(database, queries))
        per_database[workload_name] = entry
    return entry


def _workload_cell(config: ExperimentConfig, cell: tuple) -> tuple:
    """Evaluate one (workload, ε, mechanism) cell (importable worker entry
    point); returns (mean relative error, number of queries)."""
    workload_name, epsilon, mechanism_name = cell
    database = resolve_database(build_ssb_database, (config,))
    queries, exact = _workload_and_exact(workload_name, database)
    errors = []
    stream = cell_stream(config.seed, "figure9", workload_name, epsilon, mechanism_name)
    for trial_rng in spawn(stream, config.trials):
        mechanism = _MECHANISMS[mechanism_name](epsilon=epsilon)
        answer = mechanism.answer(database, queries, rng=trial_rng)
        errors.append(workload_relative_error(exact, answer.values))
    return float(np.mean(errors)), len(queries)


def run(
    config: Optional[ExperimentConfig] = None,
    epsilons: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Regenerate Figure 9 (workload error of PM vs WD by varying ε)."""
    config = config or ExperimentConfig()
    epsilons = tuple(epsilons) if epsilons is not None else config.epsilons
    # Warm the database, workload matrices and exact answers pre-fork.
    database = resolve_database(build_ssb_database, (config,))
    for workload_name in _WORKLOAD_BUILDERS:
        _workload_and_exact(workload_name, database)

    result = ExperimentResult(
        title="Figure 9: error level of PM and WD on workload queries by varying epsilon",
        notes=f"{config.trials} trials per cell.",
    )
    grid = [
        (workload_name, epsilon, mechanism_name)
        for workload_name in _WORKLOAD_BUILDERS
        for epsilon in epsilons
        for mechanism_name in _MECHANISMS
    ]
    outcomes = scheduler_for(config).map(partial(_workload_cell, config), grid)
    for (workload_name, epsilon, mechanism_name), (error, num_queries) in zip(grid, outcomes):
        result.add_row(
            workload=workload_name,
            epsilon=epsilon,
            mechanism=mechanism_name,
            relative_error_pct=error,
            num_queries=num_queries,
        )
    return result
