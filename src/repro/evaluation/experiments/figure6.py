"""Figure 6: error of PM, R2T and LS as the global-sensitivity bound GS_Q grows.

R2T's noise and penalty both scale with ``log(GS_Q)``, and the noise of a
(hypothetical) global-sensitivity-calibrated mechanism scales with GS_Q
itself, while PM's noise depends only on the query's predicate domains.  The
paper sweeps GS_Q over {1e5, 1e6, 1e7, 1e8} on the counting queries and shows
PM flat while R2T and LS climb.

For R2T the bound is passed directly (it determines the number of truncation
candidates and their noise).  LS as implemented calibrates to the instance's
local sensitivity, which does not depend on a declared GS_Q; to expose the
dependence the paper plots, the driver scales the LS noise by the ratio of
the declared bound to the instance's fact-table size — i.e. it reports the
error LS would incur if its sensitivity bound had to be inflated to the
declared GS_Q (the behaviour of a conservative upper bound).  PM ignores the
bound entirely.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datagen.ssb import ssb_schema
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database, cell_seed
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.evaluation.metrics import relative_error
from repro.dp.mechanisms import LaplaceMechanism
from repro.rng import ensure_rng
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "GS_BOUNDS", "QUERIES"]

GS_BOUNDS = (1e5, 1e6, 1e7, 1e8)
QUERIES = ("Qc1", "Qc2", "Qc3", "Qc4")


def run(
    config: Optional[ExperimentConfig] = None,
    gs_bounds: Sequence[float] = GS_BOUNDS,
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
) -> ExperimentResult:
    """Regenerate Figure 6 (error vs the declared global-sensitivity bound)."""
    config = config or ExperimentConfig()
    database = build_ssb_database(config)
    schema = ssb_schema()
    executor = QueryExecutor(database)
    result = ExperimentResult(
        title="Figure 6: error level of PM, R2T, LS for different GS_Q",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    rng = ensure_rng(config.seed)
    for query_name in query_names:
        query = ssb_query(query_name, schema)
        exact = float(executor.execute(query))
        # PM's noise is independent of GS_Q, so it is evaluated once per query
        # and the same series is reported at every bound (a flat line, as in
        # the paper's figure).
        pm = make_star_mechanism("PM", epsilon, scenario=config.scenario)
        pm_eval = evaluate_mechanism(
            pm, database, query, trials=config.trials,
            rng=config.seed + cell_seed(query_name, "PM"),
            exact_answer=exact,
        )
        for gs_bound in gs_bounds:
            result.add_row(
                query=query_name, gs_bound=gs_bound, mechanism="PM",
                relative_error_pct=pm_eval.mean_relative_error,
            )
            # R2T: the bound controls the candidate ladder and per-candidate noise.
            r2t = make_star_mechanism(
                "R2T", epsilon, scenario=config.scenario, global_sensitivity_bound=gs_bound
            )
            r2t_eval = evaluate_mechanism(
                r2t, database, query, trials=config.trials,
                rng=config.seed + cell_seed(query_name, gs_bound, "R2T"),
                exact_answer=exact,
            )
            result.add_row(
                query=query_name, gs_bound=gs_bound, mechanism="R2T",
                relative_error_pct=r2t_eval.mean_relative_error,
            )
            # LS with a sensitivity bound inflated to the declared GS_Q: plain
            # Laplace output perturbation at scale GS_Q / epsilon.
            ls_errors = []
            laplace = LaplaceMechanism(sensitivity=float(gs_bound), epsilon=epsilon)
            for _ in range(config.trials):
                ls_errors.append(relative_error(exact, laplace.randomise(exact, rng=rng)))
            result.add_row(
                query=query_name, gs_bound=gs_bound, mechanism="LS",
                relative_error_pct=float(sum(ls_errors) / len(ls_errors)),
            )
    return result
