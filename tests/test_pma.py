"""Tests for PMA — the per-attribute predicate perturbation (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.pma import PredicateMechanismForAttribute, expected_point_variance, perturb_predicate
from repro.db.domains import AttributeDomain
from repro.db.predicates import (
    PointPredicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
)
from repro.exceptions import PrivacyBudgetError, UnsupportedQueryError


@pytest.fixture()
def year_domain():
    return AttributeDomain.integer_range("year", 1992, 1998)


@pytest.fixture()
def region_domain():
    return AttributeDomain.categorical(
        "region", ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
    )


class TestConstruction:
    def test_requires_positive_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            PredicateMechanismForAttribute(epsilon=0.0)

    def test_unknown_range_mode_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            PredicateMechanismForAttribute(epsilon=1.0, range_mode="bogus")


class TestPointPerturbation:
    def test_result_stays_in_domain(self, region_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.1)
        rng = np.random.default_rng(0)
        original = PointPredicate("Customer", "region", region_domain, value="ASIA")
        for _ in range(200):
            noisy = pma.perturb(original, rng=rng)
            assert isinstance(noisy, PointPredicate)
            assert noisy.value in region_domain

    def test_perturbation_actually_moves_sometimes(self, region_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.5)
        rng = np.random.default_rng(1)
        original = PointPredicate("Customer", "region", region_domain, value="ASIA")
        values = {pma.perturb(original, rng=rng).value for _ in range(100)}
        assert len(values) > 1

    def test_huge_epsilon_keeps_value(self, region_domain):
        pma = PredicateMechanismForAttribute(epsilon=10_000.0)
        original = PointPredicate("Customer", "region", region_domain, value="ASIA")
        noisy = pma.perturb(original, rng=3)
        assert noisy.value == "ASIA"

    def test_table_and_attribute_preserved(self, region_domain):
        noisy = perturb_predicate(
            PointPredicate("Customer", "region", region_domain, value="ASIA"), epsilon=1.0, rng=2
        )
        assert noisy.table == "Customer"
        assert noisy.attribute == "region"

    def test_expected_point_variance(self, region_domain):
        assert expected_point_variance(region_domain, 1.0) == pytest.approx(50.0)


class TestRangePerturbationShift:
    def test_width_is_preserved(self, year_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.2, range_mode="shift")
        rng = np.random.default_rng(5)
        original = RangePredicate("Date", "year", year_domain, low=1993, high=1995)
        for _ in range(200):
            noisy = pma.perturb(original, rng=rng)
            assert isinstance(noisy, RangePredicate)
            width = noisy.high_code - noisy.low_code
            assert width == original.high_code - original.low_code
            assert 0 <= noisy.low_code <= noisy.high_code <= year_domain.size - 1

    def test_full_domain_range_is_fixed_point(self, year_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.1, range_mode="shift")
        original = RangePredicate("Date", "year", year_domain, low=1992, high=1998)
        noisy = pma.perturb(original, rng=7)
        assert noisy.low == 1992
        assert noisy.high == 1998

    def test_shift_moves_interval_sometimes(self, year_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.5, range_mode="shift")
        rng = np.random.default_rng(9)
        original = RangePredicate("Date", "year", year_domain, low=1993, high=1994)
        lows = {pma.perturb(original, rng=rng).low for _ in range(100)}
        assert len(lows) > 1


class TestRangePerturbationEndpoints:
    def test_interval_is_valid(self, year_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.2, range_mode="endpoints")
        rng = np.random.default_rng(11)
        original = RangePredicate("Date", "year", year_domain, low=1993, high=1996)
        for _ in range(200):
            noisy = pma.perturb(original, rng=rng)
            assert noisy.low_code <= noisy.high_code
            assert 0 <= noisy.low_code
            assert noisy.high_code <= year_domain.size - 1

    def test_width_can_change(self, year_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.2, range_mode="endpoints")
        rng = np.random.default_rng(13)
        original = RangePredicate("Date", "year", year_domain, low=1994, high=1995)
        widths = {
            pma.perturb(original, rng=rng).high_code - pma.perturb(original, rng=rng).low_code
            for _ in range(100)
        }
        assert len(widths) > 1

    def test_single_value_domain_survives(self):
        domain = AttributeDomain.from_values("only", (42,))
        pma = PredicateMechanismForAttribute(epsilon=0.5, range_mode="endpoints")
        original = RangePredicate("T", "only", domain, low=42, high=42)
        noisy = pma.perturb(original, rng=1)
        assert noisy.low == 42 and noisy.high == 42


class TestSetAndTruePerturbation:
    def test_set_members_stay_in_domain(self, region_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.3)
        original = SetPredicate(
            "Part", "region", region_domain, values=("ASIA", "EUROPE")
        )
        rng = np.random.default_rng(17)
        for _ in range(100):
            noisy = pma.perturb(original, rng=rng)
            assert isinstance(noisy, SetPredicate)
            assert 1 <= len(noisy.values) <= 2
            assert all(value in region_domain for value in noisy.values)

    def test_true_predicate_unchanged(self, region_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.3)
        original = TruePredicate("Customer", "region", region_domain)
        assert pma.perturb(original, rng=1) is original

    def test_reproducibility_with_seed(self, region_domain):
        pma = PredicateMechanismForAttribute(epsilon=0.3)
        original = PointPredicate("Customer", "region", region_domain, value="ASIA")
        assert pma.perturb(original, rng=21).value == pma.perturb(original, rng=21).value
