"""Figure 8: error of PM, R2T and LS for different predicate domain sizes.

The paper extends the SSB counting query to five two-dimension predicate
combinations of growing domain size (5×7, 5×10², 250×10², 5×366, 250×366) and
shows that PM's error grows only mildly with the domain size (the
perturbation stays inside the domain, which dampens the noise) while
remaining orders of magnitude below R2T and LS.

Our SSB schema carries the standard SSB hierarchies, so the sweep uses the
analogous two-attribute combinations of increasing domain product available
in it (region×year up to nation×city).  The largest products are kept
proportional to the (scaled-down) fact-table size so each query still selects
a meaningful number of rows — the paper's sweep tops out at 250×366 on a 6M
row fact table, i.e. roughly 65 rows per domain cell, and the combinations
below preserve that ratio.  The row label records the attributes and the
exact product so the series remains directly comparable with the paper's
trend.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence

from repro.datagen.ssb import ssb_schema
from repro.db.predicates import PointPredicate
from repro.db.query import StarJoinQuery
from repro.evaluation.experiments.common import ExperimentConfig, build_ssb_database
from repro.evaluation.parallel import StarCell, scheduler_for, run_star_cell
from repro.evaluation.reporting import ExperimentResult

__all__ = ["run", "DOMAIN_COMBINATIONS"]

#: (label, [(table, attribute, value), (table, attribute, value)]) pairs of
#: growing domain-size product.
DOMAIN_COMBINATIONS: tuple[tuple[str, tuple[tuple[str, str, object], ...]], ...] = (
    ("5x7", (("Customer", "region", "ASIA"), ("Date", "year", 1994))),
    ("25x7", (("Customer", "nation", "CHINA"), ("Date", "year", 1994))),
    ("250x7", (("Customer", "city", "CHINA#3"), ("Date", "year", 1994))),
    ("5x1000", (("Customer", "region", "ASIA"), ("Part", "brand", "MFGR#1205"))),
    ("25x250", (("Customer", "nation", "CHINA"), ("Supplier", "city", "PERU#1"))),
)

MECHANISMS = ("PM", "R2T", "LS")


def build_domain_query(
    label: str, spec: Sequence[tuple[str, str, object]], schema=None
) -> StarJoinQuery:
    """Build one of the two-dimension counting queries of the sweep."""
    schema = schema or ssb_schema()
    predicates = []
    for table, attribute, value in spec:
        domain = schema.table_schema(table).domain_of(attribute)
        predicates.append(
            PointPredicate(table=table, attribute=attribute, domain=domain, value=value)
        )
    return StarJoinQuery.count(f"Qdom[{label}]", predicates)


def run(
    config: Optional[ExperimentConfig] = None,
    epsilon: float = 0.5,
    combinations: Sequence[tuple[str, tuple[tuple[str, str, object], ...]]] = DOMAIN_COMBINATIONS,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 8 (error vs predicate domain size)."""
    config = config or ExperimentConfig()
    build_ssb_database(config)  # warm the shared cache before the pool forks
    schema = ssb_schema()
    result = ExperimentResult(
        title="Figure 8: error level for different predicate domain sizes",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    domain_products = {}
    for label, spec in combinations:
        query = build_domain_query(label, spec, schema)
        product = 1
        for predicate in query.predicates:
            product *= predicate.domain_size
        domain_products[label] = product
    grid = [
        StarCell(
            mechanism=mechanism_name,
            epsilon=epsilon,
            query_builder=build_domain_query,
            query_args=(label, spec),
            database_builder=build_ssb_database,
            database_args=(config,),
            stream=("figure8", label, mechanism_name),
        )
        for label, spec in combinations
        for mechanism_name in mechanisms
    ]
    evaluations = scheduler_for(config).map(partial(run_star_cell, config), grid)
    for cell, evaluation in zip(grid, evaluations):
        label = cell.query_args[0]
        result.add_row(
            domain_sizes=label,
            domain_product=domain_products[label],
            mechanism=cell.mechanism,
            relative_error_pct=(
                None if evaluation.unsupported else evaluation.mean_relative_error
            ),
        )
    return result
