"""Benchmark: regenerate Figure 9 (PM vs Workload Decomposition on W1 / W2).

Expected shape (paper Figure 9): WD introduces no more error than answering
every workload query independently with PM, with the largest gains on W1.
"""

import numpy as np

from _bench_utils import errors_of
from repro.evaluation.experiments import figure9


def test_figure9(benchmark, bench_config, record_result):
    result = benchmark.pedantic(lambda: figure9.run(bench_config), rounds=1, iterations=1)
    record_result(result, "figure9")

    for workload in ("W1", "W2"):
        pm = np.mean(errors_of(result, workload=workload, mechanism="PM"))
        wd = np.mean(errors_of(result, workload=workload, mechanism="WD"))
        # WD never does meaningfully worse than independent PM.
        assert wd <= pm * 1.25 + 2.0

    # The W1 gain is the visible one (repeated predicates compress well); at
    # benchmark scale it can shrink to a tie, so only a clear regression fails.
    pm_w1 = np.mean(errors_of(result, workload="W1", mechanism="PM"))
    wd_w1 = np.mean(errors_of(result, workload="W1", mechanism="WD"))
    assert wd_w1 <= pm_w1 * 1.25 + 2.0
