"""Planning and executing served query requests.

The planner is the bridge between the wire protocol and the offline
evaluation stack.  It owns the server's database registry (generated SSB /
snowflake / k-star instances, warmed through the shared
:class:`~repro.db.engine.ExecutionEngine` and whatever cache backend is
active) and turns each ``query`` request into a :class:`PlannedQuery`:
a resolved query object, a mechanism name, a privacy charge, and — the part
that makes serving reproducible — the request's *stream label*.

Determinism contract
--------------------
A served answer is a pure function of ``(master seed, stream label)``.  The
label is derived from the request's semantics (database name, mechanism,
query fingerprint, ε, trials), hashed through the same
:func:`~repro.evaluation.experiments.common.cell_stream` SHA-256 scheme the
offline drivers use, and the execution path *is* the offline path:
:func:`~repro.evaluation.runner.evaluate_mechanism` /
:func:`~repro.evaluation.runner.evaluate_kstar_mechanism` with that stream.
Running the same request offline with :func:`request_stream` therefore
produces byte-identical answers — the parity the serving tests pin, for the
local and the shared cache backend alike.  Because the label ignores *who*
asks and *when*, concurrent identical requests are also identical
computations, which is what makes single-flight coalescing
(:mod:`repro.serving.singleflight`) safe.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable, Optional

import numpy as np

from repro.datagen.ssb import SSBConfig, SSBGenerator
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator
from repro.db.cache import query_fingerprint
from repro.db.engine import ExecutionEngine
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.query import StarJoinQuery
from repro.db.sql import parse_star_join_sql
from repro.dp.neighboring import PrivacyScenario
from repro.evaluation.experiments.common import (
    DEFAULT_PRIVATE_DIMENSIONS,
    cell_stream,
)
from repro.evaluation.runner import (
    KSTAR_MECHANISMS,
    STAR_MECHANISMS,
    EvaluationResult,
    evaluate_kstar_mechanism,
    evaluate_mechanism,
    make_kstar_mechanism,
    make_star_mechanism,
)
from repro.exceptions import DataGenerationError, QueryError, ReproError
from repro.graph.generators import amazon_like, deezer_like, powerlaw_graph
from repro.graph.kstar import KStarQuery, kstar_count
from repro.obs.trace import span
from repro.serving.protocol import ServingError
from repro.serving.singleflight import SingleFlight
from repro.workloads.kstar_queries import kstar_query
from repro.workloads.ssb_queries import ssb_query
from repro.workloads.tpch_queries import snowflake_queries

__all__ = [
    "DATABASE_KINDS",
    "MAX_TRIALS",
    "PlannedQuery",
    "QueryPlanner",
    "RegisteredDatabase",
    "request_stream",
    "serialize_answer",
]

#: Registerable database kinds.
DATABASE_KINDS = ("ssb", "snowflake", "kstar")

#: Upper bound on per-request trials (a request is interactive, not a sweep).
MAX_TRIALS = 100


# ----------------------------------------------------------------------
# JSON-friendly result serialisation
# ----------------------------------------------------------------------
def _json_scalar(value: Any) -> Any:
    """Coerce numpy scalars / odd key types into JSON-serialisable ones."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return str(value)


def serialize_answer(answer: Any) -> Any:
    """One noisy answer as a JSON value.

    Scalars stay scalars; a :class:`GroupedResult` becomes
    ``{"keys": [...], "groups": [[key values..., value], ...]}`` with the
    groups sorted by key, so equal answers serialise to equal JSON — the
    currency of the byte-identity parity tests.
    """
    if isinstance(answer, GroupedResult):
        groups = sorted(
            ([_json_scalar(part) for part in key] + [float(value)]
             for key, value in answer.groups.items()),
            key=lambda row: [str(part) for part in row[:-1]],
        )
        return {
            "keys": [f"{table}.{attribute}" for table, attribute in answer.keys],
            "groups": groups,
        }
    return float(answer)


def request_stream(
    seed: int,
    database: str,
    mechanism: str,
    query_label: Hashable,
    epsilon: float,
    trials: int,
) -> np.random.SeedSequence:
    """The seed stream a served request draws its noise from.

    Exposed so offline code (the parity tests, notebooks) can reproduce a
    served answer exactly: pass the server's master seed and the request's
    coordinates and feed the returned stream to
    :func:`~repro.evaluation.runner.evaluate_mechanism`.
    """
    return cell_stream(
        seed, "serve", database, mechanism, query_label, float(epsilon), int(trials)
    )


# ----------------------------------------------------------------------
# registry entries and planned requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisteredDatabase:
    """One registered instance: the built database plus its normalised spec."""

    name: str
    kind: str
    spec: tuple  # canonical (sorted) parameter items, for idempotent re-register
    database: Any  # StarDatabase for ssb/snowflake, Graph for kstar
    scenario: Optional[PrivacyScenario]  # None for graph databases

    @property
    def is_graph(self) -> bool:
        return self.kind == "kstar"

    def info(self) -> dict:
        payload = {"name": self.name, "kind": self.kind, "spec": dict(self.spec)}
        if self.is_graph:
            payload["num_nodes"] = int(self.database.num_nodes)
            payload["num_edges"] = int(len(self.database.edges))
        else:
            payload["fact_rows"] = int(self.database.fact.num_rows)
            payload["dimensions"] = sorted(self.database.dimensions)
            payload["private_dimensions"] = list(self.scenario.private_dimensions)
        return payload


@dataclass(frozen=True)
class PlannedQuery:
    """A validated, executable request with its determinism coordinates."""

    entry: RegisteredDatabase
    mechanism: str
    epsilon: float
    trials: int
    query: Any  # StarJoinQuery or KStarQuery
    query_label: Hashable  # semantic query key entering the stream label
    parallel: bool  # GROUP BY → parallel composition at the ledger

    @property
    def key(self) -> Hashable:
        """Coalescing key == determinism coordinates (identical requests only)."""
        return (
            self.entry.name,
            self.mechanism,
            self.query_label,
            float(self.epsilon),
            int(self.trials),
        )

    @property
    def query_name(self) -> str:
        return self.query.name if hasattr(self.query, "name") else self.query.label


# ----------------------------------------------------------------------
# the planner
# ----------------------------------------------------------------------
class QueryPlanner:
    """Database registry + request planning/execution for the server.

    ``storage="mapped"`` makes every registered star/snowflake database spill
    once to ``data_dir/<name>`` and attach read-only (see ``docs/STORAGE.md``):
    multiple serving processes registering the same spec share one on-disk
    copy through the page cache instead of each materialising its own arrays,
    and restarts attach instantly.  Served answers are byte-identical to the
    in-memory storage mode — the determinism contract above is unchanged.
    """

    def __init__(
        self,
        seed: int = 20230711,
        storage: str = "memory",
        data_dir: Optional[str] = None,
    ):
        if storage not in ("memory", "mapped"):
            raise ValueError(f"storage must be 'memory' or 'mapped', got {storage!r}")
        if storage == "mapped" and not data_dir:
            raise ValueError('storage="mapped" requires data_dir')
        self.seed = int(seed)
        self.storage = storage
        self.data_dir = data_dir
        self._databases: dict[str, RegisteredDatabase] = {}
        self._lock = threading.Lock()
        self.singleflight = SingleFlight()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, name: str, kind: str, **params: Any) -> dict:
        """Build and register a generated database under ``name``.

        Re-registering the same (kind, params) under the same name is
        idempotent; a conflicting spec is refused (``already_registered``)
        rather than silently replacing a database other analysts may be
        querying.  Returns the entry's info payload.
        """
        if not name or not isinstance(name, str):
            raise ServingError("bad_request", "register requires a non-empty string 'name'")
        if kind not in DATABASE_KINDS:
            raise ServingError(
                "bad_request",
                f"unknown database kind {kind!r}; available: {DATABASE_KINDS}",
            )
        spec = tuple(sorted(params.items()))
        with self._lock:
            existing = self._databases.get(name)
        if existing is not None:
            if existing.kind == kind and existing.spec == spec:
                payload = existing.info()
                payload["already_registered"] = True
                return payload
            raise ServingError(
                "already_registered",
                f"database {name!r} is already registered with a different spec",
                name=name,
            )
        entry = self._build(name, kind, spec, params)
        with self._lock:
            raced = self._databases.get(name)
            if raced is not None:
                if raced.kind == kind and raced.spec == spec:
                    entry = raced
                else:
                    raise ServingError(
                        "already_registered",
                        f"database {name!r} is already registered with a different spec",
                        name=name,
                    )
            else:
                self._databases[name] = entry
        return entry.info()

    def _build(self, name: str, kind: str, spec: tuple, params: dict) -> RegisteredDatabase:
        params = dict(params)
        try:
            if kind in ("ssb", "snowflake"):
                return self._build_star(name, kind, spec, params)
            return self._build_graph(name, spec, params)
        except (DataGenerationError, TypeError, ValueError) as error:
            raise ServingError(
                "bad_request", f"cannot build {kind!r} database {name!r}: {error}"
            ) from None

    def _build_star(self, name: str, kind: str, spec: tuple, params: dict) -> RegisteredDatabase:
        private = params.pop("private_dimensions", None)
        config_cls = SSBConfig if kind == "ssb" else SnowflakeConfig
        config = config_cls(
            scale_factor=float(params.pop("scale_factor", 1.0)),
            rows_per_scale_factor=int(params.pop("rows_per_scale_factor", 8_000)),
            key_distribution=params.pop("key_distribution", "uniform"),
            measure_distribution=params.pop("measure_distribution", "uniform"),
            seed=int(params.pop("seed", self.seed)),
        )
        if params:
            raise ServingError(
                "bad_request", f"unknown register parameters: {sorted(params)}"
            )
        generator = SSBGenerator(config) if kind == "ssb" else SnowflakeGenerator(config)
        if self.storage == "mapped":
            # Spill-or-attach under the registered name: a process that finds
            # the manifest already on disk (an earlier registration, another
            # serving process, a restart) attaches without generating at all;
            # the spill itself is idempotent and race-safe.
            from repro.db.storage import MANIFEST_NAME, attach_database

            instance_dir = Path(self.data_dir) / name
            if not (instance_dir / MANIFEST_NAME).is_file():
                generator.spill_to(instance_dir)
            database = attach_database(instance_dir)
        else:
            database = generator.build()
        # Warm the shared engine now so the first served query does not pay
        # for engine construction; caches route to the active backend.
        ExecutionEngine.for_database(database)
        if private is None:
            private = [d for d in DEFAULT_PRIVATE_DIMENSIONS if d in database.dimensions]
            if not private:
                private = sorted(database.dimensions)
        else:
            private = [str(d) for d in private]
            unknown = [d for d in private if d not in database.dimensions]
            if unknown:
                raise ServingError(
                    "bad_request", f"private_dimensions not in schema: {unknown}"
                )
        scenario = PrivacyScenario.dimensions(*private)
        return RegisteredDatabase(name, kind, spec, database, scenario)

    def _build_graph(self, name: str, spec: tuple, params: dict) -> RegisteredDatabase:
        generator = params.pop("generator", "deezer")
        seed = int(params.pop("seed", self.seed))
        scale = float(params.pop("scale", 0.01))
        if generator == "powerlaw":
            graph = powerlaw_graph(
                num_nodes=int(params.pop("num_nodes", 1_000)),
                num_edges=int(params.pop("num_edges", 5_000)),
                exponent=float(params.pop("exponent", 2.5)),
                rng=seed,
            )
        elif generator in ("deezer", "amazon"):
            builder = deezer_like if generator == "deezer" else amazon_like
            graph = builder(rng=seed, scale=scale)
        else:
            raise ServingError(
                "bad_request",
                f"unknown graph generator {generator!r}; "
                "available: deezer, amazon, powerlaw",
            )
        if params:
            raise ServingError(
                "bad_request", f"unknown register parameters: {sorted(params)}"
            )
        return RegisteredDatabase(name, "kstar", spec, graph, None)

    # ------------------------------------------------------------------
    def database(self, name: str) -> RegisteredDatabase:
        with self._lock:
            entry = self._databases.get(name)
        if entry is None:
            with self._lock:
                available = sorted(self._databases)
            raise ServingError(
                "unknown_database",
                f"no database registered under {name!r}",
                available=available,
            )
        return entry

    def databases(self) -> list[dict]:
        with self._lock:
            entries = list(self._databases.values())
        return [entry.info() for entry in entries]

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, request: dict) -> PlannedQuery:
        """Validate a ``query`` request and resolve it into a plan."""
        entry = self.database(self._require_str(request, "database"))
        mechanism = self._require_str(request, "mechanism").upper()
        allowed = KSTAR_MECHANISMS if entry.is_graph else STAR_MECHANISMS
        if mechanism not in allowed:
            raise ServingError(
                "bad_request",
                f"unknown mechanism {mechanism!r} for a {entry.kind} database; "
                f"available: {list(allowed)}",
            )
        try:
            epsilon = float(request.get("epsilon", 0.0))
            delta = float(request.get("delta", 0.0))
        except (TypeError, ValueError):
            raise ServingError("bad_request", "epsilon/delta must be numbers") from None
        if not epsilon > 0:
            raise ServingError("bad_request", f"epsilon must be positive, got {epsilon!r}")
        if delta != 0:
            # Every available mechanism is pure DP; accepting (and charging)
            # a δ that cannot influence the answer would bill the analyst's
            # δ budget for nothing.
            raise ServingError(
                "bad_request",
                "all mechanisms are pure DP (delta = 0); drop the 'delta' field",
            )
        try:
            trials = int(request.get("trials", 1))
        except (TypeError, ValueError):
            raise ServingError("bad_request", "trials must be an integer") from None
        if not 1 <= trials <= MAX_TRIALS:
            raise ServingError(
                "bad_request", f"trials must lie in [1, {MAX_TRIALS}], got {trials}"
            )

        if entry.is_graph:
            query, label = self._resolve_kstar_query(entry, request)
            parallel = False
        else:
            query, label = self._resolve_star_query(entry, request)
            parallel = query.is_grouped
        return PlannedQuery(
            entry=entry,
            mechanism=mechanism,
            epsilon=epsilon,
            trials=trials,
            query=query,
            query_label=label,
            parallel=parallel,
        )

    @staticmethod
    def _require_str(request: dict, field: str) -> str:
        value = request.get(field)
        if not value or not isinstance(value, str):
            raise ServingError("bad_request", f"request requires a string {field!r} field")
        return value

    def _resolve_star_query(
        self, entry: RegisteredDatabase, request: dict
    ) -> tuple[StarJoinQuery, Hashable]:
        sql = request.get("sql")
        named = request.get("query")
        if (sql is None) == (named is None):
            raise ServingError(
                "bad_request", "a star-join request needs exactly one of 'sql' or 'query'"
            )
        schema = entry.database.schema
        try:
            if sql is not None:
                query = parse_star_join_sql(str(sql), schema, name="sql")
            elif entry.kind == "ssb":
                query = ssb_query(str(named), schema)
            else:
                by_name = {q.name: q for q in snowflake_queries(schema)}
                if named not in by_name:
                    raise QueryError(
                        f"unknown snowflake query {named!r}; available: {sorted(by_name)}"
                    )
                query = by_name[named]
        except QueryError as error:
            raise ServingError("query_error", str(error)) from None
        # The *semantic* fingerprint keys the stream and the flight: the SQL
        # spelling of a named query coalesces with (and answers identically
        # to) the named form.
        fingerprint = query_fingerprint(query)
        label = str(fingerprint) if fingerprint is not None else query.describe()
        return query, label

    @staticmethod
    def _resolve_kstar_query(
        entry: RegisteredDatabase, request: dict
    ) -> tuple[KStarQuery, Hashable]:
        try:
            k = int(request.get("k", 0))
        except (TypeError, ValueError):
            raise ServingError("bad_request", "a k-star request needs an integer 'k'") from None
        if not 2 <= k <= 10:
            raise ServingError("bad_request", f"k must lie in [2, 10], got {k}")
        return kstar_query(k, entry.database), f"kstar:{k}"

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, planned: PlannedQuery) -> dict:
        """Execute a plan (single-flighted) and return the result payload.

        Concurrent identical plans share one engine execution; each caller
        gets its own payload dict with ``coalesced`` flagging whether the
        answer came from another caller's in-flight execution.
        """
        base, shared = self.singleflight.do(planned.key, lambda: self._execute(planned))
        payload = dict(base)
        payload["coalesced"] = shared
        return payload

    def _execute(self, planned: PlannedQuery) -> dict:
        stream = request_stream(
            self.seed,
            planned.entry.name,
            planned.mechanism,
            planned.query_label,
            planned.epsilon,
            planned.trials,
        )
        # One span per *engine execution*: coalesced callers share it (their
        # payloads flag `coalesced`), so traced time is never double-counted.
        with span(
            "serve.execute",
            database=planned.entry.name,
            mechanism=planned.mechanism,
            query=str(planned.query_name),
            trials=planned.trials,
        ):
            try:
                if planned.entry.is_graph:
                    result = self._execute_kstar(planned, stream)
                else:
                    result = self._execute_star(planned, stream)
            except ServingError:
                raise
            except ReproError as error:
                raise ServingError("query_error", str(error)) from None
        if result.unsupported:
            raise ServingError(
                "unsupported",
                result.message or
                f"{planned.mechanism} does not support query {planned.query_name!r}",
                mechanism=planned.mechanism,
                query=planned.query_name,
            )
        answers = [serialize_answer(answer) for answer in result.answers]
        return {
            "database": planned.entry.name,
            "mechanism": planned.mechanism,
            "query": planned.query_name,
            "epsilon": planned.epsilon,
            "trials": planned.trials,
            "composition": "parallel" if planned.parallel else "sequential",
            "answer": answers[0],
            "answers": answers,
            # Reproduction-benchmark metadata, not part of the DP release: the
            # relative errors are measured against the exact answer.
            "mean_relative_error": result.mean_relative_error,
            "median_relative_error": result.median_relative_error,
            "mean_time_s": result.mean_time,
        }

    def _execute_star(
        self, planned: PlannedQuery, stream: np.random.SeedSequence
    ) -> EvaluationResult:
        database = planned.entry.database
        mechanism = make_star_mechanism(
            planned.mechanism, planned.epsilon, scenario=planned.entry.scenario
        )
        exact = QueryExecutor(database).execute(planned.query)
        with span("mechanism.trials", mechanism=planned.mechanism, trials=planned.trials):
            return evaluate_mechanism(
                mechanism,
                database,
                planned.query,
                trials=planned.trials,
                rng=stream,
                exact_answer=exact,
                record_answers=True,
            )

    def _execute_kstar(
        self, planned: PlannedQuery, stream: np.random.SeedSequence
    ) -> EvaluationResult:
        graph = planned.entry.database
        mechanism = make_kstar_mechanism(planned.mechanism, planned.epsilon)
        exact = kstar_count(graph, planned.query)
        with span("mechanism.trials", mechanism=planned.mechanism, trials=planned.trials):
            return evaluate_kstar_mechanism(
                mechanism,
                graph,
                planned.query,
                trials=planned.trials,
                rng=stream,
                exact_answer=exact,
                record_answers=True,
            )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            names = sorted(self._databases)
        return {"databases": names, "singleflight": self.singleflight.stats()}
