"""Tests for the online query-serving subsystem.

The contracts under test (see docs/SERVING.md):

* the per-analyst ledger admits sequential and parallel charges atomically
  and refuses overspend with a structured ``budget_exhausted`` error;
* served answers are byte-identical to the offline runner path under a fixed
  seed, for the local and the shared cache backend alike;
* concurrent identical requests coalesce into one engine execution;
* the TCP server round-trips queries, budgets, refusals and refunds as
  structured JSON — never a traceback.
"""

import json
import socket
import threading
import time

import pytest

from repro.db.cache import (
    LocalCacheBackend,
    RemoteCacheBackend,
    SharedMemoryCacheBackend,
    backend_scope,
)
from repro.db.executor import QueryExecutor
from repro.dp.accountant import PrivacyBudget
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.serving import (
    BudgetLedger,
    QueryPlanner,
    QueryServer,
    ServerThread,
    ServingClient,
    ServingError,
    SingleFlight,
    request_stream,
    serialize_answer,
)
from repro.serving.protocol import decode_line, encode_message

SEED = 424242


@pytest.fixture(scope="module")
def planner():
    planner = QueryPlanner(seed=SEED)
    planner.register("demo", "ssb", scale_factor=1.0, rows_per_scale_factor=2000, seed=5)
    planner.register("g1", "kstar", generator="powerlaw", num_nodes=200, num_edges=600, seed=3)
    return planner


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_message_round_trip(self):
        message = {"op": "query", "epsilon": 0.5, "id": 7}
        assert decode_line(encode_message(message)) == message

    def test_decode_rejects_non_json(self):
        with pytest.raises(ServingError) as info:
            decode_line(b"definitely not json\n")
        assert info.value.code == "bad_request"

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServingError):
            decode_line(b"[1, 2, 3]\n")

    def test_error_payload_round_trip(self):
        error = ServingError("budget_exhausted", "no more", remaining_epsilon=0.25)
        back = ServingError.from_payload(error.to_payload())
        assert back.code == "budget_exhausted"
        assert back.details["remaining_epsilon"] == 0.25

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            ServingError("not-a-code", "nope")


# ----------------------------------------------------------------------
# ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_sequential_admissions_accumulate(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        ledger.admit("alice", PrivacyBudget(0.4))
        ledger.admit("alice", PrivacyBudget(0.6))
        summary = ledger.summary("alice")
        assert summary["spent_epsilon"] == pytest.approx(1.0)
        assert summary["remaining_epsilon"] == pytest.approx(0.0)

    def test_refusal_is_structured_and_leaves_account_untouched(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        ledger.admit("alice", PrivacyBudget(0.8))
        with pytest.raises(ServingError) as info:
            ledger.admit("alice", PrivacyBudget(0.4))
        error = info.value
        assert error.code == "budget_exhausted"
        assert error.details["analyst"] == "alice"
        assert error.details["remaining_epsilon"] == pytest.approx(0.2)
        assert error.details["requested_epsilon"] == 0.4
        # Refusal charged nothing; a fitting request is still admitted.
        ledger.admit("alice", PrivacyBudget(0.2))

    def test_analysts_are_isolated(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        ledger.admit("alice", PrivacyBudget(1.0))
        ledger.admit("bob", PrivacyBudget(1.0))  # bob has his own accountant
        with pytest.raises(ServingError):
            ledger.admit("alice", PrivacyBudget(0.1))

    def test_parallel_admission_is_recorded_as_parallel(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        ledger.admit("alice", PrivacyBudget(0.5), label="Qg2", parallel=True)
        assert ledger.summary("alice")["spent_epsilon"] == pytest.approx(0.5)

    def test_refund_restores_headroom(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        budget = PrivacyBudget(0.7)
        ledger.admit("alice", budget)
        ledger.refund("alice", budget)
        ledger.admit("alice", PrivacyBudget(1.0))  # full budget available again

    def test_analyst_capacity_is_bounded(self):
        ledger = BudgetLedger(PrivacyBudget(1.0), max_analysts=2)
        ledger.admit("alice", PrivacyBudget(0.1))
        ledger.admit("bob", PrivacyBudget(0.1))
        with pytest.raises(ServingError) as info:
            ledger.admit("carol", PrivacyBudget(0.1))
        assert info.value.code == "bad_request"
        # Existing analysts are unaffected by the cap.
        ledger.admit("alice", PrivacyBudget(0.1))

    def test_budget_probe_does_not_allocate_an_account(self):
        ledger = BudgetLedger(PrivacyBudget(1.0), max_analysts=1)
        for index in range(5):  # probes for fresh names never hit the cap
            summary = ledger.summary(f"probe-{index}")
            assert summary["spent_epsilon"] == 0.0
        ledger.admit("alice", PrivacyBudget(0.1))  # the one slot is still free

    def test_concurrent_admissions_never_overspend(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        outcomes = []

        def worker():
            try:
                ledger.admit("alice", PrivacyBudget(0.1))
                outcomes.append(True)
            except ServingError:
                outcomes.append(False)

        threads = [threading.Thread(target=worker) for _ in range(20)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == 10
        assert ledger.summary("alice")["spent_epsilon"] <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_register_same_spec_is_idempotent(self, planner):
        info = planner.register(
            "demo", "ssb", scale_factor=1.0, rows_per_scale_factor=2000, seed=5
        )
        assert info["already_registered"] is True

    def test_register_conflicting_spec_is_refused(self, planner):
        with pytest.raises(ServingError) as info:
            planner.register(
                "demo", "ssb", scale_factor=2.0, rows_per_scale_factor=2000, seed=5
            )
        assert info.value.code == "already_registered"

    def test_register_unknown_kind_is_refused(self, planner):
        with pytest.raises(ServingError) as info:
            planner.register("x", "oracle")
        assert info.value.code == "bad_request"

    def test_register_unknown_parameter_is_refused(self, planner):
        with pytest.raises(ServingError):
            planner.register("x", "ssb", wibble=3)

    def test_unknown_database_is_structured(self, planner):
        with pytest.raises(ServingError) as info:
            planner.plan({"database": "nope", "mechanism": "PM", "epsilon": 0.5, "query": "Qc1"})
        assert info.value.code == "unknown_database"
        assert "demo" in info.value.details["available"]

    @pytest.mark.parametrize(
        "patch",
        [
            {"mechanism": "XX"},
            {"epsilon": -1.0},
            {"epsilon": "much"},
            {"trials": 0},
            {"trials": 1000},
            {"delta": 1e-6},
            {"query": None, "sql": None},
            {"query": "Qc1", "sql": "SELECT count(*) FROM Lineorder"},
        ],
    )
    def test_invalid_requests_are_bad_requests(self, planner, patch):
        request = {"database": "demo", "mechanism": "PM", "epsilon": 0.5, "query": "Qc1"}
        request.update(patch)
        request = {key: value for key, value in request.items() if value is not None}
        with pytest.raises(ServingError) as info:
            planner.plan(request)
        assert info.value.code == "bad_request"

    def test_bad_sql_is_a_query_error(self, planner):
        with pytest.raises(ServingError) as info:
            planner.plan(
                {
                    "database": "demo",
                    "mechanism": "PM",
                    "epsilon": 0.5,
                    "sql": "SELECT count(*) FROM Lineorder HAVING count(*) > 1",
                }
            )
        assert info.value.code == "query_error"

    def test_sql_and_named_query_share_stream_and_flight(self, planner):
        named = planner.plan(
            {"database": "demo", "mechanism": "PM", "epsilon": 0.5, "query": "Qc1"}
        )
        sql = planner.plan(
            {
                "database": "demo",
                "mechanism": "PM",
                "epsilon": 0.5,
                "sql": "SELECT count(*) FROM Lineorder, Date WHERE Date.year = 1993",
            }
        )
        assert named.query_label == sql.query_label
        assert named.key == sql.key
        assert planner.execute(named)["answers"] == planner.execute(sql)["answers"]

    def test_grouped_query_plans_parallel_composition(self, planner):
        planned = planner.plan(
            {"database": "demo", "mechanism": "PM", "epsilon": 0.5, "query": "Qg2"}
        )
        assert planned.parallel is True

    def test_unsupported_combination_is_structured(self, planner):
        planned = planner.plan(
            {"database": "demo", "mechanism": "LS", "epsilon": 0.5, "query": "Qs2"}
        )
        with pytest.raises(ServingError) as info:
            planner.execute(planned)
        assert info.value.code == "unsupported"

    def test_kstar_query_round_trip(self, planner):
        planned = planner.plan(
            {"database": "g1", "mechanism": "PM", "epsilon": 0.5, "k": 2}
        )
        payload = planner.execute(planned)
        assert payload["answer"] == pytest.approx(payload["answers"][0])
        repeat = planner.execute(planned)
        assert repeat["answers"] == payload["answers"]

    def test_kstar_requires_k(self, planner):
        with pytest.raises(ServingError) as info:
            planner.plan({"database": "g1", "mechanism": "PM", "epsilon": 0.5})
        assert info.value.code == "bad_request"


# ----------------------------------------------------------------------
# determinism / parity with the offline runner
# ----------------------------------------------------------------------
class TestOfflineParity:
    """Served answers are byte-identical to the offline runner path."""

    def _offline_answers(self, planner, planned):
        entry = planned.entry
        mechanism = make_star_mechanism(
            planned.mechanism, planned.epsilon, scenario=entry.scenario
        )
        result = evaluate_mechanism(
            mechanism,
            entry.database,
            planned.query,
            trials=planned.trials,
            rng=request_stream(
                planner.seed,
                entry.name,
                planned.mechanism,
                planned.query_label,
                planned.epsilon,
                planned.trials,
            ),
            exact_answer=QueryExecutor(entry.database).execute(planned.query),
            record_answers=True,
        )
        return result

    @pytest.mark.parametrize("mechanism,query", [("PM", "Qc1"), ("R2T", "Qs2"), ("PM", "Qg2")])
    def test_served_equals_offline(self, planner, mechanism, query):
        planned = planner.plan(
            {
                "database": "demo",
                "mechanism": mechanism,
                "epsilon": 0.5,
                "query": query,
                "trials": 3,
            }
        )
        payload = planner.execute(planned)
        offline = self._offline_answers(planner, planned)
        assert payload["answers"] == [serialize_answer(a) for a in offline.answers]
        assert payload["mean_relative_error"] == offline.mean_relative_error

    def test_parity_across_cache_backends(self, planner):
        """--cache-backend local and shared serve identical bytes."""
        request = {
            "database": "demo",
            "mechanism": "PM",
            "epsilon": 0.5,
            "query": "Qc3",
            "trials": 2,
        }
        with backend_scope(LocalCacheBackend(64)):
            local = planner.execute(planner.plan(request))
        shared_backend = SharedMemoryCacheBackend(64)
        try:
            with backend_scope(shared_backend):
                shared = planner.execute(planner.plan(request))
                # Run twice under the shared tier: the second pass is served
                # from cache and must not change the bytes either.
                shared_again = planner.execute(planner.plan(request))
        finally:
            shared_backend.close()
        assert (
            json.dumps(local["answers"])
            == json.dumps(shared["answers"])
            == json.dumps(shared_again["answers"])
        )
        assert local["mean_relative_error"] == shared["mean_relative_error"]

    def test_parity_with_tracing_on(self, planner, tmp_path):
        """--trace-path observes the request; the bytes must not move."""
        from repro.obs.trace import trace_scope

        request = {
            "database": "demo",
            "mechanism": "PM",
            "epsilon": 0.5,
            "query": "Qc3",
            "trials": 2,
        }
        untraced = planner.execute(planner.plan(request))
        with trace_scope(str(tmp_path / "trace.jsonl")):
            traced = planner.execute(planner.plan(request))
        assert json.dumps(traced["answers"]) == json.dumps(untraced["answers"])
        assert traced["mean_relative_error"] == untraced["mean_relative_error"]


class TestRemoteCacheServerParity:
    """Serving through a live out-of-process cache server: the bytes match
    the local-backend reference, and a batch run against the same server
    warms a *separately launched* serving process (and vice versa)."""

    REQUEST = {
        "database": "demo",
        "mechanism": "PM",
        "epsilon": 0.5,
        "query": "Qc3",
        "trials": 2,
    }

    def _fresh_planner(self):
        planner = QueryPlanner(seed=SEED)
        planner.register("demo", "ssb", scale_factor=1.0, rows_per_scale_factor=2000, seed=5)
        return planner

    def test_served_bytes_identical_through_live_cache_server(self):
        from repro.db.cache.server import CacheServerThread

        with backend_scope(LocalCacheBackend(64)):
            planner = self._fresh_planner()
            reference = planner.execute(planner.plan(self.REQUEST))
        with CacheServerThread(max_entries=2048) as handle:
            backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            try:
                with backend_scope(backend):
                    planner = self._fresh_planner()
                    first = planner.execute(planner.plan(self.REQUEST))
                    # The second pass is served from the cache server tier.
                    again = planner.execute(planner.plan(self.REQUEST))
            finally:
                backend.close()
        assert (
            json.dumps(reference["answers"])
            == json.dumps(first["answers"])
            == json.dumps(again["answers"])
        )
        assert reference["mean_relative_error"] == first["mean_relative_error"]

    def test_batch_run_warms_a_separate_serving_process(self):
        """Two planners with two distinct clients — standing in for a batch
        run and a later serving process that never forked from it — share
        exact answers and cubes through content-addressed server entries."""
        from repro.db.cache.server import CacheServerThread

        with CacheServerThread(max_entries=2048) as handle:
            batch_backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            with backend_scope(batch_backend):
                batch_planner = self._fresh_planner()
                batch = batch_planner.execute(batch_planner.plan(self.REQUEST))
            batch_backend.close()

            serving_backend = RemoteCacheBackend(host="127.0.0.1", port=handle.server.port)
            with backend_scope(serving_backend):
                serving_planner = self._fresh_planner()  # its own database build
                served = serving_planner.execute(serving_planner.plan(self.REQUEST))
            hits = serving_backend.stats().shared_hits
            serving_backend.close()
        assert json.dumps(served["answers"]) == json.dumps(batch["answers"])
        assert hits > 0  # the batch run's artefacts served the "online" process


# ----------------------------------------------------------------------
# single-flight coalescing
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_calls_share_one_execution(self):
        flight = SingleFlight()
        gate = threading.Event()
        calls = []

        def fn():
            calls.append(1)
            gate.wait(timeout=10)
            return "value"

        results = []

        def caller():
            results.append(flight.do("key", fn))

        threads = [threading.Thread(target=caller) for _ in range(8)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10
        while flight.coalesced < 7 and time.monotonic() < deadline:
            time.sleep(0.005)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert calls == [1]
        assert flight.executions == 1
        assert flight.coalesced == 7
        assert sorted(shared for _, shared in results) == [False] + [True] * 7
        assert all(value == "value" for value, _ in results)

    def test_errors_propagate_to_all_waiters(self):
        flight = SingleFlight()
        gate = threading.Event()

        def fn():
            gate.wait(timeout=10)
            raise RuntimeError("boom")

        errors = []

        def caller():
            try:
                flight.do("key", fn)
            except RuntimeError as error:
                errors.append(error)

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10
        while flight.coalesced < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(errors) == 4
        assert flight.in_flight() == 0

    def test_sequential_calls_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.do("key", lambda: 1) == (1, False)
        assert flight.do("key", lambda: 2) == (2, False)
        assert flight.coalesced == 0

    def test_planner_coalesces_identical_concurrent_requests(self, planner, monkeypatch):
        planned = planner.plan(
            {"database": "demo", "mechanism": "PM", "epsilon": 0.9, "query": "Qc2"}
        )
        executions_before = planner.singleflight.executions
        coalesced_before = planner.singleflight.coalesced
        gate = threading.Event()
        original = planner._execute

        def gated(plan):
            gate.wait(timeout=10)
            return original(plan)

        monkeypatch.setattr(planner, "_execute", gated)
        payloads = []

        def caller():
            payloads.append(planner.execute(planned))

        threads = [threading.Thread(target=caller) for _ in range(6)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10
        while planner.singleflight.coalesced - coalesced_before < 5:
            if time.monotonic() > deadline:
                break
            time.sleep(0.005)
        gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert planner.singleflight.executions - executions_before == 1
        assert len(payloads) == 6
        assert sorted(p["coalesced"] for p in payloads) == [False] + [True] * 5
        answers = {json.dumps(p["answers"]) for p in payloads}
        assert len(answers) == 1  # every waiter saw the one execution's bytes


# ----------------------------------------------------------------------
# the TCP server
# ----------------------------------------------------------------------
@pytest.fixture()
def serving(planner):
    server = QueryServer(planner, BudgetLedger(PrivacyBudget(1.0)), port=0, workers=2)
    with ServerThread(server):
        yield server


class TestServerRoundTrip:
    def test_ping_and_stats(self, serving):
        with ServingClient(port=serving.port) as client:
            assert client.ping()["protocol"] == 1
            stats = client.stats()
            assert "demo" in stats["planner"]["databases"]
            assert "hit_rate" in stats["cache"]

    def test_query_round_trip_is_deterministic(self, serving):
        with ServingClient(port=serving.port) as client:
            first = client.query("demo", "PM", 0.3, query="Qc1", analyst="alice")
            second = client.query("demo", "PM", 0.3, query="Qc1", analyst="alice")
        assert first["answer"] == second["answer"]
        assert first["privacy"]["remaining_epsilon"] == pytest.approx(0.7)
        assert second["privacy"]["remaining_epsilon"] == pytest.approx(0.4)
        assert first["composition"] == "sequential"

    def test_budget_refusal_over_the_wire(self, serving):
        with ServingClient(port=serving.port) as client:
            client.query("demo", "PM", 0.6, query="Qc1", analyst="carol")
            with pytest.raises(ServingError) as info:
                client.query("demo", "PM", 0.6, query="Qc1", analyst="carol")
            assert info.value.code == "budget_exhausted"
            assert info.value.details["remaining_epsilon"] == pytest.approx(0.4)
            # The refused request spent nothing.
            assert client.budget("carol")["spent_epsilon"] == pytest.approx(0.6)

    def test_unsupported_query_is_refunded(self, serving):
        with ServingClient(port=serving.port) as client:
            with pytest.raises(ServingError) as info:
                client.query("demo", "LS", 0.5, query="Qs2", analyst="dave")
            assert info.value.code == "unsupported"
            assert client.budget("dave")["spent_epsilon"] == pytest.approx(0.0)

    def test_multi_trial_request_charges_trials_times_epsilon(self, serving):
        # Each trial is an independent release: sequential composition
        # across a request's own trials, so trials=3 at ε=0.2 costs 0.6.
        with ServingClient(port=serving.port) as client:
            result = client.query(
                "demo", "PM", 0.2, query="Qc1", trials=3, analyst="grace"
            )
            assert len(result["answers"]) == 3
            assert result["privacy"]["epsilon_charged"] == pytest.approx(0.6)
            assert client.budget("grace")["spent_epsilon"] == pytest.approx(0.6)
            # A fourth-trial-worth of headroom is gone: 3 more trials refuse.
            with pytest.raises(ServingError) as info:
                client.query("demo", "PM", 0.2, query="Qc1", trials=3, analyst="grace")
            assert info.value.code == "budget_exhausted"

    def test_grouped_sql_query_over_the_wire(self, serving):
        with ServingClient(port=serving.port) as client:
            result = client.query(
                "demo",
                "PM",
                0.5,
                sql=(
                    "SELECT count(*) FROM Lineorder, Customer "
                    "GROUP BY Customer.region"
                ),
                analyst="erin",
            )
        assert result["composition"] == "parallel"
        assert result["answer"]["keys"] == ["Customer.region"]
        assert len(result["answer"]["groups"]) == 5

    def test_kstar_query_over_the_wire(self, serving):
        with ServingClient(port=serving.port) as client:
            result = client.query("g1", "PM", 0.5, k=2, analyst="frank")
        assert isinstance(result["answer"], float)

    def test_register_over_the_wire_is_idempotent(self, serving):
        with ServingClient(port=serving.port) as client:
            info = client.register(
                "demo", "ssb", scale_factor=1.0, rows_per_scale_factor=2000, seed=5
            )
            assert info["already_registered"] is True

    def test_malformed_json_gets_structured_error(self, serving):
        with socket.create_connection(("127.0.0.1", serving.port), timeout=30) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_unknown_op_gets_structured_error(self, serving):
        with ServingClient(port=serving.port) as client:
            with pytest.raises(ServingError) as info:
                client.request("explode")
            assert info.value.code == "unknown_op"

    def test_request_ids_are_echoed(self, serving):
        with socket.create_connection(("127.0.0.1", serving.port), timeout=30) as sock:
            stream = sock.makefile("rwb")
            stream.write(encode_message({"op": "ping", "id": "abc-123"}))
            stream.flush()
            response = json.loads(stream.readline())
        assert response["id"] == "abc-123"
        assert response["ok"] is True

    def test_oversized_request_line_gets_structured_error(self, serving):
        with socket.create_connection(("127.0.0.1", serving.port), timeout=30) as sock:
            stream = sock.makefile("rwb")
            # One line beyond the StreamReader's 64 KiB default limit.
            stream.write(b'{"op": "ping", "pad": "' + b"x" * 70_000 + b'"}\n')
            stream.flush()
            response = json.loads(stream.readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert "too long" in response["error"]["message"]

    def test_private_server_omits_accuracy_metadata(self, planner):
        server = QueryServer(
            planner,
            BudgetLedger(PrivacyBudget(1.0)),
            port=0,
            accuracy_metadata=False,
        )
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                result = client.query("demo", "PM", 0.5, query="Qc1", analyst="heidi")
        assert "mean_relative_error" not in result
        assert "median_relative_error" not in result
        assert "answer" in result and "privacy" in result

    def test_shutdown_op_stops_the_server(self, planner):
        server = QueryServer(planner, BudgetLedger(PrivacyBudget(1.0)), port=0)
        handle = ServerThread(server).start()
        with ServingClient(port=server.port) as client:
            assert client.shutdown()["stopping"] is True
        handle._thread.join(timeout=10)
        assert not handle._thread.is_alive()


class TestServeCLIMode:
    def test_cli_serve_delegates_to_serving_main(self, monkeypatch):
        import repro.serving.server as server_module
        from repro.evaluation.cli import main as cli_main

        captured = {}

        def fake_main(argv):
            captured["argv"] = list(argv)
            return 0

        monkeypatch.setattr(server_module, "main", fake_main)
        assert cli_main(["--serve", "--port", "7777", "--seed", "42"]) == 0
        argv = captured["argv"]
        assert argv[argv.index("--port") + 1] == "7777"
        assert argv[argv.index("--seed") + 1] == "42"

    def test_serving_main_rejects_bad_register_spec(self, capsys):
        from repro.serving.server import main as serve_main

        assert serve_main(["--register", "not json", "--port", "0"]) == 2
        assert "--register" in capsys.readouterr().err

    def test_serving_main_rejects_bad_budget(self, capsys):
        from repro.serving.server import main as serve_main

        assert serve_main(["--analyst-epsilon", "-1", "--port", "0"]) == 2
        assert "budget" in capsys.readouterr().err
