"""Test-support infrastructure shared by the suites and the benchmarks.

This package holds tooling that *injects* conditions the production code
must survive — it never ships on a serving path itself:

* :mod:`repro.testing.faults` — a TCP chaos proxy
  (:class:`~repro.testing.faults.ChaosProxy`) that sits between a client and
  a real server and drops, delays, corrupts or truncates traffic on demand,
  plus connection kills and full freezes.  The fault-tolerance suites drive
  the cache client's circuit breaker and the serving tier's overload /
  crash-recovery behaviour through it, and the ``fault_tolerance`` benchmark
  entry measures throughput under injected loss.
"""

from repro.testing.faults import ChaosProxy, FaultSpec

__all__ = ["ChaosProxy", "FaultSpec"]
