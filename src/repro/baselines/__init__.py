"""Baseline DP mechanisms for star-join queries (paper Section 4).

These are the output-perturbation approaches DP-starJ is compared against:

* :class:`~repro.baselines.output_perturbation.OutputLaplaceMechanism` (LM) —
  plain Laplace output perturbation; only applicable in the (1, 0)-private
  scenario where the global sensitivity is bounded.
* :class:`~repro.baselines.truncation.TruncationMechanism` (TM) — naive
  truncation of per-entity contributions at a threshold τ, then calibrated
  noise (bias/variance trade-off discussed in Section 4).
* :class:`~repro.baselines.local_sensitivity.LocalSensitivityMechanism` (LS) —
  data-dependent noise calibrated to an upper bound of the local sensitivity,
  via the general Cauchy mechanism (pure ε-DP) or Laplace ((ε, δ)-DP).
* :class:`~repro.baselines.r2t.RaceToTheTop` (R2T) — instance-optimal
  truncation with geometrically increasing thresholds (Eq. 9).

All mechanisms expose ``answer_value(database, query, rng=None)`` and raise
:class:`~repro.exceptions.UnsupportedQueryError` for the query types the paper
marks "Not supported".
"""

from repro.baselines.output_perturbation import OutputLaplaceMechanism
from repro.baselines.local_sensitivity import LocalSensitivityMechanism
from repro.baselines.truncation import TruncationMechanism
from repro.baselines.r2t import RaceToTheTop

__all__ = [
    "OutputLaplaceMechanism",
    "LocalSensitivityMechanism",
    "TruncationMechanism",
    "RaceToTheTop",
]
