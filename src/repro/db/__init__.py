"""Relational substrate: columnar tables, star schemas and star-join execution.

The subpackage provides everything the DP mechanisms need from a database
engine:

* :class:`~repro.db.domains.AttributeDomain` — finite, ordered attribute
  domains with value/ordinal-code codecs (the unit the Predicate Mechanism
  perturbs over).
* :class:`~repro.db.table.Table` / :class:`~repro.db.table.Column` — columnar,
  numpy-backed tables.
* :class:`~repro.db.schema.TableSchema`, :class:`~repro.db.schema.ForeignKey`,
  :class:`~repro.db.schema.StarSchema` — schema metadata including the
  fact → dimension foreign-key constraints central to the paper.
* :class:`~repro.db.database.StarDatabase` — a concrete star-schema instance.
* :mod:`~repro.db.predicates` — the predicate AST (point / range / set /
  conjunction) that star-join queries are decomposed into.
* :class:`~repro.db.query.StarJoinQuery` — aggregate star-join queries
  (COUNT / SUM / AVG, optional GROUP BY).
* :class:`~repro.db.executor.QueryExecutor` — exact query evaluation using a
  semi-join plan (with a reference hash-join implementation in
  :mod:`~repro.db.join` used for cross-validation in tests).
* :mod:`~repro.db.sql` — a minimal SQL parser covering the paper's appendix
  queries.
"""

from repro.db.domains import AttributeDomain
from repro.db.table import Column, Table
from repro.db.schema import ForeignKey, StarSchema, TableSchema
from repro.db.database import StarDatabase
from repro.db.predicates import (
    ConjunctionPredicate,
    PointPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
)
from repro.db.query import Aggregate, AggregateKind, GroupBy, StarJoinQuery
from repro.db.executor import QueryExecutor
from repro.db.sql import parse_star_join_sql

__all__ = [
    "AttributeDomain",
    "Column",
    "Table",
    "ForeignKey",
    "StarSchema",
    "TableSchema",
    "StarDatabase",
    "Predicate",
    "PointPredicate",
    "RangePredicate",
    "SetPredicate",
    "ConjunctionPredicate",
    "TruePredicate",
    "Aggregate",
    "AggregateKind",
    "GroupBy",
    "StarJoinQuery",
    "QueryExecutor",
    "parse_star_join_sql",
]
