"""Semantic fingerprints: the cache keys of the execution layer.

A fingerprint identifies the *semantics* of an object — the selection a
predicate performs, the answer a query computes, the content of a database —
independently of object identity, predicate order or process.  Every
fingerprint is a flat structure of strings, numbers and tuples, so it is
hashable, picklable and stable across processes: the same keys address the
same entries whether a cache lives in-process or in a shared-memory tier.

Predicate / selection / query fingerprints moved here from
:mod:`repro.db.engine` (which re-exports them for compatibility) when the
cache layer was extracted; :func:`database_fingerprint` is the namespace the
backends file every key under.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import TYPE_CHECKING, Hashable, Optional, Union

from repro.db.predicates import (
    ConjunctionPredicate,
    PointPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
    TruePredicate,
)
from repro.db.query import Measure, StarJoinQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import StarDatabase

__all__ = [
    "database_fingerprint",
    "measure_fingerprint",
    "predicate_fingerprint",
    "query_fingerprint",
    "selection_fingerprint",
]


def predicate_fingerprint(predicate: Predicate) -> Optional[Hashable]:
    """A hashable key identifying the selection semantics of a predicate.

    The cache namespace pins the database, so ``(table, attribute)`` pins the
    column and the ordinal codes pin the selected region.  Exact types only: a
    subclass may override evaluation, so anything but the four stock predicate
    classes returns ``None`` and is evaluated directly, never cached.
    """
    kind = type(predicate)
    if kind is PointPredicate:
        return (predicate.table, predicate.attribute, "point", predicate.code)
    if kind is RangePredicate:
        return (
            predicate.table,
            predicate.attribute,
            "range",
            predicate.low_code,
            predicate.high_code,
        )
    if kind is SetPredicate:
        return (
            predicate.table,
            predicate.attribute,
            "set",
            tuple(int(code) for code in predicate.codes),
        )
    if kind is TruePredicate:
        return (predicate.table, predicate.attribute, "true")
    return None


def selection_fingerprint(predicates: ConjunctionPredicate) -> Optional[Hashable]:
    """Order-insensitive key of a conjunction (AND is commutative)."""
    members = []
    for predicate in predicates:
        fingerprint = predicate_fingerprint(predicate)
        if fingerprint is None:
            return None
        members.append(fingerprint)
    return tuple(sorted(members))


def measure_fingerprint(measure: Union[Measure, str]) -> Hashable:
    """The (column, subtract) key of a measure expression."""
    if isinstance(measure, str):
        return (measure, None)
    return (measure.column, measure.subtract)


def query_fingerprint(query: StarJoinQuery) -> Optional[Hashable]:
    """A hashable key identifying the semantics (not the name) of a query."""
    selection = selection_fingerprint(query.predicates)
    if selection is None:
        return None
    aggregate = query.aggregate
    measure = None if aggregate.measure is None else measure_fingerprint(aggregate.measure)
    group_by = None if query.group_by is None else tuple(query.group_by.keys)
    return (aggregate.kind.value, measure, selection, group_by)


#: Fingerprints memoized per database *object* (weak keys: the entry dies
#: with its database).  Hashing every column's bytes costs ~1 ms per MB, so
#: paying it once per instance — instead of once per engine construction —
#: keeps first-query latency flat; ``refresh=True`` bypasses and replaces
#: the memo, which is how ``invalidate()`` honours in-place mutation.
_FINGERPRINTS: "weakref.WeakKeyDictionary[StarDatabase, str]" = weakref.WeakKeyDictionary()


def database_fingerprint(database: "StarDatabase", refresh: bool = False) -> str:
    """The cache namespace of a database: a digest of its full content.

    Hashes every table's column bytes (:meth:`repro.db.table.Table.content_digest`)
    plus the schema's join structure, so the namespace is

    * **process-independent** — two workers that built the same logical
      instance compute the same namespace, which is what lets them share a
      cache tier; and
    * **content-bound** — mutating a database in place changes the digest, so
      after :meth:`~repro.db.engine.ExecutionEngine.invalidate` recomputes
      the namespace (``refresh=True``), entries cached for the old content
      can never be served.

    The digest is memoized per database object; anything that mutates a
    database in place must pass ``refresh=True`` to re-hash the new content
    (``invalidate()`` does — there is no automatic change detection, exactly
    as for the caches themselves).
    """
    if not refresh:
        cached = _FINGERPRINTS.get(database)
        if cached is not None:
            return cached
    digest = hashlib.sha256()
    digest.update(database.fact.content_digest().encode("ascii"))
    for name in sorted(database.dimensions):
        digest.update(name.encode("utf-8"))
        digest.update(database.dimensions[name].content_digest().encode("ascii"))
    for dim_name, fk in sorted(database.schema.foreign_keys.items()):
        digest.update(f"{dim_name}<-{fk.fact_column}".encode("utf-8"))
    for edge in database.schema.snowflake_edges:
        digest.update(
            f"{edge.child_table}.{edge.child_column}->{edge.parent_table}".encode("utf-8")
        )
    fingerprint = digest.hexdigest()[:24]
    _FINGERPRINTS[database] = fingerprint
    return fingerprint
