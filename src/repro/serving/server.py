"""The asyncio JSON-line query server.

One :class:`QueryServer` serves many concurrent analyst connections over a
newline-delimited JSON protocol (:mod:`repro.serving.protocol`).  The event
loop only parses, plans and admits; the actual engine work — exact execution
plus the mechanism's noisy trials — runs on a bounded thread pool so a slow
query never blocks the accept loop.  Identical concurrent requests are
coalesced by the planner's single-flight layer, and every admission goes
through the per-analyst :class:`~repro.serving.ledger.BudgetLedger` *before*
the engine runs; executions that fail without releasing an answer are
refunded.

Run it standalone (``python -m repro.serving``), through the evaluation CLI
(``python -m repro.evaluation.cli --serve``), or embedded:
:class:`ServerThread` hosts the server on a background event loop for tests,
benchmarks and notebook use.  SIGINT/SIGTERM trigger a graceful shutdown —
stop accepting, drain, close — rather than a traceback.
"""

from __future__ import annotations

import argparse
import asyncio
import contextvars
import json
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.db.cache import CACHE_BACKENDS, active_backend, make_backend, set_active_backend
from repro.db.cache import DEFAULT_EVICTION_POLICY, EVICTION_POLICIES
from repro.db.cache.warming import WarmAheadWorker, WarmingQueue, set_active_queue
from repro.dp.accountant import PrivacyBudget
from repro.obs.metrics import active_registry, render_prometheus, unified_snapshot
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer, active_tracer, set_active_tracer, span
from repro.serving.ledger import BudgetLedger
from repro.serving.planner import QueryPlanner
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ServingError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
)

__all__ = ["COLD_START_EXECUTION_ESTIMATE_S", "QueryServer", "ServerThread", "main"]

#: Per-request execution-time guess used by ``retry_after_ms`` before the
#: first query completes (no EWMA yet).  The *estimate* is fixed; the hint is
#: not — it scales with the backlog, so refused clients of a cold, slammed
#: server spread their retries instead of stampeding back together.
COLD_START_EXECUTION_ESTIMATE_S = 0.1


class QueryServer:
    """Serve DP star-join / k-star queries over newline-delimited JSON."""

    def __init__(
        self,
        planner: Optional[QueryPlanner] = None,
        ledger: Optional[BudgetLedger] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        accuracy_metadata: bool = True,
        max_inflight: Optional[int] = None,
        max_queue: int = 32,
        drain_timeout: float = 10.0,
        warm_ahead: bool = False,
        slow_query_log: Optional[SlowQueryLog] = None,
    ):
        self.planner = planner if planner is not None else QueryPlanner()
        self.ledger = ledger if ledger is not None else BudgetLedger()
        self.host = host
        self.port = port  # 0 = ephemeral; replaced with the bound port on start
        #: Whether query responses include relative-error metadata measured
        #: against the exact answer.  This is the reproduction-benchmark
        #: feature the evaluation needs, but it discloses the exact answer
        #: to the analyst — serve untrusted analysts with
        #: ``accuracy_metadata=False`` (the CLI's ``--private``).
        self.accuracy_metadata = accuracy_metadata
        #: Admission control: at most ``max_inflight`` queries execute at
        #: once (default: the worker-thread count — more would only wait
        #: inside the pool) and at most ``max_queue`` more may wait for a
        #: slot.  Beyond that the server answers a structured ``overloaded``
        #: refusal immediately instead of letting latency (and memory) grow
        #: without bound.
        self.max_inflight = int(max_inflight) if max_inflight is not None else int(workers)
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self.max_queue = int(max_queue)
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.drain_timeout = float(drain_timeout)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serving"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._capacity: Optional[asyncio.Semaphore] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._inflight = 0
        self._queued = 0
        self._execution_ewma: Optional[float] = None
        self._started_at = time.monotonic()
        self.requests_served = 0
        self.requests_refused_overload = 0
        #: Warm-ahead (opt-in, ``--warm-ahead``): cold exact answers observed
        #: during execution land in a process-wide :class:`WarmingQueue`; the
        #: server replays them through the engine between requests, so the
        #: put-through cache tiers hold the answer before an analyst repeats
        #: the query.  Warming only runs when no request is in flight or
        #: queued — it is strictly subordinate to foreground work — and never
        #: changes an answer (every cached value is a pure function of its
        #: key), only when it gets computed.
        self.warming_queue: Optional[WarmingQueue] = WarmingQueue() if warm_ahead else None
        self.warming_worker: Optional[WarmAheadWorker] = (
            WarmAheadWorker(self.warming_queue) if warm_ahead else None
        )
        self._warming_busy = False
        self._previous_queue: Optional[WarmingQueue] = None
        #: Structured slow-query JSONL (``--slow-query-ms``): requests slower
        #: than the threshold are logged with trace id, query fingerprint,
        #: ε and the root span's per-stage timings.  ``None`` = disabled.
        self.slow_query_log = slow_query_log

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "QueryServer":
        """Bind the listening socket (resolving an ephemeral port)."""
        self._shutdown = asyncio.Event()
        # The semaphore must be created on the serving event loop, not in
        # __init__ (which may run on a different thread's loop context).
        self._capacity = asyncio.Semaphore(self.max_inflight)
        if self.warming_queue is not None:
            self._previous_queue = set_active_queue(self.warming_queue)
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (must run on the server's event loop)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`, SIGINT or SIGTERM."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                installed.append(signum)
            except (ValueError, NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        try:
            await self._shutdown.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight requests, release the worker pool.

        Graceful drain: connections that are mid-request get up to
        ``drain_timeout`` seconds to receive their response (an answer or a
        structured refusal — never a dropped connection); idle connections
        close immediately; whatever is still busy at the deadline is cut.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers - self._busy):
            writer.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while self._busy and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        # Warm-ahead winds down *before* the executor: a drain in progress
        # finishes its current replay and requeues the rest, so no observed
        # miss is lost and no replay is abandoned mid-write.  A hung drain
        # raises (same contract as ServerThread.stop); the executor is then
        # released without waiting so the loud failure is a traceback, not a
        # deadlock on the stuck worker thread.
        drain_error: Optional[RuntimeError] = None
        if self.warming_worker is not None:
            try:
                self.warming_worker.stop(timeout=self.drain_timeout)
            except RuntimeError as error:
                drain_error = error
        self._executor.shutdown(wait=drain_error is None, cancel_futures=True)
        if self.warming_queue is not None:
            set_active_queue(self._previous_queue)
        self.ledger.close()
        if drain_error is not None:
            raise drain_error

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except ValueError:
                    # StreamReader raises ValueError for a line beyond its
                    # 64 KiB limit; the stream cannot be resynchronised, so
                    # answer structurally and drop the connection.
                    too_long = ServingError("bad_request", "request line too long")
                    try:
                        writer.write(encode_message(error_response(too_long)))
                        await writer.drain()
                    except ConnectionError:
                        pass
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Mark the connection busy while a request is in flight so a
                # graceful shutdown waits for this response to go out.
                self._busy.add(writer)
                try:
                    response, stop_after = await self._respond(line)
                    try:
                        writer.write(encode_message(response))
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._busy.discard(writer)
                self._maybe_warm()
                if stop_after:
                    self.request_shutdown()
                    break
                if self._draining:
                    break  # response delivered; the server is shutting down
        except asyncio.CancelledError:
            pass  # shutdown cancelled this connection mid-read; exit quietly
        finally:
            self._writers.discard(writer)
            writer.close()

    def _maybe_warm(self) -> None:
        """Kick one warm-ahead drain if the server is idle.

        Guarded single-drain: at most one replay batch runs at a time, only
        when nothing is in flight or queued, and never while draining.  A
        request arriving mid-batch simply waits for a pool thread like any
        other work — each batch is small (≤4 replays, ≤250 ms) so the added
        latency is bounded.
        """
        if self.warming_worker is None or self._warming_busy or self._draining:
            return
        if self._inflight or self._queued or not len(self.warming_queue):
            return
        self._warming_busy = True
        asyncio.get_running_loop().create_task(self._warm_once())

    async def _warm_once(self) -> None:
        try:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                self._executor,
                lambda: self.warming_worker.run_once(max_tasks=4, budget_s=0.25),
            )
        except RuntimeError:
            pass  # executor already shut down: warming loses a batch, nothing else
        finally:
            self._warming_busy = False

    async def _respond(self, line: bytes) -> tuple[dict, bool]:
        request_id = None
        try:
            message = decode_line(line)
            request_id = message.get("id")
            result, stop_after = await self._dispatch(message)
            self.requests_served += 1
            return ok_response(result, request_id), stop_after
        except ServingError as error:
            return error_response(error, request_id), False
        except Exception as error:  # never leak a traceback onto the wire
            internal = ServingError(
                "internal", f"{type(error).__name__}: {error}"
            )
            return error_response(internal, request_id), False

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _dispatch(self, message: dict) -> tuple[dict, bool]:
        op = message.get("op")
        if op == "ping":
            return self._op_ping(), False
        if op == "register":
            return await self._op_register(message), False
        if op == "query":
            return await self._op_query(message), False
        if op == "budget":
            analyst = message.get("analyst")
            return self.ledger.summary(str(analyst) if analyst else None), False
        if op == "stats":
            return self._op_stats(), False
        if op == "telemetry":
            return self._op_telemetry(), False
        if op == "health":
            return self._op_health(), False
        if op == "shutdown":
            return {"stopping": True}, True
        raise ServingError(
            "unknown_op",
            f"unknown op {op!r}; available: "
            "ping, register, query, budget, stats, telemetry, health, shutdown",
        )

    def _op_ping(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "seed": self.planner.seed,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    async def _op_register(self, message: dict) -> dict:
        params = {
            key: value
            for key, value in message.items()
            if key not in ("op", "id", "name", "kind")
        }
        name = message.get("name")
        kind = message.get("kind")
        loop = asyncio.get_running_loop()
        # Datagen can take seconds at scale; keep the accept loop responsive.
        return await loop.run_in_executor(
            self._executor, lambda: self.planner.register(name, kind, **params)
        )

    def _retry_after_ms(self) -> int:
        """Backpressure hint for ``overloaded`` refusals: roughly how long
        until a queue slot frees up, from an EWMA of recent execution times
        scaled by the whole backlog ahead of a new arrival — executing *and*
        queued requests both stand between the refused client and a slot
        (floor 50 ms).  A cold server (no EWMA yet) uses the fixed
        per-request guess :data:`COLD_START_EXECUTION_ESTIMATE_S`, scaled by
        the same backlog: under an instant overload the hint must grow with
        queue depth, or every refused client comes back at once ~100 ms
        later and the stampede repeats."""
        estimate = (
            self._execution_ewma
            if self._execution_ewma is not None
            else COLD_START_EXECUTION_ESTIMATE_S
        )
        backlog = self._inflight + self._queued
        return max(50, int(estimate * (backlog + 1) * 1000))

    async def _op_query(self, message: dict) -> dict:
        registry = active_registry()
        registry.counter("serving_requests_total").inc()
        request_began = time.perf_counter()
        # The root span of the request trace; every downstream span —
        # planning, execution, engine kernels, cache round-trips (including
        # the remote cache server's side) — descends from it.  `span` yields
        # None when tracing is off, and nothing below allocates in that case.
        with span("serve.request") as root:
            with span("serve.plan"):
                planned = self.planner.plan(message)
            analyst = str(message.get("analyst") or "anonymous")
            if root is not None:
                root.set(
                    analyst=analyst,
                    database=planned.entry.name,
                    query=str(planned.query_name),
                    mechanism=planned.mechanism,
                    epsilon=planned.epsilon,
                    trials=planned.trials,
                )
            # Overload shedding before any budget is touched: when every
            # execution slot is taken and the wait queue is full, refuse with a
            # structured `overloaded` error (queue depth + retry hint) instead
            # of queueing without bound.  A shed request costs no budget.
            if self._capacity.locked() and self._queued >= self.max_queue:
                self.requests_refused_overload += 1
                registry.counter("serving_overload_refusals_total").inc()
                if root is not None:
                    root.set(outcome="overloaded")
                raise ServingError(
                    "overloaded",
                    f"server at capacity ({self._inflight} in flight, "
                    f"{self._queued} queued); retry later",
                    in_flight=self._inflight,
                    queue_depth=self._queued,
                    max_inflight=self.max_inflight,
                    max_queue=self.max_queue,
                    retry_after_ms=self._retry_after_ms(),
                )
            self._queued += 1
            queue_began = time.perf_counter()
            try:
                await self._capacity.acquire()
            finally:
                self._queued -= 1
            queue_wait = time.perf_counter() - queue_began
            registry.histogram("serving_queue_wait_seconds").observe(queue_wait)
            if root is not None:
                root.set(queue_wait_s=round(queue_wait, 9))
            self._inflight += 1
            try:
                # Each trial is an independent noisy release of the same
                # statistic, so a request composes sequentially across its own
                # trials: the charge is trials × ε.  (Within each trial, a
                # GROUP BY's disjoint partitions still compose in parallel.)
                charge = PrivacyBudget(planned.epsilon * planned.trials)
                label = f"{planned.entry.name}:{planned.query_name}:{planned.mechanism}"
                # Admission before execution: an exhausted analyst costs no
                # engine work, and on a durable ledger the pending charge is on
                # disk before the engine may run.
                admission = self.ledger.admit(
                    analyst, charge, label=label, parallel=planned.parallel
                )
                loop = asyncio.get_running_loop()
                started = loop.time()
                try:
                    if active_tracer() is not None:
                        # contextvars do not follow run_in_executor by
                        # themselves: ship a copy of this task's context so
                        # the executor thread's spans parent under `root`.
                        # Only when tracing — the untraced path is unchanged.
                        context = contextvars.copy_context()
                        payload = await loop.run_in_executor(
                            self._executor, context.run, self.planner.execute, planned
                        )
                    else:
                        payload = await loop.run_in_executor(
                            self._executor, self.planner.execute, planned
                        )
                except Exception:
                    # Nothing was released (unsupported combination, engine
                    # failure): the analyst gets the charge back along with the
                    # structured error.
                    self.ledger.refund_admission(admission)
                    if root is not None:
                        root.set(outcome="error")
                    raise
                elapsed = loop.time() - started
                self._execution_ewma = (
                    elapsed
                    if self._execution_ewma is None
                    else 0.8 * self._execution_ewma + 0.2 * elapsed
                )
                registry.gauge("serving_execution_ewma_seconds").set(self._execution_ewma)
                registry.gauge("serving_retry_after_ms").set(float(self._retry_after_ms()))
                # The answer is about to go out: settle the journalled charge.
                self.ledger.settle(admission)
            finally:
                self._inflight -= 1
                self._capacity.release()
            if not self.accuracy_metadata:
                payload.pop("mean_relative_error", None)
                payload.pop("median_relative_error", None)
            payload["privacy"] = {
                "analyst": analyst,
                "epsilon_charged": charge.epsilon,
                "composition": "parallel" if planned.parallel else "sequential",
                "remaining_epsilon": self.ledger.summary(analyst)["remaining_epsilon"],
            }
            request_elapsed = time.perf_counter() - request_began
            registry.histogram("serving_request_seconds").observe(request_elapsed)
            if root is not None:
                root.set(outcome="ok")
            self._record_if_slow(request_elapsed, planned, label, analyst, root)
            return payload

    def _record_if_slow(self, elapsed_s, planned, label, analyst, root) -> None:
        """Log the finished request if it crossed the slow-query threshold.

        By the time this runs every child span has closed, so the root
        span's ``stages`` roll-up gives the per-stage breakdown without any
        extra bookkeeping on the fast path.
        """
        if self.slow_query_log is None:
            return
        fields = {
            "analyst": analyst,
            "fingerprint": label,
            "database": planned.entry.name,
            "query": str(planned.query_name),
            "mechanism": planned.mechanism,
            "epsilon": planned.epsilon,
            "trials": planned.trials,
        }
        if root is not None:
            fields["trace_id"] = root.trace_id
            fields["stages_ms"] = {
                name: round(total * 1000.0, 3) for name, total in root.stages.items()
            }
        if self.slow_query_log.record_if_slow(elapsed_s, **fields):
            active_registry().counter("serving_slow_queries_total").inc()

    def _op_stats(self) -> dict:
        backend = active_backend()
        cache_stats = backend.stats()
        stats = cache_stats.as_dict()
        lookups = stats.get("hits", 0) + stats.get("misses", 0)
        breaker_stats = getattr(backend, "breaker_stats", None)
        return {
            "requests_served": self.requests_served,
            "requests_refused_overload": self.requests_refused_overload,
            "planner": self.planner.stats(),
            "cache": {
                **stats,
                "backend": getattr(backend, "name", "unknown"),
                "hit_rate": (stats.get("hits", 0) / lookups) if lookups else 0.0,
                "degraded": bool(getattr(backend, "degraded", False)),
                "breaker": breaker_stats() if callable(breaker_stats) else None,
            },
            "warming": (
                self.warming_worker.stats() if self.warming_worker is not None else None
            ),
        }

    def telemetry_snapshot(self) -> dict:
        """The full registry state plus server/backend context in the
        unified telemetry schema (:data:`~repro.obs.metrics.UNIFIED_KEYS`).

        The active registry carries the cross-cutting instrument catalog
        (engine, executor, serving, warming counters/histograms); the
        server's own admission counters and the cache backend's unified
        snapshot ride along so one ``telemetry`` op shows the whole process.
        """
        from repro import __version__  # local import: repro/__init__ is layered above

        registry = active_registry().snapshot()
        backend = active_backend()
        backend_telemetry = getattr(backend, "telemetry_snapshot", None)
        tracer = active_tracer()
        return unified_snapshot(
            counters={
                **registry["counters"],
                "requests_served": self.requests_served,
                "requests_refused_overload": self.requests_refused_overload,
            },
            gauges={
                **registry["gauges"],
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "in_flight": self._inflight,
                "queued": self._queued,
                "execution_ewma_s": round(self._execution_ewma or 0.0, 9),
            },
            histograms=registry["histograms"],
            subsystem={
                "name": "serving",
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
                "tracing": tracer is not None,
                "trace_spans_written": tracer.spans_written if tracer is not None else 0,
                "cache": (
                    backend_telemetry() if callable(backend_telemetry) else None
                ),
                "planner": self.planner.stats(),
                "warming": (
                    self.warming_worker.stats()
                    if self.warming_worker is not None
                    else None
                ),
                "slow_query_log": (
                    self.slow_query_log.stats()
                    if self.slow_query_log is not None
                    else None
                ),
            },
        )

    def _op_telemetry(self) -> dict:
        snapshot = self.telemetry_snapshot()
        return {
            "telemetry": snapshot,
            "prometheus": render_prometheus(snapshot, prefix="repro_serving"),
        }

    def _op_health(self) -> dict:
        """Queue / ledger / cache state in one cheap read-only probe."""
        from repro import __version__  # local import: repro/__init__ is layered above

        backend = active_backend()
        breaker_stats = getattr(backend, "breaker_stats", None)
        saturated = (
            self._inflight >= self.max_inflight and self._queued >= self.max_queue
        )
        if self._draining:
            status = "draining"
        elif saturated:
            status = "overloaded"
        else:
            status = "ok"
        return {
            "status": status,
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests_served": self.requests_served,
            "requests_refused_overload": self.requests_refused_overload,
            "queue": {
                "in_flight": self._inflight,
                "queued": self._queued,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "overloaded": saturated,
                "execution_ewma_s": round(self._execution_ewma or 0.0, 9),
                "retry_after_ms": self._retry_after_ms() if saturated else 0,
            },
            "ledger": {
                "analysts": len(list(self.ledger.analysts())),
                "durable": self.ledger.durable,
                "journal": (
                    self.ledger.journal.stats()
                    if self.ledger.journal is not None
                    else None
                ),
            },
            "cache": {
                "backend": getattr(backend, "name", "unknown"),
                "degraded": bool(getattr(backend, "degraded", False)),
                "breaker": breaker_stats() if callable(breaker_stats) else None,
            },
        }


class ServerThread:
    """Host a :class:`QueryServer` on a background event-loop thread.

    The embedded form used by tests, the throughput benchmark and the demo
    script: ``with ServerThread(QueryServer(...)) as handle:`` starts the
    loop, binds the port (``handle.server.port``) and guarantees a graceful
    stop on exit.
    """

    def __init__(self, server: Optional[QueryServer] = None):
        self.server = server if server is not None else QueryServer()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="serving-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("serving event loop failed to start within 30s")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as error:
            self._error = error
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_until_complete(self.server.serve_until_shutdown())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown and join the loop thread.

        Raises ``RuntimeError`` if the thread is still alive after
        ``timeout`` — a silently leaked serving loop would poison every
        later test in the process, so a hung shutdown must be loud.
        """
        if self._thread is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"serving event loop did not stop within {timeout}s "
                "(a query or drain is hung); the thread is still alive"
            )

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# command line
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve DP star-join / k-star queries over JSON lines.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8642, help="bind port (0 = ephemeral)")
    parser.add_argument("--seed", type=int, default=20230711, help="master noise seed")
    parser.add_argument("--workers", type=int, default=4, help="engine worker threads")
    parser.add_argument(
        "--analyst-epsilon",
        type=float,
        default=10.0,
        help="per-analyst total ε budget (admission refuses beyond it)",
    )
    parser.add_argument(
        "--max-analysts",
        type=int,
        default=10_000,
        help="maximum distinct analyst accounts the ledger will allocate",
    )
    parser.add_argument(
        "--ledger-path",
        default=None,
        metavar="FILE",
        help=(
            "persist the budget ledger to this sqlite journal: spent ε "
            "survives restarts and crashes (charges stranded mid-query "
            "replay as spent — never under-charged)"
        ),
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help=(
            "maximum queries executing at once (default: --workers); "
            "overflow waits in a bounded queue"
        ),
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=32,
        metavar="N",
        help=(
            "maximum queries waiting for an execution slot before the "
            "server refuses with a structured 'overloaded' error"
        ),
    )
    parser.add_argument(
        "--private",
        action="store_true",
        help=(
            "omit relative-error metadata from query responses (it is "
            "measured against the exact answer, which a trusted-benchmark "
            "deployment may disclose but an untrusted one must not)"
        ),
    )
    parser.add_argument(
        "--cache-backend",
        choices=CACHE_BACKENDS,
        default="local",
        help="cache backend serving the engines (see docs/CACHE.md)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=192, help="entries per bounded cache region"
    )
    parser.add_argument(
        "--cache-policy",
        choices=EVICTION_POLICIES,
        default=DEFAULT_EVICTION_POLICY,
        help=(
            "eviction policy of every bounded cache tier: 'cost' keeps the "
            "entries that are expensive to recompute per byte, 'lru' is "
            "classical recency (see docs/CACHE.md)"
        ),
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help=(
            "byte budget per bounded in-process cache region alongside the "
            "entry bound (cross-process tiers get 16x this budget)"
        ),
    )
    parser.add_argument(
        "--warm-ahead",
        action="store_true",
        help=(
            "replay observed cache misses through the engine between "
            "requests, pre-populating the cache tiers before an analyst "
            "repeats a query (answers are unchanged; see docs/CACHE.md)"
        ),
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help=(
            "with --cache-backend remote: address of a running cache server "
            "(python -m repro.db.cache.server) — a batch run against the same "
            "server warms this serving process, and vice versa.  A "
            "comma-separated list shards the keyspace across those servers "
            "on a consistent-hash ring (see docs/CACHE.md, 'Sharded fleet')"
        ),
    )
    parser.add_argument(
        "--cache-replicas",
        type=int,
        default=1,
        metavar="N",
        help=(
            "with a sharded --cache-url list: write each entry to N distinct "
            "shards; reads fail over to a replica when the primary's circuit "
            "breaker is open (before degrading to local-only)"
        ),
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        metavar="FILE",
        help=(
            "with --cache-backend remote: start an embedded cache server "
            "persisting to this sqlite file instead of connecting to --cache-url"
        ),
    )
    parser.add_argument(
        "--storage",
        choices=("memory", "mapped"),
        default="memory",
        help=(
            "where registered databases live: 'memory' builds eager arrays "
            "per process; 'mapped' spills each database once to --data-dir "
            "and attaches it read-only, so serving processes share one "
            "on-disk copy and restarts attach instantly (answers are "
            "byte-identical; see docs/STORAGE.md)"
        ),
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        metavar="DIR",
        help="directory for mapped databases (required with --storage mapped)",
    )
    parser.add_argument(
        "--register",
        action="append",
        default=[],
        metavar="JSON",
        help=(
            "database spec to register at startup, e.g. "
            '\'{"name": "demo", "kind": "ssb", "scale_factor": 0.1}\' (repeatable)'
        ),
    )
    parser.add_argument(
        "--trace-path",
        default=None,
        metavar="FILE",
        help=(
            "record request traces to this JSONL file: one span per stage "
            "(serve/plan/execute/engine kernel/cache round-trip), rendered "
            "by python -m repro.obs.summarize; answers are unchanged "
            "(see docs/OBSERVABILITY.md)"
        ),
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "log queries slower than this threshold to --slow-query-path "
            "as structured JSONL (trace id, query fingerprint, ε, "
            "per-stage timings)"
        ),
    )
    parser.add_argument(
        "--slow-query-path",
        default=None,
        metavar="FILE",
        help="destination of the slow-query log (requires --slow-query-ms)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.serving``; returns an exit code."""
    args = _build_parser().parse_args(argv)
    if args.cache_backend != "remote" and (args.cache_url or args.cache_path):
        print("--cache-url/--cache-path require --cache-backend remote", file=sys.stderr)
        return 2
    if args.cache_replicas < 1:
        print("--cache-replicas must be >= 1", file=sys.stderr)
        return 2
    if args.cache_replicas > 1 and not (args.cache_url and "," in args.cache_url):
        print(
            "--cache-replicas > 1 requires a sharded --cache-url list "
            "(host:port,host:port,...)",
            file=sys.stderr,
        )
        return 2
    if args.storage == "mapped" and not args.data_dir:
        print("--storage mapped requires --data-dir", file=sys.stderr)
        return 2
    if args.data_dir and args.storage != "mapped":
        print("--data-dir only applies with --storage mapped", file=sys.stderr)
        return 2
    if (args.slow_query_ms is None) != (args.slow_query_path is None):
        print("--slow-query-ms and --slow-query-path go together", file=sys.stderr)
        return 2
    try:
        backend = make_backend(
            args.cache_backend,
            args.cache_size,
            url=args.cache_url,
            path=args.cache_path,
            policy=args.cache_policy,
            max_bytes=args.cache_max_bytes,
            replicas=args.cache_replicas,
        )
    except ValueError as error:
        print(f"cannot build cache backend: {error}", file=sys.stderr)
        return 2
    previous = set_active_backend(backend)
    # Install the tracer before anything serves: fork/thread consumers
    # inherit the module global, so every span lands in one JSONL file.
    tracer = Tracer(args.trace_path) if args.trace_path else None
    previous_tracer = set_active_tracer(tracer) if tracer is not None else None
    slow_query_log = (
        SlowQueryLog(args.slow_query_path, args.slow_query_ms)
        if args.slow_query_ms is not None
        else None
    )
    try:
        planner = QueryPlanner(seed=args.seed, storage=args.storage, data_dir=args.data_dir)
        for spec_text in args.register:
            try:
                spec = json.loads(spec_text)
                if not isinstance(spec, dict):
                    raise ValueError("spec must be a JSON object")
                info = planner.register(spec.pop("name", None), spec.pop("kind", None), **spec)
            except (ValueError, ServingError) as error:
                print(f"--register {spec_text!r}: {error}", file=sys.stderr)
                return 2
            print(f"registered {info['name']} ({info['kind']})")
        try:
            analyst_budget = PrivacyBudget(args.analyst_epsilon)
            ledger = BudgetLedger(
                analyst_budget,
                max_analysts=args.max_analysts,
                path=args.ledger_path,
            )
        except Exception as error:
            print(f"invalid analyst budget: {error}", file=sys.stderr)
            return 2
        if args.ledger_path and ledger.recovered_analysts:
            print(
                f"ledger journal {args.ledger_path}: recovered spend for "
                f"{ledger.recovered_analysts} analyst(s)"
            )
        try:
            server = QueryServer(
                planner,
                ledger,
                host=args.host,
                port=args.port,
                workers=args.workers,
                accuracy_metadata=not args.private,
                max_inflight=args.max_inflight,
                max_queue=args.max_queue,
                warm_ahead=args.warm_ahead,
                slow_query_log=slow_query_log,
            )
        except ValueError as error:
            print(f"invalid server configuration: {error}", file=sys.stderr)
            return 2
        try:
            asyncio.run(_serve(server))
        except KeyboardInterrupt:
            pass  # platforms without add_signal_handler: still exit cleanly
        finally:
            ledger.close()  # aclose() already closed it; idempotent
        print("server stopped")
        if tracer is not None:
            print(f"trace: {tracer.spans_written} span(s) -> {tracer.path}")
        if slow_query_log is not None:
            print(
                f"slow-query log: {slow_query_log.recorded} record(s) "
                f"-> {slow_query_log.path}"
            )
        return 0
    finally:
        if tracer is not None:
            set_active_tracer(previous_tracer)
            tracer.close()
        close = getattr(backend, "close", None)
        if close is not None:
            close()
        set_active_backend(previous)


async def _serve(server: QueryServer) -> None:
    await server.start()
    print(
        f"serving on {server.host}:{server.port} "
        f"(protocol v{PROTOCOL_VERSION}, cache backend "
        f"{getattr(active_backend(), 'name', 'unknown')!r})"
    )
    await server.serve_until_shutdown()


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
