"""DP mechanisms for k-star counting queries (paper Section 6, Table 2).

Three mechanisms are compared on Q2* / Q3*:

* :class:`KStarPM` — the Predicate Mechanism applied to the query's centre-node
  range predicate: both ends of the range are perturbed with Laplace noise
  scaled to the node-id domain (the number of vertices), and the k-star count
  is then computed exactly over the noisy range.
* :class:`KStarR2T` — Race-to-the-Top over per-centre-node contributions
  ``C(deg(v), k)``, with geometrically increasing truncation thresholds up to
  a public global-sensitivity bound.
* :class:`KStarTM` — naive truncation with smooth sensitivity: node degrees
  are capped at a threshold τ by dropping excess edges, the truncated count is
  released with general-Cauchy noise calibrated to the smooth sensitivity of
  the truncated query.

All three expose ``answer_value(graph, query, rng=None)``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.dp.noise import cauchy_noise, laplace_noise
from repro.dp.sensitivity import smooth_sensitivity_truncated_kstar
from repro.exceptions import PrivacyBudgetError
from repro.graph.edge_table import Graph
from repro.graph.kstar import KStarQuery, kstar_count, per_node_star_counts, star_count_prefix
from repro.rng import RngLike, ensure_rng

__all__ = ["KStarPM", "KStarR2T", "KStarTM"]


class KStarPM:
    """Predicate Mechanism for k-star counting queries."""

    name = "PM"

    def __init__(self, epsilon: float, rng: RngLike = None):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        self.epsilon = float(epsilon)
        self._rng = ensure_rng(rng)

    def answer_value(self, graph: Graph, query: KStarQuery, rng: RngLike = None) -> float:
        generator = ensure_rng(rng) if rng is not None else self._rng
        low, high = query.resolved_range(graph.num_nodes)
        domain_size = graph.num_nodes
        # Range predicate: each endpoint is perturbed with Lap(2·|dom|/ε),
        # exactly as in Algorithm 2 (the k-star query has a single predicate,
        # so it receives the full budget).  Reversed draws are redrawn as in
        # the paper's while-loop, with a bounded retry count.
        sensitivity = 2.0 * domain_size
        noisy_low, noisy_high = low, high
        for _ in range(64):
            noisy_low = int(
                np.clip(np.rint(low + laplace_noise(sensitivity, self.epsilon, rng=generator)),
                        0, domain_size - 1)
            )
            noisy_high = int(
                np.clip(np.rint(high + laplace_noise(sensitivity, self.epsilon, rng=generator)),
                        0, domain_size - 1)
            )
            if noisy_low < noisy_high or domain_size == 1:
                break
        else:
            noisy_low, noisy_high = min(noisy_low, noisy_high), max(noisy_low, noisy_high)
        noisy_query = KStarQuery(k=query.k, low=noisy_low, high=noisy_high, name=query.name)
        return kstar_count(graph, noisy_query)


class KStarR2T:
    """Race-to-the-Top over per-node k-star contributions."""

    name = "R2T"

    def __init__(
        self,
        epsilon: float,
        alpha: float = 0.05,
        global_sensitivity_bound: Optional[float] = None,
        rng: RngLike = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"α must lie in (0, 1), got {alpha!r}")
        self.epsilon = float(epsilon)
        self.alpha = float(alpha)
        self.global_sensitivity_bound = global_sensitivity_bound
        self._rng = ensure_rng(rng)

    def _gs_bound(self, graph: Graph, query: KStarQuery) -> float:
        if self.global_sensitivity_bound is not None:
            return float(self.global_sensitivity_bound)
        # A public coarse bound: one node can centre at most C(n-1, k) stars.
        return float(max(math.comb(graph.num_nodes - 1, query.k), 2))

    def answer_value(self, graph: Graph, query: KStarQuery, rng: RngLike = None) -> float:
        generator = ensure_rng(rng) if rng is not None else self._rng
        low, high = query.resolved_range(graph.num_nodes)
        # Per-centre-node contributions from the cached prefix sums, so
        # repeated trials skip the per-node recount.
        contributions = np.diff(star_count_prefix(graph, query.k)[low : high + 2])

        gs_bound = self._gs_bound(graph, query)
        num_candidates = max(int(math.ceil(math.log2(gs_bound))), 1)
        log_gs = float(num_candidates)
        penalty_factor = log_gs * math.log(max(log_gs / self.alpha, math.e))
        per_candidate_epsilon = self.epsilon / num_candidates

        best = 0.0
        for j in range(1, num_candidates + 1):
            tau = float(2**j)
            truncated = float(np.minimum(contributions, tau).sum())
            noise = laplace_noise(tau, per_candidate_epsilon, rng=generator)
            candidate = truncated + noise - penalty_factor * tau / self.epsilon
            best = max(best, candidate)
        return float(max(best, 0.0))


class KStarTM:
    """Naive degree truncation with smooth sensitivity (TM)."""

    name = "TM"

    def __init__(
        self,
        epsilon: float,
        threshold: Optional[int] = None,
        threshold_quantile: float = 0.99,
        gamma: float = 4.0,
        rng: RngLike = None,
    ):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        if not 0.0 < threshold_quantile <= 1.0:
            raise ValueError("threshold_quantile must lie in (0, 1]")
        self.epsilon = float(epsilon)
        self.threshold = threshold
        self.threshold_quantile = float(threshold_quantile)
        self.gamma = float(gamma)
        self._rng = ensure_rng(rng)

    def _pick_threshold(self, degrees: np.ndarray) -> int:
        if self.threshold is not None:
            return int(self.threshold)
        positive = degrees[degrees > 0]
        if positive.size == 0:
            return 1
        return int(max(np.quantile(positive, self.threshold_quantile), 1))

    def answer_value(self, graph: Graph, query: KStarQuery, rng: RngLike = None) -> float:
        generator = ensure_rng(rng) if rng is not None else self._rng
        degrees = graph.degrees()
        threshold = self._pick_threshold(degrees)

        # Naive truncation: drop edges of over-threshold nodes, then count.
        # Only the truncated degree sequence is needed for the degree-based
        # count, so the subgraph is never materialised.
        truncated_degrees = graph.truncated_degree_sequence(threshold, rng=generator)
        low, high = query.resolved_range(graph.num_nodes)
        star_counts = per_node_star_counts(truncated_degrees, query.k)
        truncated_count = float(star_counts[low : high + 1].sum()) if low <= high else 0.0

        beta = self.epsilon / (2.0 * (self.gamma + 1.0))
        smooth = smooth_sensitivity_truncated_kstar(threshold, query.k, beta)
        noise = cauchy_noise(smooth, self.epsilon, gamma=self.gamma, rng=generator)
        return float(truncated_count + noise)
