"""Unified observability: metrics registry, request tracing, slow-query log.

The package gives every layer of the stack one telemetry vocabulary
(see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — the fork-aware :class:`MetricsRegistry`
  (counters / gauges / fixed-bucket latency histograms with p50/p95/p99),
  the unified ``{counters, gauges, histograms, subsystem}`` snapshot
  schema every ``telemetry`` surface returns, and Prometheus-style
  rendering;
* :mod:`repro.obs.trace` — contextvar ``trace_id``/span propagation
  through serving → planner → executor → engine → cache (threads, forked
  workers and the cache wire included), exported as JSONL;
* :mod:`repro.obs.slowlog` — the serving tier's threshold-filtered
  structured slow-query log;
* :mod:`repro.obs.summarize` — ``python -m repro.obs.summarize`` renders
  a trace file into per-stage latency tables and the critical path.

Nothing here ever influences computed answers: metrics and spans observe
timings and outcomes the code produces anyway, and the parity suites pin
byte-identical results with telemetry on or off.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    UNIFIED_KEYS,
    active_registry,
    registry_scope,
    render_prometheus,
    set_active_registry,
    unified_snapshot,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    Span,
    Tracer,
    active_tracer,
    add_to_span,
    annotate,
    current_span,
    record_span,
    record_timed,
    resume_span,
    set_active_tracer,
    span,
    trace_scope,
    wire_context,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "UNIFIED_KEYS",
    "active_registry",
    "active_tracer",
    "add_to_span",
    "annotate",
    "current_span",
    "record_span",
    "record_timed",
    "registry_scope",
    "render_prometheus",
    "resume_span",
    "set_active_registry",
    "set_active_tracer",
    "span",
    "trace_scope",
    "unified_snapshot",
    "wire_context",
]
