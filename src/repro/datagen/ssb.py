"""Star Schema Benchmark (SSB) generator.

The paper evaluates DP-starJ on SSB [O'Neil et al. 2007]: a star schema with
one fact table (``Lineorder``) and four dimension tables (``Date``,
``Customer``, ``Supplier``, ``Part``).  The official dbgen tool and its data
are not available offline, so this module generates a synthetic instance with

* the same schema, foreign-key structure and attribute hierarchies
  (region → nation → city, mfgr → category → brand, year → month);
* the same predicate domain sizes the paper's queries rely on
  (|region| = 5, |nation| = 25, |city| = 250, |mfgr| = 5, |category| = 25,
  |brand| = 1000, |year| = 7, |month| = 12);
* a configurable scale factor, with ``rows_per_scale_factor`` fact rows per
  unit of scale so laptop-scale experiments stay fast (the paper varies scale
  0.25–1, which maps directly onto this knob);
* configurable key/measure distributions (uniform, exponential, gamma,
  Gaussian mixture) for the skew experiments of Figures 7 and 11.

See DESIGN.md for why this substitution preserves the behaviour the paper
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.datagen.distributions import KeySampler, MeasureSampler, key_sampler, measure_sampler
from repro.db.database import StarDatabase
from repro.db.domains import AttributeDomain
from repro.db.schema import ForeignKey, StarSchema, TableSchema
from repro.db.table import Column, Table
from repro.exceptions import DataGenerationError
from repro.rng import RngLike, ensure_rng

__all__ = [
    "SSBConfig",
    "SSBGenerator",
    "ssb_schema",
    "REGIONS",
    "NATIONS_BY_REGION",
    "YEARS",
]

# ----------------------------------------------------------------------
# attribute hierarchies (matching SSB's domain sizes)
# ----------------------------------------------------------------------
REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATIONS_BY_REGION = {
    "AFRICA": ("ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"),
    "AMERICA": ("ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"),
    "ASIA": ("CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"),
    "EUROPE": ("FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"),
    "MIDDLE EAST": ("EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"),
}

NATIONS = tuple(nation for region in REGIONS for nation in NATIONS_BY_REGION[region])

#: 10 cities per nation — 250 cities, matching SSB's city domain size.
CITIES = tuple(f"{nation[:9]}#{index}" for nation in NATIONS for index in range(10))

MFGRS = tuple(f"MFGR#{index}" for index in range(1, 6))
#: 5 categories per manufacturer — 25 categories (e.g. "MFGR#12").
CATEGORIES = tuple(f"MFGR#{mfgr}{index}" for mfgr in range(1, 6) for index in range(1, 6))
#: 40 brands per category — 1000 brands (e.g. "MFGR#1221").
BRANDS = tuple(
    f"MFGR#{mfgr}{category}{brand:02d}"
    for mfgr in range(1, 6)
    for category in range(1, 6)
    for brand in range(1, 41)
)

YEARS = tuple(range(1992, 1999))  # 7 years, as in SSB
MONTHS = tuple(range(1, 13))
DAYS_PER_YEAR = 365

QUANTITY_RANGE = (1, 50)
REVENUE_RANGE = (1.0, 100.0)
SUPPLYCOST_RANGE = (1.0, 60.0)


# ----------------------------------------------------------------------
# domains and schema
# ----------------------------------------------------------------------
def _domains() -> dict[str, AttributeDomain]:
    return {
        "region": AttributeDomain.categorical("region", REGIONS),
        "nation": AttributeDomain.categorical("nation", NATIONS),
        "city": AttributeDomain.categorical("city", CITIES),
        "mfgr": AttributeDomain.categorical("mfgr", MFGRS),
        "category": AttributeDomain.categorical("category", CATEGORIES),
        "brand": AttributeDomain.categorical("brand", BRANDS),
        "year": AttributeDomain.from_values("year", YEARS),
        "month": AttributeDomain.from_values("month", MONTHS),
    }


def ssb_schema() -> StarSchema:
    """The SSB star schema (shared by the generator, the workloads and tests)."""
    domains = _domains()
    date = TableSchema(
        name="Date",
        key="DK",
        attributes={"year": domains["year"], "month": domains["month"]},
    )
    customer = TableSchema(
        name="Customer",
        key="CK",
        attributes={
            "region": domains["region"],
            "nation": domains["nation"],
            "city": domains["city"],
        },
    )
    supplier = TableSchema(
        name="Supplier",
        key="SK",
        attributes={
            "region": domains["region"],
            "nation": domains["nation"],
            "city": domains["city"],
        },
    )
    part = TableSchema(
        name="Part",
        key="PK",
        attributes={
            "mfgr": domains["mfgr"],
            "category": domains["category"],
            "brand": domains["brand"],
        },
    )
    lineorder = TableSchema(
        name="Lineorder",
        key=None,
        attributes={},
        measures=("quantity", "revenue", "supplycost"),
    )
    return StarSchema(
        fact=lineorder,
        dimensions=[date, customer, supplier, part],
        foreign_keys=[
            ForeignKey(fact_column="DK", dimension_table="Date", dimension_key="DK"),
            ForeignKey(fact_column="CK", dimension_table="Customer", dimension_key="CK"),
            ForeignKey(fact_column="SK", dimension_table="Supplier", dimension_key="SK"),
            ForeignKey(fact_column="PK", dimension_table="Part", dimension_key="PK"),
        ],
    )


# ----------------------------------------------------------------------
# generator configuration
# ----------------------------------------------------------------------
@dataclass
class SSBConfig:
    """Knobs of the SSB generator.

    Parameters
    ----------
    scale_factor:
        Relative data volume (the paper's 0.25–1.0 sweep).
    rows_per_scale_factor:
        Fact rows generated per unit of scale factor.  The official SSB uses
        6 000 000; the default keeps laptop experiments fast while preserving
        the fan-out structure.
    key_distribution:
        How fact-table foreign keys are distributed over dimension keys —
        ``"uniform"`` / ``"exponential"`` / ``"gamma"`` / ``"zipf"`` /
        ``"gaussian_mixture"`` or a ready :class:`KeySampler`.  This is the
        knob the skew experiments (Figures 7 and 11) turn.
    measure_distribution:
        Distribution of the fact measures (``revenue`` etc.), same options.
    dimension_distribution:
        How dimension attributes (cities, brands) are assigned to dimension
        rows.  Kept uniform by default so every predicate region stays
        populated even under heavy fact-table skew.
    seed:
        Seed for reproducible instances.
    """

    scale_factor: float = 1.0
    rows_per_scale_factor: int = 60_000
    key_distribution: Union[str, KeySampler] = "uniform"
    measure_distribution: Union[str, MeasureSampler] = "uniform"
    dimension_distribution: Union[str, KeySampler] = "uniform"
    seed: Optional[int] = None
    customers_per_fact_row: float = 1.0 / 20.0
    suppliers_per_fact_row: float = 1.0 / 200.0
    parts_per_fact_row: float = 1.0 / 30.0

    def __post_init__(self) -> None:
        if self.scale_factor <= 0:
            raise DataGenerationError("scale_factor must be positive")
        if self.rows_per_scale_factor <= 0:
            raise DataGenerationError("rows_per_scale_factor must be positive")


class SSBGenerator:
    """Generate a synthetic SSB :class:`~repro.db.database.StarDatabase`."""

    def __init__(self, config: Optional[SSBConfig] = None, rng: RngLike = None):
        self.config = config or SSBConfig()
        seed = self.config.seed
        self._rng = ensure_rng(seed if seed is not None else rng)
        self.schema = ssb_schema()
        self._domains = _domains()
        key_dist = self.config.key_distribution
        self._key_sampler = (
            key_dist if isinstance(key_dist, KeySampler) else key_sampler(key_dist)
        )
        measure_dist = self.config.measure_distribution
        self._measure_sampler = (
            measure_dist
            if isinstance(measure_dist, MeasureSampler)
            else measure_sampler(measure_dist)
        )
        dimension_dist = self.config.dimension_distribution
        self._dimension_sampler = (
            dimension_dist
            if isinstance(dimension_dist, KeySampler)
            else key_sampler(dimension_dist)
        )

    # ------------------------------------------------------------------
    @property
    def fact_rows(self) -> int:
        return max(int(self.config.rows_per_scale_factor * self.config.scale_factor), 10)

    def _dimension_rows(self) -> dict[str, int]:
        fact_rows = self.fact_rows
        return {
            "Date": len(YEARS) * DAYS_PER_YEAR,
            "Customer": max(int(fact_rows * self.config.customers_per_fact_row), 100),
            "Supplier": max(int(fact_rows * self.config.suppliers_per_fact_row), 50),
            "Part": max(int(fact_rows * self.config.parts_per_fact_row), 200),
        }

    # ------------------------------------------------------------------
    # dimension tables
    # ------------------------------------------------------------------
    def _build_date(self, rows: int) -> Table:
        day_index = np.arange(rows)
        year_codes = (day_index // DAYS_PER_YEAR).clip(0, len(YEARS) - 1)
        day_of_year = day_index % DAYS_PER_YEAR
        month_codes = np.minimum(day_of_year // 31, 11)
        return Table(
            "Date",
            [
                Column(name="DK", values=day_index.astype(np.int64)),
                Column(name="year", values=year_codes, domain=self._domains["year"]),
                Column(name="month", values=month_codes, domain=self._domains["month"]),
            ],
        )

    def _build_geo_dimension(self, name: str, key_name: str, rows: int) -> Table:
        city_codes = self._dimension_sampler.sample(len(CITIES), rows, rng=self._rng)
        nation_codes = city_codes // 10
        region_codes = nation_codes // 5
        return Table(
            name,
            [
                Column(name=key_name, values=np.arange(rows, dtype=np.int64)),
                Column(name="region", values=region_codes, domain=self._domains["region"]),
                Column(name="nation", values=nation_codes, domain=self._domains["nation"]),
                Column(name="city", values=city_codes, domain=self._domains["city"]),
            ],
        )

    def _build_part(self, rows: int) -> Table:
        brand_codes = self._dimension_sampler.sample(len(BRANDS), rows, rng=self._rng)
        category_codes = brand_codes // 40
        mfgr_codes = category_codes // 5
        return Table(
            "Part",
            [
                Column(name="PK", values=np.arange(rows, dtype=np.int64)),
                Column(name="mfgr", values=mfgr_codes, domain=self._domains["mfgr"]),
                Column(name="category", values=category_codes, domain=self._domains["category"]),
                Column(name="brand", values=brand_codes, domain=self._domains["brand"]),
            ],
        )

    # ------------------------------------------------------------------
    # fact table
    # ------------------------------------------------------------------
    def _build_fact(self, dimension_rows: dict[str, int]) -> Table:
        rows = self.fact_rows
        fk_columns = {
            "DK": self._key_sampler.sample(dimension_rows["Date"], rows, rng=self._rng),
            "CK": self._key_sampler.sample(dimension_rows["Customer"], rows, rng=self._rng),
            "SK": self._key_sampler.sample(dimension_rows["Supplier"], rows, rng=self._rng),
            "PK": self._key_sampler.sample(dimension_rows["Part"], rows, rng=self._rng),
        }
        quantity = self._rng.integers(QUANTITY_RANGE[0], QUANTITY_RANGE[1] + 1, size=rows)
        revenue = self._measure_sampler.sample(
            rows, rng=self._rng, low=REVENUE_RANGE[0], high=REVENUE_RANGE[1]
        )
        supplycost = self._measure_sampler.sample(
            rows, rng=self._rng, low=SUPPLYCOST_RANGE[0], high=SUPPLYCOST_RANGE[1]
        )
        columns = [
            Column(name="DK", values=fk_columns["DK"]),
            Column(name="CK", values=fk_columns["CK"]),
            Column(name="SK", values=fk_columns["SK"]),
            Column(name="PK", values=fk_columns["PK"]),
            Column(name="quantity", values=quantity.astype(np.float64)),
            Column(name="revenue", values=revenue),
            Column(name="supplycost", values=supplycost),
        ]
        return Table("Lineorder", columns)

    # ------------------------------------------------------------------
    def build(self) -> StarDatabase:
        """Generate the full star database instance."""
        dimension_rows = self._dimension_rows()
        dimensions = {
            "Date": self._build_date(dimension_rows["Date"]),
            "Customer": self._build_geo_dimension("Customer", "CK", dimension_rows["Customer"]),
            "Supplier": self._build_geo_dimension("Supplier", "SK", dimension_rows["Supplier"]),
            "Part": self._build_part(dimension_rows["Part"]),
        }
        fact = self._build_fact(dimension_rows)
        return StarDatabase(schema=self.schema, fact=fact, dimensions=dimensions)

    def spill_to(self, path, overwrite: bool = False):
        """Generate the instance and write it as the mapped on-disk layout.

        Returns the manifest path; any process can then attach the instance
        read-only with :func:`repro.db.storage.attach_database` without
        re-running generation (see ``docs/STORAGE.md``).  Generation itself
        is in-memory — spilling is for the consumers, who stream the files
        chunk-wise instead of holding their own copy.
        """
        return self.build().spill_to(path, overwrite=overwrite)


def generate_ssb(
    scale_factor: float = 1.0,
    seed: Optional[int] = None,
    rows_per_scale_factor: int = 60_000,
    key_distribution: Union[str, KeySampler] = "uniform",
    measure_distribution: Union[str, MeasureSampler] = "uniform",
) -> StarDatabase:
    """One-call convenience wrapper around :class:`SSBGenerator`."""
    config = SSBConfig(
        scale_factor=scale_factor,
        rows_per_scale_factor=rows_per_scale_factor,
        key_distribution=key_distribution,
        measure_distribution=measure_distribution,
        seed=seed,
    )
    return SSBGenerator(config).build()
