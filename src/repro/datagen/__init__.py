"""Synthetic data generators.

* :mod:`~repro.datagen.distributions` — reusable key/measure samplers
  (uniform, exponential, gamma, Zipf, Gaussian mixtures) used to control the
  data skew in the Figure 7 / Figure 11 experiments.
* :mod:`~repro.datagen.ssb` — the Star Schema Benchmark generator (fact table
  ``Lineorder`` plus ``Date``, ``Customer``, ``Supplier``, ``Part``), the
  substitute for the paper's dbgen-produced SSB data.
* :mod:`~repro.datagen.tpch` — a snowflake variant (``Date`` normalised into a
  ``Month`` dimension) standing in for the TPC-H snowflake experiments.
"""

from repro.datagen.distributions import KeySampler, MeasureSampler, key_sampler, measure_sampler
from repro.datagen.ssb import SSBConfig, SSBGenerator, generate_ssb, ssb_schema
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator, snowflake_schema

__all__ = [
    "KeySampler",
    "MeasureSampler",
    "key_sampler",
    "measure_sampler",
    "SSBConfig",
    "SSBGenerator",
    "ssb_schema",
    "SnowflakeConfig",
    "SnowflakeGenerator",
    "snowflake_schema",
]
