"""Table 2: PM, R2T and TM on k-star counting queries (Deezer / Amazon).

For ε ∈ {0.1, 0.5, 1} the driver reports, per dataset (a Deezer-like and an
Amazon-like synthetic graph) and per query (Q2*, Q3*), the mean relative
error and mean running time of the three mechanisms — the same cells as the
paper's Table 2.  The graph scale defaults to a fraction of the original
datasets so the whole table regenerates in seconds; pass ``graph_scale=1.0``
for full-size graphs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.evaluation.experiments.common import ExperimentConfig, cell_seed
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import evaluate_kstar_mechanism, make_kstar_mechanism
from repro.graph.generators import amazon_like, deezer_like
from repro.graph.kstar import kstar_count
from repro.workloads.kstar_queries import q2star, q3star

__all__ = ["run", "MECHANISMS", "KSTAR_EPSILONS"]

MECHANISMS = ("PM", "R2T", "TM")
KSTAR_EPSILONS = (0.1, 0.5, 1.0)


def run(
    config: Optional[ExperimentConfig] = None,
    graph_scale: float = 0.25,
    epsilons: Sequence[float] = KSTAR_EPSILONS,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Table 2 (relative error and running time on k-star queries)."""
    config = config or ExperimentConfig()
    graphs = {
        "Deezer": deezer_like(rng=config.seed, scale=graph_scale),
        "Amazon": amazon_like(rng=config.seed + 1, scale=graph_scale),
    }
    result = ExperimentResult(
        title="Table 2: PM, R2T, TM on k-star queries (relative error % and time)",
        notes=(
            f"Synthetic power-law graphs at scale {graph_scale} of the original "
            "datasets (see DESIGN.md substitutions); "
            f"{config.trials} trials per cell."
        ),
    )
    for dataset, graph in graphs.items():
        for query in (q2star(graph), q3star(graph)):
            exact = kstar_count(graph, query)
            for epsilon in epsilons:
                for mechanism_name in mechanisms:
                    mechanism = make_kstar_mechanism(mechanism_name, epsilon)
                    evaluation = evaluate_kstar_mechanism(
                        mechanism,
                        graph,
                        query,
                        trials=config.trials,
                        rng=config.seed + cell_seed(dataset, query.label, epsilon, mechanism_name),
                        exact_answer=exact,
                    )
                    result.add_row(
                        dataset=dataset,
                        query=query.label,
                        epsilon=epsilon,
                        mechanism=mechanism_name,
                        relative_error_pct=evaluation.mean_relative_error,
                        mean_time_s=evaluation.mean_time,
                    )
    return result
