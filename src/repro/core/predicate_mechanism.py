"""The Predicate Mechanism (PM) — paper Algorithms 1 and 3.

PM answers an aggregate star-join query ``Q`` under ε-DP by

1. extracting the composite predicate Φ = φ_{a_1} ∧ ... ∧ φ_{a_n} from ``Q``
   (one predicate per dimension table touched by the query);
2. splitting the budget evenly, ε_i = ε / n, and perturbing every φ_{a_i}
   with :class:`~repro.core.pma.PredicateMechanismForAttribute`;
3. executing the *noisy* query Φ̂ · W exactly against the true database
   instance.

Because the noise is injected into the query rather than the result, the
released answer is a deterministic post-processing of the noisy predicates,
so the privacy guarantee follows from the per-predicate Laplace mechanism and
sequential composition (Theorems 5.3 / 5.4).  COUNT, SUM and GROUP BY queries
are all supported (Algorithm 3 and the Group_By discussion in Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.pma import PredicateMechanismForAttribute
from repro.db.database import StarDatabase
from repro.db.engine import ExecutionEngine
from repro.db.executor import GroupedResult, QueryExecutor
from repro.db.predicates import Predicate
from repro.db.query import StarJoinQuery
from repro.dp.accountant import PrivacyAccountant, PrivacyBudget
from repro.exceptions import PrivacyBudgetError
from repro.rng import RngLike, ensure_rng

__all__ = ["PredicateMechanism", "PMAnswer"]

AnswerValue = Union[float, GroupedResult]


@dataclass(frozen=True)
class PMAnswer:
    """The result of one PM invocation.

    Attributes
    ----------
    value:
        The noisy query answer (scalar or grouped).
    noisy_query:
        The perturbed query that was executed — useful for inspection and for
        the examples, which print the noisy predicates next to the originals.
    epsilon:
        Total privacy budget consumed.
    """

    value: AnswerValue
    noisy_query: StarJoinQuery
    epsilon: float


class PredicateMechanism:
    """Algorithm 1 / Algorithm 3: PM for aggregate star-join queries.

    Parameters
    ----------
    epsilon:
        Total privacy budget ε for one query.
    rng:
        Seed or generator controlling the perturbation randomness.
    range_mode:
        Range-perturbation variant forwarded to
        :class:`~repro.core.pma.PredicateMechanismForAttribute`
        (``"shift"`` by default, ``"endpoints"`` for the literal Algorithm 2).
    """

    name = "PM"
    supports_count = True
    supports_sum = True
    supports_group_by = True

    def __init__(self, epsilon: float, rng: RngLike = None, range_mode: str = "shift"):
        if epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
        self.epsilon = float(epsilon)
        self.range_mode = range_mode
        self._rng = ensure_rng(rng)

    # ------------------------------------------------------------------
    # Phase 2: perturbation
    # ------------------------------------------------------------------
    def perturb_query(
        self, query: StarJoinQuery, rng: RngLike = None
    ) -> tuple[StarJoinQuery, PrivacyAccountant]:
        """Perturb every predicate of ``query``, splitting ε evenly.

        Returns the noisy query together with the accountant that recorded the
        per-predicate charges (the tests assert it sums to exactly ε).
        """
        generator = ensure_rng(rng) if rng is not None else self._rng
        accountant = PrivacyAccountant(PrivacyBudget(self.epsilon))
        predicates = list(query.predicates)
        if not predicates:
            # A query without predicates releases nothing data dependent about
            # the predicate structure; answering it exactly would not be DP,
            # so we still charge the budget and leave the (empty) predicate
            # untouched — the aggregate over the full fact table is public
            # structure in the paper's model (all filtering happens on
            # dimension attributes).
            accountant.charge(PrivacyBudget(self.epsilon), label="empty-predicate")
            return query, accountant

        per_predicate_epsilon = self.epsilon / len(predicates)
        pma = PredicateMechanismForAttribute(
            epsilon=per_predicate_epsilon, range_mode=self.range_mode
        )
        noisy_predicates: list[Predicate] = []
        for predicate in predicates:
            noisy_predicates.append(pma.perturb(predicate, rng=generator))
            accountant.charge(
                PrivacyBudget(per_predicate_epsilon),
                label=f"PMA:{predicate.table}.{predicate.attribute}",
            )
        return query.with_predicates(noisy_predicates), accountant

    # ------------------------------------------------------------------
    # Phase 3: answering
    # ------------------------------------------------------------------
    def answer(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        executor: Optional[QueryExecutor] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> PMAnswer:
        """Answer ``query`` on ``database`` under ε-DP.

        Returns a :class:`PMAnswer`; ``value`` is a float for scalar
        aggregates and a :class:`~repro.db.executor.GroupedResult` for
        GROUP BY queries.  Execution goes through the database's shared
        :class:`~repro.db.engine.ExecutionEngine` (or an explicit ``engine``),
        so noisy-query selections reuse cached semi-join work where possible.
        """
        noisy_query, accountant = self.perturb_query(query, rng=rng)
        executor = executor or QueryExecutor(database, engine=engine)
        value = executor.execute(noisy_query)
        accountant.assert_exhausted()
        return PMAnswer(value=value, noisy_query=noisy_query, epsilon=self.epsilon)

    def answer_value(
        self,
        database: StarDatabase,
        query: StarJoinQuery,
        rng: RngLike = None,
        executor: Optional[QueryExecutor] = None,
        engine: Optional[ExecutionEngine] = None,
    ) -> AnswerValue:
        """Like :meth:`answer` but returning only the noisy value."""
        return self.answer(database, query, rng=rng, executor=executor, engine=engine).value

    # ------------------------------------------------------------------
    # theoretical error bounds (Section 5.4)
    # ------------------------------------------------------------------
    def loose_variance_bound(self, query: StarJoinQuery) -> float:
        """Theorem 5.6: ``(2n²/ε²)^n · Π_i |dom(a_i)|²``."""
        n = max(query.num_predicates, 1)
        product = 1.0
        for size in query.domain_sizes():
            product *= float(size) ** 2
        return ((2.0 * n * n) / (self.epsilon**2)) ** n * product

    def tight_variance_bound(self, query: StarJoinQuery) -> float:
        """Theorem 5.7: ``(2n²/ε²) · Σ_i |dom(a_i)|²``."""
        n = max(query.num_predicates, 1)
        total = sum(float(size) ** 2 for size in query.domain_sizes())
        return (2.0 * n * n) / (self.epsilon**2) * total
