"""Per-table / per-figure experiment drivers.

Each module regenerates one table or figure of the paper's evaluation
section and returns an :class:`~repro.evaluation.reporting.ExperimentResult`
whose rows mirror the paper's layout:

=============  =====================================================
Module         Paper artefact
=============  =====================================================
``table1``     Table 1 — relative error of PM / R2T / LS on SSB queries
``table2``     Table 2 — error and time of PM / R2T / TM on k-star queries
``figure4``    Figure 4 — error and time vs data scale (COUNT queries)
``figure5``    Figure 5 — error and time vs data scale (SUM queries)
``figure6``    Figure 6 — error vs global-sensitivity bound GS_Q
``figure7``    Figure 7 — error under Uniform / Exponential / Gamma data
``figure8``    Figure 8 — error vs predicate domain size
``figure9``    Figure 9 — error of PM vs WD on workloads W1 / W2
``figure10``   Figure 10 — error on snowflake queries Qtc / Qts
``figure11``   Figure 11 — error under Gaussian-mixture skew
=============  =====================================================

All drivers share :class:`~repro.evaluation.experiments.common.ExperimentConfig`
(scale, trials, ε grid, seed), default to a laptop-friendly configuration and
accept a larger one for higher-fidelity runs.
"""

from repro.evaluation.experiments.common import DEFAULT_PRIVATE_DIMENSIONS, ExperimentConfig
from repro.evaluation.experiments import (  # noqa: F401
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    table1,
    table2,
)

__all__ = [
    "ExperimentConfig",
    "DEFAULT_PRIVATE_DIMENSIONS",
    "table1",
    "table2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
]
