"""repro — a reproduction of DP-starJ (SIGMOD 2023).

DP-starJ answers analytical star-join queries under differential privacy by
perturbing the query's *predicates* (inside each attribute's finite domain)
instead of its result, sidestepping the unbounded global sensitivity that
foreign-key constraints impose on output-perturbation mechanisms.

The package layout mirrors the paper:

* :mod:`repro.db` — the star-schema relational substrate (tables, predicates,
  star-join execution, a small SQL parser);
* :mod:`repro.dp` — DP primitives (noise, sensitivities, accounting,
  neighbouring-instance definitions);
* :mod:`repro.core` — the DP-starJ framework: the Predicate Mechanism
  (Algorithms 1–3), workload decomposition (Algorithm 4), snowflake support;
* :mod:`repro.baselines` — LM, LS, TM and R2T output-perturbation baselines;
* :mod:`repro.graph` — the graph substrate and k-star counting mechanisms;
* :mod:`repro.datagen` — SSB / snowflake / skewed-data generators;
* :mod:`repro.workloads` — the paper's evaluation queries;
* :mod:`repro.evaluation` — the experiment harness regenerating every table
  and figure;
* :mod:`repro.serving` — the online query-serving subsystem (JSON-line
  server, per-analyst budget ledger, single-flight coalescing; imported on
  demand, see ``docs/SERVING.md``).

Quickstart::

    from repro import DPStarJoin, generate_ssb, ssb_query

    database = generate_ssb(scale_factor=0.25, seed=7)
    session = DPStarJoin(database, total_epsilon=2.0, rng=7)
    answer = session.answer(ssb_query("Qc3"), epsilon=0.5)
    print(answer.value, session.exact(ssb_query("Qc3")))
"""

from repro.core.dp_starj import DPStarJoin
from repro.core.pma import PredicateMechanismForAttribute, perturb_predicate
from repro.core.predicate_mechanism import PredicateMechanism
from repro.core.snowflake import SnowflakePredicateMechanism
from repro.core.workload import IndependentPMWorkload, WorkloadDecomposition
from repro.baselines import (
    LocalSensitivityMechanism,
    OutputLaplaceMechanism,
    RaceToTheTop,
    TruncationMechanism,
)
from repro.datagen.ssb import SSBConfig, SSBGenerator, generate_ssb, ssb_schema
from repro.datagen.tpch import SnowflakeConfig, SnowflakeGenerator, snowflake_schema
from repro.db import (
    AttributeDomain,
    PointPredicate,
    QueryExecutor,
    RangePredicate,
    SetPredicate,
    StarDatabase,
    StarJoinQuery,
    StarSchema,
    Table,
    TableSchema,
    parse_star_join_sql,
)
from repro.dp.neighboring import PrivacyScenario, generate_neighbor
from repro.graph import (
    Graph,
    KStarPM,
    KStarQuery,
    KStarR2T,
    KStarTM,
    amazon_like,
    deezer_like,
    kstar_count,
    powerlaw_graph,
)
from repro.workloads import (
    all_ssb_queries,
    snowflake_queries,
    ssb_query,
    workload_w1,
    workload_w2,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "DPStarJoin",
    "PredicateMechanism",
    "PredicateMechanismForAttribute",
    "perturb_predicate",
    "SnowflakePredicateMechanism",
    "IndependentPMWorkload",
    "WorkloadDecomposition",
    # baselines
    "OutputLaplaceMechanism",
    "LocalSensitivityMechanism",
    "TruncationMechanism",
    "RaceToTheTop",
    # db substrate
    "AttributeDomain",
    "Table",
    "TableSchema",
    "StarSchema",
    "StarDatabase",
    "StarJoinQuery",
    "QueryExecutor",
    "PointPredicate",
    "RangePredicate",
    "SetPredicate",
    "parse_star_join_sql",
    # privacy model
    "PrivacyScenario",
    "generate_neighbor",
    # data generation
    "SSBConfig",
    "SSBGenerator",
    "generate_ssb",
    "ssb_schema",
    "SnowflakeConfig",
    "SnowflakeGenerator",
    "snowflake_schema",
    # graphs
    "Graph",
    "KStarQuery",
    "KStarPM",
    "KStarR2T",
    "KStarTM",
    "kstar_count",
    "powerlaw_graph",
    "deezer_like",
    "amazon_like",
    # workloads
    "ssb_query",
    "all_ssb_queries",
    "workload_w1",
    "workload_w2",
    "snowflake_queries",
]
