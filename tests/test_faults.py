"""Fault-tolerance tests: chaos proxy, circuit breaker, durable ledger,
overload shedding and graceful drain.

The contracts under test (see docs/SERVING.md and docs/CACHE.md):

* the chaos proxy injects exactly the faults its spec names, deterministically
  per seed, and can be re-specced against live connections;
* the remote cache client's circuit breaker converts server failures into
  local-only degradation and probes its way back once the server heals —
  results stay byte-identical through arbitrary network chaos;
* the durable budget ledger journals every charge before the engine runs, so
  a SIGKILL at any point recovers to "charged" (never under-charged) and a
  restart replays spend, refunds reconciled;
* an overloaded server refuses with a structured ``overloaded`` error (queue
  depth + retry hint) that costs the analyst no budget;
* shutdown drains: a request whose line was read gets its response before the
  transport closes, and both embeddable server threads raise loudly instead
  of leaking a hung event loop.
"""

import json
import multiprocessing
import os
import signal
import socket
import sqlite3
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.db.cache import (
    LocalCacheBackend,
    RemoteCacheBackend,
    ShardedCacheBackend,
    backend_scope,
)
from repro.db.cache.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.db.cache.server import CacheServerThread
from repro.db.cache.wire import MAX_FRAME_HEADER, MAX_FRAME_PAYLOAD, read_frame
from repro.dp.accountant import PrivacyBudget
from repro.serving import (
    BudgetLedger,
    LedgerJournal,
    QueryPlanner,
    QueryServer,
    ServerThread,
    ServingClient,
    ServingError,
)
from repro.serving.server import COLD_START_EXECUTION_ESTIMATE_S
from repro.testing import ChaosProxy, FaultSpec

SEED = 909090

DEMO_SPEC = {
    "name": "demo",
    "kind": "ssb",
    "scale_factor": 1.0,
    "rows_per_scale_factor": 2000,
    "seed": 5,
}


@pytest.fixture(scope="module")
def planner():
    planner = QueryPlanner(seed=SEED)
    spec = dict(DEMO_SPEC)
    planner.register(spec.pop("name"), spec.pop("kind"), **spec)
    return planner


def _subprocess_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


# ----------------------------------------------------------------------
# the chaos proxy
# ----------------------------------------------------------------------
@pytest.fixture()
def echo_server():
    """A plain TCP echo server — the simplest upstream to proxy faults onto."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(16)
    port = listener.getsockname()[1]
    stopping = threading.Event()

    def pump(conn):
        try:
            while True:
                data = conn.recv(65536)
                if not data:
                    break
                conn.sendall(data)
        except OSError:
            pass
        finally:
            conn.close()

    def serve():
        while not stopping.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            threading.Thread(target=pump, args=(conn,), daemon=True).start()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    yield "127.0.0.1", port
    stopping.set()
    listener.close()
    thread.join(timeout=5)


def _proxied_connection(proxy, timeout=5.0):
    sock = socket.create_connection(("127.0.0.1", proxy.port), timeout=timeout)
    sock.settimeout(timeout)
    return sock


def _read_until_eof(sock):
    received = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return received
        received += chunk


class TestFaultSpec:
    def test_default_spec_is_transparent(self):
        assert FaultSpec().transparent is True
        assert FaultSpec(drop_rate=0.1).transparent is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": 1.5},
            {"corrupt_rate": -0.1},
            {"truncate_rate": 2.0},
            {"kill_rate": -1.0},
            {"delay_rate": 1.01},
            {"delay_s": -0.5},
        ],
    )
    def test_out_of_range_fields_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_set_faults_rejects_unknown_field(self, echo_server):
        with ChaosProxy(*echo_server) as proxy:
            with pytest.raises(TypeError, match="corupt_rate"):
                proxy.set_faults(corupt_rate=1.0)  # a typo must not run clean


class TestChaosProxy:
    def test_transparent_round_trip(self, echo_server):
        with ChaosProxy(*echo_server) as proxy:
            with _proxied_connection(proxy) as sock:
                sock.sendall(b"hello chaos")
                assert sock.recv(1024) == b"hello chaos"
            # The pumps increment counters after forwarding, so the echo can
            # arrive a beat before the second increment lands.
            _wait_for(
                lambda: proxy.stats()["chunks_forwarded"] >= 2,
                message="both directions to be counted",
            )
            stats = proxy.stats()
        assert stats["connections_accepted"] == 1
        assert stats["chunks_dropped"] == 0
        assert stats["chunks_corrupted"] == 0

    def test_drop_loses_chunks_but_keeps_the_connection(self, echo_server):
        with ChaosProxy(*echo_server, spec=FaultSpec(drop_rate=1.0)) as proxy:
            with _proxied_connection(proxy, timeout=0.3) as sock:
                sock.sendall(b"lost")
                with pytest.raises(socket.timeout):
                    sock.recv(1024)
                sock.sendall(b"also lost")  # the link itself is still up
            assert proxy.stats()["chunks_dropped"] >= 1
            assert proxy.stats()["chunks_forwarded"] == 0

    def test_corrupt_flips_bytes_preserving_length(self, echo_server):
        sent = bytes(range(256)) * 4
        with ChaosProxy(*echo_server, spec=FaultSpec(corrupt_rate=1.0)) as proxy:
            with _proxied_connection(proxy) as sock:
                sock.sendall(sent)
                received = b""
                while len(received) < len(sent):
                    received += sock.recv(65536)
        assert len(received) == len(sent)
        assert received != sent
        assert proxy.stats()["chunks_corrupted"] >= 1

    def test_corruption_is_deterministic_per_seed(self, echo_server):
        sent = b"determinism" * 100

        def round_trip(seed):
            spec = FaultSpec(corrupt_rate=1.0)
            with ChaosProxy(*echo_server, spec=spec, seed=seed) as proxy:
                with _proxied_connection(proxy) as sock:
                    sock.sendall(sent)
                    received = b""
                    while len(received) < len(sent):
                        received += sock.recv(65536)
            return received

        assert round_trip(7) == round_trip(7)

    def test_truncate_forwards_a_prefix_then_kills(self, echo_server):
        sent = b"x" * 4096
        with ChaosProxy(*echo_server, spec=FaultSpec(truncate_rate=1.0)) as proxy:
            with _proxied_connection(proxy) as sock:
                sock.sendall(sent)
                # The kill may race the echo: the client sees a strict
                # prefix of what it sent (possibly empty), never garbage.
                received = _read_until_eof(sock)
        assert len(received) < len(sent)
        assert received == sent[: len(received)]
        assert proxy.stats()["chunks_truncated"] >= 1

    def test_kill_rate_closes_the_connection(self, echo_server):
        with ChaosProxy(*echo_server, spec=FaultSpec(kill_rate=1.0)) as proxy:
            with _proxied_connection(proxy) as sock:
                sock.sendall(b"doomed")
                assert _read_until_eof(sock) == b""
            assert proxy.stats()["connections_killed"] >= 1

    def test_freeze_holds_traffic_until_thawed(self, echo_server):
        with ChaosProxy(*echo_server) as proxy:
            with _proxied_connection(proxy, timeout=0.3) as sock:
                proxy.freeze()
                sock.sendall(b"stuck")
                with pytest.raises(socket.timeout):
                    sock.recv(1024)
                proxy.thaw()
                sock.settimeout(5.0)
                assert sock.recv(1024) == b"stuck"

    def test_kill_connections_cuts_live_links(self, echo_server):
        with ChaosProxy(*echo_server) as proxy:
            with _proxied_connection(proxy) as sock:
                sock.sendall(b"warm")
                assert sock.recv(1024) == b"warm"
                assert proxy.kill_connections() == 1
                assert _read_until_eof(sock) == b""

    def test_unreachable_upstream_counts_a_refusal(self):
        # A freshly bound-then-closed port is as good as guaranteed closed.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with ChaosProxy("127.0.0.1", dead_port) as proxy:
            with _proxied_connection(proxy) as sock:
                assert _read_until_eof(sock) == b""
            _wait_for(
                lambda: proxy.stats()["connections_refused"] == 1,
                message="the refusal counter",
            )


# ----------------------------------------------------------------------
# the circuit breaker (unit, stepped clock)
# ----------------------------------------------------------------------
class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, threshold=3, reset=2.0):
        clock = _Clock()
        return CircuitBreaker(threshold, reset, clock=clock), clock

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)

    def test_stays_closed_below_the_threshold(self):
        breaker, _ = self.make()
        breaker.record_failure(OSError("x"))
        breaker.record_failure(OSError("x"))
        assert breaker.state == CLOSED
        assert breaker.allow() is True

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self.make()
        for _ in range(5):  # never three in a row
            breaker.record_failure(OSError("x"))
            breaker.record_failure(OSError("x"))
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_threshold_failures_open_the_circuit(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure(OSError("boom"))
        assert breaker.state == OPEN
        assert breaker.allow() is False
        assert breaker.stats()["rejections"] == 1
        assert "boom" in breaker.stats()["last_error"]

    def test_half_open_grants_exactly_one_probe(self):
        breaker, clock = self.make(reset=2.0)
        for _ in range(3):
            breaker.record_failure(OSError("x"))
        clock.now = 2.5
        assert breaker.state == HALF_OPEN
        assert breaker.allow() is True  # the probe slot
        assert breaker.allow() is False  # probe in flight: everyone else waits

    def test_probe_success_closes_and_counts_a_recovery(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure(OSError("x"))
        clock.now = 2.5
        assert breaker.allow() is True
        breaker.record_success()
        assert breaker.state == CLOSED
        stats = breaker.stats()
        assert stats["trips"] == 1
        assert stats["recoveries"] == 1

    def test_probe_failure_reopens_and_restarts_the_timeout(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure(OSError("x"))
        clock.now = 2.5
        assert breaker.allow() is True
        breaker.record_failure(OSError("still down"))
        assert breaker.state == OPEN
        clock.now = 4.0  # 1.5s after the reopen: still open
        assert breaker.allow() is False
        clock.now = 4.6
        assert breaker.allow() is True

    def test_trip_opens_immediately(self):
        breaker, _ = self.make()
        breaker.trip(ValueError("corrupt payload"))
        assert breaker.state == OPEN
        assert breaker.stats()["trips"] == 1

    def test_trip_while_open_restarts_the_timeout(self):
        breaker, clock = self.make()
        breaker.trip(ValueError("x"))
        clock.now = 1.9
        breaker.trip(ValueError("y"))
        clock.now = 2.5  # only 0.6s since the second trip
        assert breaker.allow() is False
        clock.now = 4.0
        assert breaker.allow() is True

    def test_reset_force_closes(self):
        breaker, _ = self.make()
        breaker.trip(ValueError("x"))
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow() is True


# ----------------------------------------------------------------------
# the remote cache client under chaos
# ----------------------------------------------------------------------
def _resilient_backend(port, **overrides):
    settings = dict(
        host="127.0.0.1",
        port=port,
        max_entries=64,
        op_timeout=0.5,
        retry_attempts=2,
        backoff_base=0.01,
        backoff_max=0.02,
        breaker_threshold=2,
        breaker_reset_timeout=0.2,
    )
    settings.update(overrides)
    return RemoteCacheBackend(**settings)


class TestRemoteBackendUnderChaos:
    def test_breaker_trips_to_local_only_and_probes_back(self):
        with CacheServerThread(max_entries=256) as handle:
            with ChaosProxy("127.0.0.1", handle.server.port) as proxy:
                backend = _resilient_backend(proxy.port)
                try:
                    backend.put("ns", "result", ("k",), 1.5)
                    assert backend.degraded is False
                    # The network turns to garbage: every chunk corrupted.
                    proxy.set_faults(corrupt_rate=1.0)
                    backend.release("ns")  # force the next get to go remote
                    assert backend.get("ns", "result", ("k",)) is None
                    assert backend.degraded is True
                    assert backend.breaker_stats()["trips"] >= 1
                    # While open, gets are local-only misses, not hangs.
                    assert backend.get("ns", "result", ("k",)) is None
                    # The network heals; the breaker probes and recovers.
                    proxy.set_faults()
                    time.sleep(0.25)  # past breaker_reset_timeout
                    assert backend.get("ns", "result", ("k",)) == 1.5
                    assert backend.degraded is False
                    stats = backend.breaker_stats()
                    assert stats["state"] == CLOSED
                    assert stats["recoveries"] >= 1
                finally:
                    backend.close()

    def test_frozen_server_surfaces_as_a_bounded_timeout(self):
        with CacheServerThread(max_entries=256) as handle:
            with ChaosProxy("127.0.0.1", handle.server.port) as proxy:
                backend = _resilient_backend(proxy.port, retry_attempts=1)
                try:
                    backend.put("ns", "result", ("k",), 2.5)
                    proxy.freeze()
                    backend.release("ns")
                    started = time.monotonic()
                    assert backend.get("ns", "result", ("k",)) is None
                    elapsed = time.monotonic() - started
                    # One op_timeout (0.5s) per attempt, not a hang.
                    assert elapsed < 5.0
                    proxy.thaw()
                finally:
                    backend.close()

    def test_served_bytes_identical_through_a_flaky_network(self, planner):
        """The acceptance scenario: a batch run through a proxy dropping,
        delaying and killing traffic produces byte-identical answers —
        sharing degrades, correctness never does."""
        request = {
            "database": "demo",
            "mechanism": "PM",
            "epsilon": 0.5,
            "query": "Qc3",
            "trials": 2,
        }
        with backend_scope(LocalCacheBackend(64)):
            reference = planner.execute(planner.plan(request))
        chaos = FaultSpec(drop_rate=0.05, kill_rate=0.02, delay_s=0.005, delay_rate=0.3)
        with CacheServerThread(max_entries=2048) as handle:
            with ChaosProxy("127.0.0.1", handle.server.port, spec=chaos) as proxy:
                backend = _resilient_backend(
                    proxy.port, op_timeout=0.25, breaker_threshold=3
                )
                try:
                    with backend_scope(backend):
                        first = planner.execute(planner.plan(request))
                        again = planner.execute(planner.plan(request))
                finally:
                    backend.close()
                assert proxy.stats()["chunks_seen"] > 0
        assert (
            json.dumps(reference["answers"])
            == json.dumps(first["answers"])
            == json.dumps(again["answers"])
        )
        assert reference["mean_relative_error"] == first["mean_relative_error"]

    def test_oversized_value_stays_local_without_degrading(self, monkeypatch):
        import repro.db.cache.remote as remote_module

        with CacheServerThread(max_entries=256) as handle:
            backend = _resilient_backend(handle.server.port)
            try:
                monkeypatch.setattr(remote_module, "MAX_FRAME_PAYLOAD", 64)
                backend.put("ns", "result", ("big",), tuple(range(1000)))
                # L1 holds it; the remote tier was never asked to.
                assert backend.get("ns", "result", ("big",)) == tuple(range(1000))
                assert backend.stats().shared_puts == 0
                assert backend.degraded is False
            finally:
                backend.close()


# ----------------------------------------------------------------------
# frame-size bounds on the cache wire protocol
# ----------------------------------------------------------------------
class TestFrameBounds:
    def _expect_bad_frame(self, port, raw_prefix_frames):
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            for blob in raw_prefix_frames:
                stream.write(blob)
            stream.flush()
            header, _, _ = read_frame(stream)
            assert header["ok"] is False
            assert "bad frame" in header["error"]
            assert "bound" in header["error"]
            # The connection cannot be resynchronised: the server drops it.
            assert stream.read(1) == b""

    def test_oversized_header_length_is_refused_structurally(self):
        with CacheServerThread(max_entries=16) as handle:
            self._expect_bad_frame(
                handle.server.port, [struct.pack(">I", MAX_FRAME_HEADER + 1)]
            )

    def test_oversized_payload_length_is_refused_structurally(self):
        header = json.dumps({"op": "ping"}).encode()
        with CacheServerThread(max_entries=16) as handle:
            self._expect_bad_frame(
                handle.server.port,
                [
                    struct.pack(">I", len(header)),
                    header,
                    struct.pack(">I", MAX_FRAME_PAYLOAD + 1),
                ],
            )


# ----------------------------------------------------------------------
# the durable budget ledger
# ----------------------------------------------------------------------
class TestDurableLedger:
    def test_memory_only_ledger_reports_not_durable(self):
        ledger = BudgetLedger(PrivacyBudget(1.0))
        assert ledger.durable is False
        assert ledger.journal is None

    def test_settled_spend_survives_a_restart(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        ledger = BudgetLedger(PrivacyBudget(1.0), path=path)
        assert ledger.durable is True
        admission = ledger.admit("alice", PrivacyBudget(0.3), label="q1")
        ledger.settle(admission)
        ledger.close()

        reborn = BudgetLedger(PrivacyBudget(1.0), path=path)
        assert reborn.recovered_analysts == 1
        assert reborn.summary("alice")["spent_epsilon"] == pytest.approx(0.3)
        assert reborn.summary("alice")["remaining_epsilon"] == pytest.approx(0.7)
        reborn.close()

    def test_pending_charge_replays_as_spent(self, tmp_path):
        """A crash mid-query strands the charge in ``pending``; replay must
        count it as spent — the answer may have been released — and relabel
        it ``recovered`` for the audit trail."""
        path = str(tmp_path / "ledger.db")
        ledger = BudgetLedger(PrivacyBudget(1.0), path=path)
        ledger.admit("alice", PrivacyBudget(0.4), label="stranded")
        ledger.close()  # never settled: the "crash"

        reborn = BudgetLedger(PrivacyBudget(1.0), path=path)
        assert reborn.summary("alice")["spent_epsilon"] == pytest.approx(0.4)
        assert reborn.journal.stats()["by_state"].get("recovered") == 1
        reborn.close()

    def test_voided_charge_and_generic_refund_reconcile(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        ledger = BudgetLedger(PrivacyBudget(1.0), path=path)
        admission = ledger.admit("bob", PrivacyBudget(0.5), label="failed")
        ledger.refund_admission(admission)  # execution released nothing
        settled = ledger.admit("bob", PrivacyBudget(0.3), label="ok")
        ledger.settle(settled)
        ledger.refund("bob", PrivacyBudget(0.1), label="goodwill")
        ledger.close()

        reborn = BudgetLedger(PrivacyBudget(1.0), path=path)
        assert reborn.summary("bob")["spent_epsilon"] == pytest.approx(0.2)
        reborn.close()

    def test_refund_for_unknown_analyst_warns_and_charges_nothing(self):
        ledger = BudgetLedger(PrivacyBudget(1.0), max_analysts=1)
        with pytest.warns(RuntimeWarning, match="unknown analyst"):
            ledger.refund("nobody", PrivacyBudget(0.1))
        # The bogus refund must not have burned the one analyst slot.
        ledger.admit("alice", PrivacyBudget(0.1))

    def test_replay_over_a_lowered_budget_starts_exhausted(self, tmp_path):
        path = str(tmp_path / "ledger.db")
        ledger = BudgetLedger(PrivacyBudget(1.0), path=path)
        ledger.settle(ledger.admit("alice", PrivacyBudget(0.9), label="q"))
        ledger.close()

        # The operator restarts with a tighter budget: historical spend is
        # kept (over the new cap), and the account refuses new work.
        reborn = BudgetLedger(PrivacyBudget(0.5), path=path)
        assert reborn.summary("alice")["spent_epsilon"] == pytest.approx(0.9)
        with pytest.raises(ServingError) as info:
            reborn.admit("alice", PrivacyBudget(0.1))
        assert info.value.code == "budget_exhausted"
        reborn.close()

    def test_journal_write_failure_fails_closed(self, tmp_path, monkeypatch):
        ledger = BudgetLedger(PrivacyBudget(1.0), path=str(tmp_path / "ledger.db"))

        def explode(*_args, **_kwargs):
            raise sqlite3.OperationalError("disk I/O error")

        monkeypatch.setattr(ledger.journal, "record_charge", explode)
        with pytest.raises(ServingError) as info:
            ledger.admit("alice", PrivacyBudget(0.4))
        assert info.value.code == "internal"
        monkeypatch.undo()
        # The in-memory charge was undone: the full budget is still there.
        ledger.admit("alice", PrivacyBudget(1.0))
        ledger.close()

    def test_corrupt_journal_is_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "ledger.db"
        path.write_bytes(b"this was never a sqlite file")
        with pytest.warns(RuntimeWarning, match="unreadable"):
            ledger = BudgetLedger(PrivacyBudget(1.0), path=str(path))
        assert ledger.durable is True  # a fresh journal took over
        assert path.with_suffix(".db.corrupt").exists()
        ledger.settle(ledger.admit("alice", PrivacyBudget(0.2)))
        ledger.close()
        reborn = BudgetLedger(PrivacyBudget(1.0), path=str(path))
        assert reborn.summary("alice")["spent_epsilon"] == pytest.approx(0.2)
        reborn.close()

    def test_journal_stats_shape(self, tmp_path):
        journal = LedgerJournal(str(tmp_path / "ledger.db"))
        journal.record_charge("alice", 0.1, 0.0, "q", parallel=False)
        stats = journal.stats()
        assert stats["persisted"] is True
        assert stats["entries"] == 1
        assert stats["by_state"] == {"pending": 1}
        assert stats["charges_journalled"] == 1
        journal.close()

    def test_sigkill_mid_charge_is_never_under_charged(self, tmp_path):
        """Crash-recovery end to end: a process admits a charge and dies on
        SIGKILL before anything settles.  The journal, written with
        synchronous=FULL before admit() returned, must replay the full
        charge."""
        path = str(tmp_path / "ledger.db")
        script = (
            "import os, signal\n"
            "from repro.dp.accountant import PrivacyBudget\n"
            "from repro.serving import BudgetLedger\n"
            f"ledger = BudgetLedger(PrivacyBudget(1.0), path={path!r})\n"
            "ledger.admit('alice', PrivacyBudget(0.3), label='doomed')\n"
            "print('ADMITTED', flush=True)\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == -signal.SIGKILL
        assert "ADMITTED" in result.stdout

        reborn = BudgetLedger(PrivacyBudget(1.0), path=path)
        assert reborn.summary("alice")["spent_epsilon"] == pytest.approx(0.3)
        assert reborn.journal.stats()["by_state"].get("recovered") == 1
        reborn.close()


# ----------------------------------------------------------------------
# overload shedding and the health op
# ----------------------------------------------------------------------
class TestOverloadShedding:
    def test_ctor_validation(self, planner):
        with pytest.raises(ValueError):
            QueryServer(planner, max_inflight=0)
        with pytest.raises(ValueError):
            QueryServer(planner, max_queue=-1)

    def _gated_server(self, planner, monkeypatch, max_queue):
        gate = threading.Event()
        original = planner.execute

        def gated(planned):
            gate.wait(timeout=30)
            return original(planned)

        monkeypatch.setattr(planner, "execute", gated)
        server = QueryServer(
            planner,
            BudgetLedger(PrivacyBudget(10.0)),
            port=0,
            workers=1,
            max_inflight=1,
            max_queue=max_queue,
        )
        return server, gate

    def test_full_queue_refuses_with_structured_overloaded(self, planner, monkeypatch):
        server, gate = self._gated_server(planner, monkeypatch, max_queue=0)
        with ServerThread(server):
            results = []

            def slow_query():
                with ServingClient(port=server.port) as client:
                    results.append(
                        client.query("demo", "PM", 0.2, query="Qc1", analyst="alice")
                    )

            worker = threading.Thread(target=slow_query)
            worker.start()
            try:
                _wait_for(lambda: server._inflight == 1, message="the slot to fill")
                with ServingClient(port=server.port) as client:
                    with pytest.raises(ServingError) as info:
                        client.query("demo", "PM", 0.2, query="Qc1", analyst="bob")
                    error = info.value
                    assert error.code == "overloaded"
                    assert error.details["in_flight"] == 1
                    assert error.details["max_inflight"] == 1
                    assert error.details["max_queue"] == 0
                    assert error.details["retry_after_ms"] >= 50
                    # A shed request costs no budget.
                    assert client.budget("bob")["spent_epsilon"] == 0.0
            finally:
                gate.set()
                worker.join(timeout=30)
            assert server.requests_refused_overload == 1
            assert len(results) == 1  # the admitted query still completed

    def test_queued_request_waits_instead_of_being_shed(self, planner, monkeypatch):
        server, gate = self._gated_server(planner, monkeypatch, max_queue=4)
        with ServerThread(server):
            results = []

            def query(analyst):
                with ServingClient(port=server.port) as client:
                    results.append(
                        client.query("demo", "PM", 0.2, query="Qc1", analyst=analyst)
                    )

            workers = [
                threading.Thread(target=query, args=(name,))
                for name in ("alice", "bob")
            ]
            for worker in workers:
                worker.start()
            try:
                _wait_for(
                    lambda: server._inflight == 1 and server._queued == 1,
                    message="one running, one queued",
                )
            finally:
                gate.set()
                for worker in workers:
                    worker.join(timeout=30)
            assert len(results) == 2
            assert server.requests_refused_overload == 0

    def test_health_reports_queue_ledger_and_cache(self, planner, tmp_path):
        ledger = BudgetLedger(PrivacyBudget(1.0), path=str(tmp_path / "ledger.db"))
        server = QueryServer(planner, ledger, port=0, workers=2)
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                client.query("demo", "PM", 0.2, query="Qc1", analyst="alice")
                health = client.health()
        assert health["status"] == "ok"
        assert health["queue"]["in_flight"] == 0
        assert health["queue"]["max_inflight"] == 2
        assert health["ledger"]["analysts"] == 1
        assert health["ledger"]["durable"] is True
        assert health["ledger"]["journal"]["by_state"] == {"settled": 1}
        assert health["cache"]["backend"] == "local"
        assert health["cache"]["degraded"] is False

    def test_stats_include_overload_and_breaker_counters(self, planner):
        server = QueryServer(planner, BudgetLedger(PrivacyBudget(1.0)), port=0)
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                stats = client.stats()
        assert stats["requests_refused_overload"] == 0
        assert stats["cache"]["degraded"] is False
        assert "breaker" in stats["cache"]


# ----------------------------------------------------------------------
# durable serving end to end
# ----------------------------------------------------------------------
class TestDurableServing:
    def test_spend_and_answers_survive_a_server_restart(self, planner, tmp_path):
        """The headline scenario: query a durable server, restart it on the
        same journal, and the analyst's spend is remembered while the same
        request still returns byte-identical bytes."""
        path = str(tmp_path / "ledger.db")

        server = QueryServer(
            planner, BudgetLedger(PrivacyBudget(1.0), path=path), port=0
        )
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                first = client.query("demo", "PM", 0.3, query="Qc1", analyst="alice")
        # ServerThread.stop → aclose() closed the ledger journal cleanly.

        reborn_ledger = BudgetLedger(PrivacyBudget(1.0), path=path)
        assert reborn_ledger.recovered_analysts == 1
        server = QueryServer(planner, reborn_ledger, port=0)
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                budget = client.budget("alice")
                assert budget["spent_epsilon"] == pytest.approx(0.3)
                second = client.query("demo", "PM", 0.3, query="Qc1", analyst="alice")
                # 0.3 before the restart + 0.3 now: only 0.4 is left.
                assert second["privacy"]["remaining_epsilon"] == pytest.approx(0.4)
                with pytest.raises(ServingError) as info:
                    client.query("demo", "PM", 0.5, query="Qc1", analyst="alice")
                assert info.value.code == "budget_exhausted"
        # The planner is deterministic per request: the restart changed
        # nothing about the answer bytes.
        assert json.dumps(first["answers"]) == json.dumps(second["answers"])

    def test_failed_execution_refunds_through_the_journal(self, planner, tmp_path):
        path = str(tmp_path / "ledger.db")
        server = QueryServer(
            planner, BudgetLedger(PrivacyBudget(1.0), path=path), port=0
        )
        with ServerThread(server):
            with ServingClient(port=server.port) as client:
                with pytest.raises(ServingError) as info:
                    client.query("demo", "LS", 0.5, query="Qs2", analyst="dave")
                assert info.value.code == "unsupported"

        reborn = BudgetLedger(PrivacyBudget(1.0), path=path)
        # The voided charge reconciled: nothing replays as spent.
        assert reborn.summary("dave")["spent_epsilon"] == pytest.approx(0.0)
        reborn.close()


# ----------------------------------------------------------------------
# graceful drain and loud stop
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_inflight_query_gets_its_answer_through_shutdown(self, planner, monkeypatch):
        """A request whose line was read before shutdown must receive its
        response — an answered charge with a dropped answer would be the
        worst of both worlds."""
        original = planner.execute

        def slow(planned):
            time.sleep(0.4)
            return original(planned)

        monkeypatch.setattr(planner, "execute", slow)
        server = QueryServer(planner, BudgetLedger(PrivacyBudget(1.0)), port=0)
        handle = ServerThread(server).start()
        results = []

        def query():
            with ServingClient(port=server.port) as client:
                results.append(client.query("demo", "PM", 0.2, query="Qc1", analyst="a"))

        worker = threading.Thread(target=query)
        worker.start()
        _wait_for(lambda: server._inflight == 1, message="the query to start")
        handle.stop()  # drains: the in-flight response must still go out
        worker.join(timeout=30)
        assert len(results) == 1
        assert "answer" in results[0]

    def test_server_thread_stop_raises_on_a_hung_loop(self, planner):
        server = QueryServer(planner, BudgetLedger(PrivacyBudget(1.0)), port=0)
        handle = ServerThread(server).start()
        real_thread = handle._thread

        class HungThread:
            def is_alive(self):
                return True

            def join(self, timeout=None):
                pass

        handle._thread = HungThread()
        try:
            with pytest.raises(RuntimeError, match="did not stop"):
                handle.stop(timeout=0.1)
        finally:
            handle._thread = real_thread
            handle.stop()

    def test_cache_server_thread_stop_raises_on_a_hung_loop(self):
        handle = CacheServerThread(max_entries=16).start()
        real_thread = handle._thread

        class HungThread:
            def is_alive(self):
                return True

            def join(self, timeout=None):
                pass

        handle._thread = HungThread()
        try:
            with pytest.raises(RuntimeError, match="did not stop"):
                handle.stop(timeout=0.1)
        finally:
            handle._thread = real_thread
            handle.stop()


class TestSigtermShutdown:
    """Real-signal coverage: both ``python -m`` servers exit 0 on SIGTERM."""

    def _spawn(self, argv, ready_marker):
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", *argv],
            env=_subprocess_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        banner = []
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            banner.append(line)
            if ready_marker in line:
                return process, "".join(banner)
        process.kill()
        raise AssertionError(f"server never printed {ready_marker!r}: {banner}")

    @staticmethod
    def _port_from(banner):
        where = banner.split(" on ", 1)[1].split(" ", 1)[0]
        return int(where.rsplit(":", 1)[1])

    def test_serving_server_drains_on_sigterm(self):
        process, banner = self._spawn(
            ["repro.serving", "--port", "0", "--seed", "1"], "serving on "
        )
        # A completed round trip proves the loop reached its serve-await,
        # which is after the signal handlers were installed — a SIGTERM
        # racing the startup banner would otherwise kill the process cold.
        with ServingClient(port=self._port_from(banner)) as client:
            client.ping()
        process.send_signal(signal.SIGTERM)
        remainder = process.communicate(timeout=60)[0]
        assert process.returncode == 0
        assert "server stopped" in remainder

    def test_cache_server_drains_on_sigterm(self):
        process, banner = self._spawn(
            ["repro.db.cache.server", "--port", "0"], "cache server on "
        )
        from repro.db.cache.wire import write_frame

        with socket.create_connection(
            ("127.0.0.1", self._port_from(banner)), timeout=30
        ) as sock:
            stream = sock.makefile("rwb")
            write_frame(stream, {"op": "ping"})
            header, _, _ = read_frame(stream)
            assert header["ok"] is True
        process.send_signal(signal.SIGTERM)
        remainder = process.communicate(timeout=60)[0]
        assert process.returncode == 0
        assert "cache server stopped" in remainder


# ----------------------------------------------------------------------
# the CLI wiring
# ----------------------------------------------------------------------
class TestLedgerCLIWiring:
    def test_serving_main_accepts_ledger_path(self, tmp_path, monkeypatch):
        import repro.serving.server as server_module

        captured = {}

        def fake_run(coro):
            coro.close()
            captured["ran"] = True

        monkeypatch.setattr(server_module.asyncio, "run", fake_run)
        path = str(tmp_path / "ledger.db")
        assert server_module.main(["--port", "0", "--ledger-path", path]) == 0
        assert captured["ran"] is True
        assert Path(path).exists()  # the journal was created on startup

    def test_evaluation_cli_forwards_ledger_path(self, tmp_path, monkeypatch):
        import repro.serving.server as server_module
        from repro.evaluation.cli import main as cli_main

        captured = {}

        def fake_main(argv):
            captured["argv"] = list(argv)
            return 0

        monkeypatch.setattr(server_module, "main", fake_main)
        path = str(tmp_path / "ledger.db")
        assert cli_main(["--serve", "--ledger-path", path]) == 0
        argv = captured["argv"]
        assert argv[argv.index("--ledger-path") + 1] == path

    def test_evaluation_cli_rejects_ledger_path_without_serve(self, capsys):
        from repro.evaluation.cli import main as cli_main

        assert cli_main(["--ledger-path", "x.db"]) == 2
        assert "--serve" in capsys.readouterr().err


# ----------------------------------------------------------------------
# backoff jitter must not be correlated across forked workers
# ----------------------------------------------------------------------
def _draw_jitter_sequence(backend, queue):
    queue.put([backend._jitter_rng().random() for _ in range(8)])


class TestBackoffJitterSeeding:
    """A pool of forked workers retrying against the same flaky server must
    not share one jitter stream — identical streams re-synchronise every
    worker's backoff and turn the retries into a thundering herd."""

    def test_forked_workers_draw_divergent_jitter(self):
        if not hasattr(os, "fork"):
            pytest.skip("fork-based workers are a POSIX feature")
        mp = multiprocessing.get_context("fork")
        backend = _resilient_backend(port=65001)  # never connects: jitter only
        try:
            # Seed the parent's stream *before* forking — the regression was
            # children inheriting exactly this state.
            parent = [backend._jitter_rng().random() for _ in range(8)]
            queue = mp.Queue()
            workers = [
                mp.Process(target=_draw_jitter_sequence, args=(backend, queue))
                for _ in range(3)
            ]
            for worker in workers:
                worker.start()
            sequences = [queue.get(timeout=30) for _ in workers]
            for worker in workers:
                worker.join(timeout=30)
            streams = [parent] + sequences
            for i in range(len(streams)):
                for j in range(i + 1, len(streams)):
                    assert streams[i] != streams[j]
        finally:
            backend.close()

    def test_rng_reseeds_when_pid_changes(self):
        backend = _resilient_backend(port=65001)
        try:
            first = backend._jitter_rng()
            assert backend._jitter_rng() is first  # stable within one process
            # Simulate waking up in a forked child: the recorded pid no
            # longer matches, so the next draw must come from a fresh RNG.
            backend._jitter_pid -= 1
            assert backend._jitter_rng() is not first
        finally:
            backend.close()

    def test_two_backends_in_one_process_diverge(self):
        a = _resilient_backend(port=65001)
        b = _resilient_backend(port=65002)
        try:
            draws_a = [a._jitter_rng().random() for _ in range(8)]
            draws_b = [b._jitter_rng().random() for _ in range(8)]
            assert draws_a != draws_b
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# the overload retry hint must scale with the backlog
# ----------------------------------------------------------------------
class TestRetryAfterScalesWithBacklog:
    """A cold server (no execution EWMA yet) used to hint a flat 100 ms
    whatever the queue looked like, so every shed client came back at once
    and was shed again.  The cold estimate now multiplies by the backlog."""

    def _bare_server(self, planner, **kwargs):
        return QueryServer(
            planner, BudgetLedger(PrivacyBudget(1.0)), workers=1, **kwargs
        )

    def test_cold_hint_scales_with_queue_depth(self, planner):
        server = self._bare_server(planner, max_queue=16)
        try:
            server._execution_ewma = None
            for inflight, queued in [(0, 0), (1, 0), (1, 4), (1, 16)]:
                server._inflight, server._queued = inflight, queued
                backlog = inflight + queued
                expected = max(
                    50, int(COLD_START_EXECUTION_ESTIMATE_S * (backlog + 1) * 1000)
                )
                assert server._retry_after_ms() == expected
        finally:
            server._executor.shutdown(wait=False)

    def test_cold_hint_is_monotone_in_backlog(self, planner):
        server = self._bare_server(planner, max_queue=32)
        try:
            server._execution_ewma = None
            server._inflight = 1
            hints = []
            for queued in (0, 2, 8, 32):
                server._queued = queued
                hints.append(server._retry_after_ms())
            assert hints == sorted(hints)
            assert hints[-1] > hints[0]  # deeper backlog, later retry
        finally:
            server._executor.shutdown(wait=False)

    def test_warm_hint_uses_measured_ewma(self, planner):
        server = self._bare_server(planner, max_queue=8)
        try:
            server._execution_ewma = 0.3
            server._inflight, server._queued = 1, 1
            assert server._retry_after_ms() == int(0.3 * 3 * 1000)
        finally:
            server._executor.shutdown(wait=False)


# ----------------------------------------------------------------------
# the sharded backend with chaos on one shard
# ----------------------------------------------------------------------
class TestShardedBackendUnderChaos:
    def test_chaos_on_one_shard_never_changes_bytes(self, planner):
        """One cache shard's network turns to garbage mid-run, heals, and
        the breaker recovers — the answers never move (the replicated shard
        and the recompute rung absorb the damage)."""
        request = {
            "database": "demo",
            "mechanism": "PM",
            "epsilon": 0.5,
            "query": "Qc3",
            "trials": 2,
        }
        with backend_scope(LocalCacheBackend(64)):
            reference = planner.execute(planner.plan(request))
        with CacheServerThread(max_entries=2048) as steady:
            with CacheServerThread(max_entries=2048) as flaky:
                with ChaosProxy("127.0.0.1", flaky.server.port) as proxy:
                    backend = ShardedCacheBackend(
                        shards=[
                            _resilient_backend(steady.server.port),
                            _resilient_backend(proxy.port),
                        ],
                        replicas=2,
                    )
                    try:
                        with backend_scope(backend):
                            first = planner.execute(planner.plan(request))
                            # The flaky shard's network turns to garbage.
                            proxy.set_faults(corrupt_rate=1.0)
                            for shard in backend.shards:
                                shard._local.clear()
                            during = planner.execute(planner.plan(request))
                            # The network heals; the breaker probes back.
                            proxy.set_faults()
                            time.sleep(0.25)  # past breaker_reset_timeout
                            after = planner.execute(planner.plan(request))
                        assert proxy.stats()["chunks_seen"] > 0
                        assert backend.degraded is False
                        assert backend.breaker_stats()["state"] == "closed"
                    finally:
                        backend.close()
        assert (
            json.dumps(reference["answers"])
            == json.dumps(first["answers"])
            == json.dumps(during["answers"])
            == json.dumps(after["answers"])
        )
        assert reference["mean_relative_error"] == first["mean_relative_error"]
