"""Single-flight request coalescing.

When several analysts (or one impatient analyst) issue the *same* query
concurrently, executing it once is enough: served answers are a pure function
of the request key — the per-request seed stream is derived from the same
label (see :mod:`repro.serving.planner`), so every concurrent duplicate would
compute byte-identical results anyway.  :class:`SingleFlight` makes the
leader execute while the duplicates wait on its result, which turns a
thundering herd of identical dashboard refreshes into one engine execution.

This is the thread-based analogue of Go's ``singleflight`` package: the
asyncio server runs engine work on a thread pool, so coalescing lives at the
thread layer and is equally usable from plain threaded code (benchmarks,
tests).  Errors propagate to every waiter — a shared failure is still shared.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = ["SingleFlight"]


class _Flight:
    __slots__ = ("done", "error", "result")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Coalesce concurrent calls that share a key into one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        #: Calls that actually executed ``fn``.
        self.executions = 0
        #: Calls served by another caller's in-flight execution.
        self.coalesced = 0

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent ``key``; return ``(result, shared)``.

        The first caller for a key (the leader) executes ``fn``; callers
        arriving while that execution is in flight wait and receive the same
        result (``shared=True``).  Once a flight lands the key is free again —
        coalescing is about *concurrency*, result reuse across time is the
        cache layer's job.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
                self.executions += 1
            else:
                leader = False
                self.coalesced += 1
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, True
        try:
            flight.result = fn()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, False

    def in_flight(self) -> int:
        """Number of keys currently executing (for stats/tests)."""
        with self._lock:
            return len(self._flights)

    def stats(self) -> dict:
        with self._lock:
            return {
                "executions": self.executions,
                "coalesced": self.coalesced,
                "in_flight": len(self._flights),
            }
