"""``python -m repro.serving.fleet`` — start the fleet router."""

import sys

from repro.serving.fleet.router import main

sys.exit(main())
