"""Answering a workload of correlated star-join queries (paper Section 5.3).

A dashboard rarely asks one query: it asks a *workload* — e.g. sales per year,
per region, and cumulative totals.  Answering each query independently wastes
budget on redundant structure; the Workload Decomposition (WD) strategy of
Algorithm 4 perturbs a small strategy matrix instead and reconstructs every
query from it.

The script answers the paper's W1 and W2 workloads with both approaches and
prints the per-workload error at several privacy budgets (the Figure 9
comparison), plus the strategies WD picked.

Run it with ``python examples/workload_queries.py``.
"""

from __future__ import annotations

import numpy as np

from repro import IndependentPMWorkload, WorkloadDecomposition, generate_ssb
from repro.core.workload import answer_workload_exact
from repro.evaluation.metrics import workload_relative_error
from repro.evaluation.reporting import format_table
from repro.workloads.workload_matrices import workload_w1, workload_w2

EPSILONS = (0.1, 0.5, 1.0)
TRIALS = 5


def main() -> None:
    print("Generating SSB data...")
    database = generate_ssb(scale_factor=1.0, seed=5, rows_per_scale_factor=240_000)
    workloads = {"W1 (11 point-heavy queries)": workload_w1(), "W2 (7 cumulative queries)": workload_w2()}

    rows = []
    for label, queries in workloads.items():
        exact = answer_workload_exact(database, queries)
        for epsilon in EPSILONS:
            pm_errors, wd_errors = [], []
            for seed in range(TRIALS):
                pm = IndependentPMWorkload(epsilon=epsilon, rng=seed)
                wd = WorkloadDecomposition(epsilon=epsilon, rng=seed)
                pm_errors.append(
                    workload_relative_error(exact, pm.answer(database, queries).values)
                )
                wd_errors.append(
                    workload_relative_error(exact, wd.answer(database, queries).values)
                )
            rows.append(
                [label, epsilon, f"{np.mean(pm_errors):.1f}%", f"{np.mean(wd_errors):.1f}%"]
            )

    print("\nMean per-query relative error:")
    print(format_table(["workload", "epsilon", "independent PM", "WD"], rows))

    print("\nStrategies chosen by WD for W1:")
    decomposition = WorkloadDecomposition(epsilon=1.0, rng=0)
    answer = decomposition.answer(database, workload_w1())
    for (table, attribute), choice in answer.strategies.items():
        print(
            f"  {table}.{attribute}: strategy '{choice.name}' with "
            f"{choice.num_rows} rows (workload has {len(workload_w1())} queries)"
        )


if __name__ == "__main__":
    main()
