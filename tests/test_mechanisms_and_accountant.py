"""Tests for the basic DP mechanisms and the privacy accountant."""

import numpy as np
import pytest

from repro.dp.accountant import PrivacyAccountant, PrivacyBudget, split_budget
from repro.dp.mechanisms import CauchyMechanism, LaplaceMechanism
from repro.exceptions import PrivacyBudgetError


class TestLaplaceMechanism:
    def test_unbiasedness(self):
        mechanism = LaplaceMechanism(sensitivity=1.0, epsilon=1.0)
        rng = np.random.default_rng(0)
        values = [mechanism.randomise(100.0, rng=rng) for _ in range(20_000)]
        assert np.mean(values) == pytest.approx(100.0, abs=0.1)

    def test_variance_property(self):
        mechanism = LaplaceMechanism(sensitivity=2.0, epsilon=0.5)
        assert mechanism.variance == pytest.approx(2 * 16.0)

    def test_vector_randomise(self):
        mechanism = LaplaceMechanism(sensitivity=1.0, epsilon=1.0)
        noisy = mechanism.randomise_vector(np.zeros(10), rng=1)
        assert noisy.shape == (10,)
        assert not np.all(noisy == 0.0)

    def test_empirical_privacy_on_two_counts(self):
        """Crude ε-DP check: output densities on neighbouring counts 10 vs 11
        should not differ by more than e^ε (up to sampling slack)."""
        epsilon = 1.0
        mechanism = LaplaceMechanism(sensitivity=1.0, epsilon=epsilon)
        rng = np.random.default_rng(3)
        a = np.array([mechanism.randomise(10.0, rng=rng) for _ in range(60_000)])
        b = np.array([mechanism.randomise(11.0, rng=rng) for _ in range(60_000)])
        bins = np.linspace(5, 16, 23)
        hist_a, _ = np.histogram(a, bins=bins)
        hist_b, _ = np.histogram(b, bins=bins)
        mask = (hist_a > 200) & (hist_b > 200)
        ratios = hist_a[mask] / hist_b[mask]
        assert np.all(ratios < np.exp(epsilon) * 1.3)
        assert np.all(ratios > np.exp(-epsilon) / 1.3)


class TestCauchyMechanism:
    def test_randomise_changes_value(self):
        mechanism = CauchyMechanism(smooth_sensitivity=1.0, epsilon=1.0)
        assert mechanism.randomise(5.0, rng=1) != 5.0

    def test_vector_randomise(self):
        mechanism = CauchyMechanism(smooth_sensitivity=1.0, epsilon=1.0)
        assert mechanism.randomise_vector(np.ones(4), rng=2).shape == (4,)

    def test_median_tracks_true_value(self):
        mechanism = CauchyMechanism(smooth_sensitivity=1.0, epsilon=2.0)
        rng = np.random.default_rng(4)
        values = [mechanism.randomise(50.0, rng=rng) for _ in range(20_000)]
        assert np.median(values) == pytest.approx(50.0, abs=1.5)


class TestPrivacyBudget:
    def test_validation(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(0.0)
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0, delta=1.0)
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0, delta=-0.1)

    def test_split(self):
        budget = PrivacyBudget(1.0, delta=1e-6)
        part = budget.split(4)
        assert part.epsilon == pytest.approx(0.25)
        assert part.delta == pytest.approx(2.5e-7)

    def test_split_invalid(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyBudget(1.0).split(0)

    def test_is_pure(self):
        assert PrivacyBudget(1.0).is_pure
        assert not PrivacyBudget(1.0, delta=1e-9).is_pure

    def test_split_budget_helper(self):
        assert split_budget(1.0, 5) == pytest.approx(0.2)
        with pytest.raises(PrivacyBudgetError):
            split_budget(1.0, 0)
        with pytest.raises(PrivacyBudgetError):
            split_budget(-1.0, 2)


class TestAccountant:
    def test_sequential_charges_accumulate(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.4), label="a")
        accountant.charge(PrivacyBudget(0.6), label="b")
        assert accountant.spent_epsilon == pytest.approx(1.0)
        assert accountant.remaining_epsilon == pytest.approx(0.0)
        accountant.assert_exhausted()

    def test_overcharge_rejected(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.9))
        with pytest.raises(PrivacyBudgetError):
            accountant.charge(PrivacyBudget(0.2))

    def test_delta_overcharge_rejected(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0, delta=1e-6))
        with pytest.raises(PrivacyBudgetError):
            accountant.charge(PrivacyBudget(0.5, delta=1e-5))

    def test_parallel_composition_costs_max(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge_parallel([PrivacyBudget(0.3), PrivacyBudget(0.5)])
        assert accountant.spent_epsilon == pytest.approx(0.5)

    def test_parallel_composition_empty_is_free(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge_parallel([])
        assert accountant.spent_epsilon == 0.0

    def test_ledger_records_labels(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.5), label="query-1")
        assert accountant.ledger[0][0] == "query-1"

    def test_assert_exhausted_raises_when_budget_left(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.5))
        with pytest.raises(PrivacyBudgetError):
            accountant.assert_exhausted()


class TestAccountantEdgeCases:
    """Boundary behaviour the serving ledger leans on for admission control."""

    # -- spending exactly at the total, within the float tolerance ------
    def test_spend_exactly_at_total_is_admitted(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        for _ in range(10):
            accountant.charge(PrivacyBudget(0.1))
        assert accountant.spent_epsilon == pytest.approx(1.0)
        accountant.assert_exhausted()

    def test_charge_just_inside_tolerance_is_admitted(self):
        # _TOLERANCE is 1e-9: an overshoot below it is float noise, not an
        # overspend, and must not refuse the final legitimate charge.
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.5))
        accountant.charge(PrivacyBudget(0.5 + 5e-10))
        assert accountant.remaining_epsilon == 0.0  # clamped, never negative

    def test_charge_just_outside_tolerance_is_refused(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.5))
        with pytest.raises(PrivacyBudgetError):
            accountant.charge(PrivacyBudget(0.5 + 5e-9))

    def test_exhausted_budget_refuses_any_further_charge(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(1.0))
        with pytest.raises(PrivacyBudgetError):
            accountant.charge(PrivacyBudget(1e-6))

    # -- mixed pure / approximate budgets -------------------------------
    def test_mixed_pure_and_approximate_charges(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0, delta=1e-6))
        accountant.charge(PrivacyBudget(0.4))  # pure: spends no delta
        accountant.charge(PrivacyBudget(0.4, delta=1e-6))
        assert accountant.spent_epsilon == pytest.approx(0.8)
        assert accountant.spent_delta == pytest.approx(1e-6)
        # epsilon headroom remains, but the delta budget is exhausted.
        with pytest.raises(PrivacyBudgetError):
            accountant.charge(PrivacyBudget(0.1, delta=1e-7))
        accountant.charge(PrivacyBudget(0.2))  # pure charges still admitted

    def test_pure_total_refuses_approximate_charges(self):
        # delta budget 0: any delta spend beyond the float tolerance refuses.
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        with pytest.raises(PrivacyBudgetError):
            accountant.charge(PrivacyBudget(0.1, delta=1e-8))

    # -- parallel composition -------------------------------------------
    def test_parallel_max_over_heterogeneous_partitions(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0, delta=1e-5))
        accountant.charge_parallel(
            [
                PrivacyBudget(0.2, delta=1e-6),
                PrivacyBudget(0.7),
                PrivacyBudget(0.5, delta=5e-6),
            ]
        )
        # max() per component, not the sum and not a single budget's pair.
        assert accountant.spent_epsilon == pytest.approx(0.7)
        assert accountant.spent_delta == pytest.approx(5e-6)

    def test_parallel_then_sequential_compose_additively(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge_parallel([PrivacyBudget(0.5)] * 100, label="groupby")
        accountant.charge(PrivacyBudget(0.5), label="scalar")
        accountant.assert_exhausted()
        assert [label for label, _ in accountant.ledger] == ["groupby", "scalar"]

    def test_parallel_overcharge_rejected_atomically(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.6))
        with pytest.raises(PrivacyBudgetError):
            accountant.charge_parallel([PrivacyBudget(0.3), PrivacyBudget(0.5)])
        assert accountant.spent_epsilon == pytest.approx(0.6)  # unchanged

    # -- refunds ---------------------------------------------------------
    def test_refund_restores_headroom_and_is_recorded(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0, delta=1e-6))
        budget = PrivacyBudget(0.4, delta=1e-6)
        accountant.charge(budget, label="q")
        accountant.refund(budget, label="q")
        assert accountant.spent_epsilon == pytest.approx(0.0)
        assert accountant.spent_delta == pytest.approx(0.0)
        accountant.charge(PrivacyBudget(1.0, delta=1e-6))  # full total again
        assert [label for label, _ in accountant.ledger][:2] == ["q", "refund:q"]

    def test_refund_clamps_at_zero(self):
        accountant = PrivacyAccountant(PrivacyBudget(1.0))
        accountant.charge(PrivacyBudget(0.1))
        accountant.refund(PrivacyBudget(0.5))
        assert accountant.spent_epsilon == 0.0
