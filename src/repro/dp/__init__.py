"""Differential-privacy primitives.

* :mod:`~repro.dp.noise` — seeded Laplace / Cauchy / geometric samplers.
* :mod:`~repro.dp.mechanisms` — the basic output-perturbation mechanisms
  (Laplace and Cauchy) used as building blocks by both the baselines and
  DP-starJ.
* :mod:`~repro.dp.sensitivity` — global, local, local-at-distance-t and
  smooth sensitivity (Definitions 3.3–3.5) for star-join and k-star queries.
* :mod:`~repro.dp.accountant` — privacy budgets and sequential/parallel
  composition accounting.
* :mod:`~repro.dp.neighboring` — the scenario-dependent (a, b)-private
  neighbouring-instance definitions of Section 3.2, with concrete neighbour
  generation for star databases.
"""

from repro.dp.noise import (
    cauchy_noise,
    cauchy_scale_for_epsilon,
    laplace_noise,
    laplace_scale,
)
from repro.dp.mechanisms import CauchyMechanism, LaplaceMechanism, Mechanism
from repro.dp.accountant import PrivacyAccountant, PrivacyBudget
from repro.dp.sensitivity import (
    SensitivityBound,
    count_query_global_sensitivity,
    local_sensitivity_at_distance,
    local_sensitivity_star_count,
    smooth_sensitivity_from_local,
    smooth_sensitivity_kstar,
)
from repro.dp.neighboring import NeighborhoodPolicy, PrivacyScenario, generate_neighbor

__all__ = [
    "laplace_noise",
    "laplace_scale",
    "cauchy_noise",
    "cauchy_scale_for_epsilon",
    "Mechanism",
    "LaplaceMechanism",
    "CauchyMechanism",
    "PrivacyBudget",
    "PrivacyAccountant",
    "SensitivityBound",
    "count_query_global_sensitivity",
    "local_sensitivity_star_count",
    "local_sensitivity_at_distance",
    "smooth_sensitivity_from_local",
    "smooth_sensitivity_kstar",
    "PrivacyScenario",
    "NeighborhoodPolicy",
    "generate_neighbor",
]
