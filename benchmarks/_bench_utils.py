"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

from repro.evaluation.reporting import ExperimentResult

__all__ = ["errors_of", "times_of"]


def errors_of(result: ExperimentResult, **criteria) -> list[float]:
    """Collect the non-null relative errors of the rows matching ``criteria``."""
    return [
        row["relative_error_pct"]
        for row in result.filter(**criteria).rows
        if row.get("relative_error_pct") is not None
    ]


def times_of(result: ExperimentResult, **criteria) -> list[float]:
    """Collect the non-null mean running times of the rows matching ``criteria``."""
    return [
        row["mean_time_s"]
        for row in result.filter(**criteria).rows
        if row.get("mean_time_s") is not None
    ]
