"""A minimal SQL parser for star-join SELECT statements.

The parser covers exactly the query shape the paper works with (and lists in
its appendix): a single SELECT with ``COUNT(*)`` / ``SUM(measure)`` /
``AVG(measure)``, a FROM list of star-schema tables, a WHERE clause that mixes
foreign-key join conditions with single-table filter predicates (equality,
comparison, BETWEEN, OR of equalities), and an optional GROUP BY.

Join conditions are recognised and dropped — the star schema already declares
them — and the remaining filter conditions become the query's composite
predicate Φ.  The parser is intentionally small; it is a convenience so the
examples can run the appendix queries verbatim, not a general SQL engine.

Because the query server (:mod:`repro.serving`) feeds this parser untrusted
analyst input, anything outside that grammar is rejected upfront with a clear
:class:`~repro.exceptions.QueryError` — HAVING, subqueries, set operations,
explicit JOINs, IN lists, DISTINCT aggregates, multiple statements,
unbalanced quotes, and quoted literals whose embedded whitespace the
normalisation pass would silently rewrite — rather than being mis-parsed
into a plausible-but-wrong query.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.db.predicates import (
    ConjunctionPredicate,
    PointPredicate,
    Predicate,
    RangePredicate,
    SetPredicate,
)
from repro.db.query import Aggregate, GroupBy, StarJoinQuery
from repro.db.schema import StarSchema
from repro.exceptions import QueryError

__all__ = ["parse_star_join_sql"]

_SELECT_RE = re.compile(
    r"select\s+(?P<select>.+?)\s+from\s+(?P<from>.+?)"
    r"(?:\s+where\s+(?P<where>.+?))?"
    r"(?:\s+group\s+by\s+(?P<group>.+?))?"
    r"(?:\s+order\s+by\s+(?P<order>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_AGG_RE = re.compile(
    r"(?P<func>count|sum|avg)\s*\(\s*(?P<arg>[^)]*)\s*\)", re.IGNORECASE
)

_COLUMN_RE = re.compile(r"^(?:(?P<table>\w+)\s*\.\s*)?(?P<column>\w+)$")


def _normalise_whitespace(text: str) -> str:
    return re.sub(r"\s+", " ", text).strip()


# ----------------------------------------------------------------------
# upfront rejection of unsupported constructs
# ----------------------------------------------------------------------
#: Constructs the grammar does not cover.  Matched outside quoted literals;
#: each raises a QueryError naming the construct, instead of letting the
#: regex grammar silently mis-parse text the server received from an analyst.
_UNSUPPORTED_KEYWORDS = (
    (re.compile(r"\bhaving\b", re.IGNORECASE), "HAVING clauses"),
    (re.compile(r"\bunion\b|\bintersect\b|\bexcept\b", re.IGNORECASE), "set operations"),
    (re.compile(r"\bjoin\b", re.IGNORECASE), "explicit JOIN clauses (use a FROM list)"),
    (re.compile(r"\blimit\b|\boffset\b", re.IGNORECASE), "LIMIT/OFFSET"),
    (re.compile(r"\bin\s*\(", re.IGNORECASE), "IN lists (use OR of equalities)"),
    (re.compile(r"\bdistinct\b", re.IGNORECASE), "DISTINCT aggregates"),
)

_SELECT_KEYWORD_RE = re.compile(r"\bselect\b", re.IGNORECASE)


def _quoted_spans(text: str) -> list[tuple[int, int]]:
    """``(start, end)`` spans of quoted literals; rejects unbalanced quotes."""
    spans: list[tuple[int, int]] = []
    in_quote: Optional[str] = None
    start = 0
    for index, char in enumerate(text):
        if in_quote:
            if char == in_quote:
                spans.append((start, index + 1))
                in_quote = None
        elif char in {"'", '"'}:
            in_quote = char
            start = index
    if in_quote is not None:
        raise QueryError(f"unbalanced {in_quote} quote in SQL text: {text!r}")
    return spans


def _reject_unsupported(text: str) -> None:
    """Refuse constructs outside the supported star-join grammar.

    The parser now also serves untrusted input (the query server feeds it
    analyst SQL), so anything the grammar cannot represent must fail loudly
    here rather than fall through the regexes into a wrong-but-plausible
    query.
    """
    spans = _quoted_spans(text)
    for start, end in spans:
        literal = text[start + 1 : end - 1]
        # Single spaces are fine ('UNITED STATES' is a domain value); any
        # other embedded whitespace would be silently rewritten by the
        # parser's whitespace normalisation, so refuse it instead.
        if re.search(r"[^\S ]", literal) or "  " in literal:
            raise QueryError(
                f"quoted string literals may only embed single spaces "
                f"(tabs/newlines/runs of spaces would be silently altered): "
                f"{text[start:end]!r}"
            )
    # Blank out the quoted literals so keyword scans cannot be fooled by
    # quoted content.
    masked = list(text)
    for start, end in spans:
        for index in range(start + 1, end - 1):
            masked[index] = "?"
    masked_text = "".join(masked)
    semicolon = masked_text.find(";")
    if semicolon != -1 and masked_text[semicolon + 1 :].strip():
        raise QueryError("multiple SQL statements are not supported")
    selects = _SELECT_KEYWORD_RE.findall(masked_text)
    if len(selects) > 1:
        raise QueryError("subqueries are not supported (found a nested SELECT)")
    for pattern, description in _UNSUPPORTED_KEYWORDS:
        if pattern.search(masked_text):
            raise QueryError(f"{description} are not supported")


def _strip_quotes(token: str) -> tuple[str, bool]:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in {"'", '"'}:
        return token[1:-1].strip(), True
    return token, False


class _SchemaResolver:
    """Case-insensitive table/attribute resolution against a star schema."""

    def __init__(self, schema: StarSchema):
        self.schema = schema
        self._tables = {schema.fact.name.lower(): schema.fact.name}
        for name in schema.dimension_names:
            self._tables[name.lower()] = name

    def table_name(self, token: str) -> str:
        try:
            return self._tables[token.lower()]
        except KeyError:
            raise QueryError(f"unknown table {token!r} in SQL text") from None

    def locate(self, table_token: Optional[str], attribute: str) -> tuple[str, Any]:
        """Return ``(table_name, domain)`` for a possibly unqualified column."""
        if table_token is not None:
            table = self.table_name(table_token)
            schema = self.schema.table_schema(table)
            if attribute in schema.attributes:
                return table, schema.attributes[attribute]
            # Case-insensitive attribute match.
            for name, domain in schema.attributes.items():
                if name.lower() == attribute.lower():
                    return table, domain
            raise QueryError(
                f"table {table!r} has no dictionary-encoded attribute {attribute!r}"
            )
        return self.schema.locate_attribute(attribute)

    def coerce(self, domain, raw: str, quoted: bool) -> Any:
        """Convert a SQL literal into a domain value."""
        if raw in domain:
            return raw
        if not quoted:
            try:
                as_int = int(raw)
                if as_int in domain:
                    return as_int
            except ValueError:
                pass
            try:
                as_float = float(raw)
                if as_float in domain:
                    return as_float
            except ValueError:
                pass
        # Fall back to a case-insensitive string match.
        for value in domain.values:
            if isinstance(value, str) and value.lower() == raw.lower():
                return value
        raise QueryError(f"literal {raw!r} is not in domain {domain.name!r}")


def _parse_aggregate(select_clause: str, resolver: _SchemaResolver) -> Aggregate:
    match = _AGG_RE.search(select_clause)
    if match is None:
        raise QueryError(f"could not find an aggregate in SELECT clause {select_clause!r}")
    func = match.group("func").lower()
    arg = _normalise_whitespace(match.group("arg"))
    if func == "count":
        return Aggregate.count()
    # SUM / AVG of a measure, possibly "a - b".
    parts = [p.strip() for p in arg.split("-")]

    def column_of(token: str) -> str:
        col_match = _COLUMN_RE.match(token)
        if col_match is None:
            raise QueryError(f"cannot parse measure expression {token!r}")
        return col_match.group("column")

    column = column_of(parts[0])
    subtract = column_of(parts[1]) if len(parts) > 1 else None
    if func == "sum":
        return Aggregate.sum(column, subtract)
    return Aggregate.avg(column)


def _split_top_level(clause: str, keyword: str) -> list[str]:
    """Split on a keyword (AND/OR) outside of quotes.

    The AND that belongs to a ``BETWEEN x AND y`` construct is not a
    separator; it is recognised by tracking a pending BETWEEN.
    """
    parts: list[str] = []
    tokens = re.split(r"(\s+)", clause)
    in_quote: Optional[str] = None
    pending_between = False
    buffer = ""
    for token in tokens:
        for char in token:
            if in_quote:
                if char == in_quote:
                    in_quote = None
            elif char in {"'", '"'}:
                in_quote = char
        stripped = token.strip().lower()
        if in_quote is None and stripped == "between":
            pending_between = True
        is_separator = (
            in_quote is None and stripped == keyword.lower() and not (
                keyword.lower() == "and" and pending_between
            )
        )
        if in_quote is None and stripped == "and" and pending_between:
            pending_between = False
        buffer += token
        if is_separator:
            joined = buffer[: -len(token)]
            parts.append(joined)
            buffer = ""
    parts.append(buffer)
    cleaned = [part.strip() for part in parts if part.strip()]
    return cleaned if cleaned else [clause.strip()]


def _is_join_condition(left: str, right: str) -> bool:
    return bool(_COLUMN_RE.match(left)) and bool(_COLUMN_RE.match(right)) and not any(
        q in right for q in ("'", '"')
    ) and not right.strip().lstrip("-").replace(".", "", 1).isdigit()


def _parse_condition(
    text: str, resolver: _SchemaResolver
) -> Optional[Predicate]:
    """Parse one WHERE condition into a predicate (or None for join conditions)."""
    text = _normalise_whitespace(text)

    # Quoted bounds may embed single spaces; unquoted bounds are one token.
    between = re.match(
        r"^(?P<col>[\w.]+)\s+between\s+"
        r"(?P<lo>'[^']*'|\"[^\"]*\"|\S+)\s+and\s+"
        r"(?P<hi>'[^']*'|\"[^\"]*\"|\S+)$",
        text,
        re.IGNORECASE,
    )
    if between:
        col_match = _COLUMN_RE.match(between.group("col"))
        table, domain = resolver.locate(col_match.group("table"), col_match.group("column"))
        lo_raw, lo_quoted = _strip_quotes(between.group("lo"))
        hi_raw, hi_quoted = _strip_quotes(between.group("hi"))
        low = resolver.coerce(domain, lo_raw, lo_quoted)
        high = resolver.coerce(domain, hi_raw, hi_quoted)
        attribute = _attr_name(resolver, table, col_match.group("column"))
        return RangePredicate(table=table, attribute=attribute, domain=domain, low=low, high=high)

    comparison = re.match(
        r"^(?P<left>[^<>=!]+?)\s*(?P<op><=|>=|<|>|=)\s*(?P<right>.+)$", text
    )
    if comparison is None:
        raise QueryError(f"cannot parse WHERE condition {text!r}")
    left = comparison.group("left").strip()
    op = comparison.group("op")
    right = comparison.group("right").strip()

    if op == "=" and _is_join_condition(left, right):
        left_match = _COLUMN_RE.match(left)
        right_match = _COLUMN_RE.match(right)
        if left_match and right_match and left_match.group("table") and right_match.group("table"):
            return None  # foreign-key join condition; implied by the schema

    col_match = _COLUMN_RE.match(left)
    if col_match is None:
        raise QueryError(f"cannot parse column reference {left!r}")
    table, domain = resolver.locate(col_match.group("table"), col_match.group("column"))
    attribute = _attr_name(resolver, table, col_match.group("column"))
    raw, quoted = _strip_quotes(right)
    if op == "=":
        value = resolver.coerce(domain, raw, quoted)
        return PointPredicate(table=table, attribute=attribute, domain=domain, value=value)

    # Inequalities become ranges against the domain boundary.
    boundary = resolver.coerce(domain, raw, quoted) if raw in domain or quoted else None
    if boundary is None:
        try:
            boundary = resolver.coerce(domain, raw, quoted)
        except QueryError:
            # Allow numeric comparisons against values outside the domain by
            # clamping to the nearest boundary (e.g. "month < 7" on a 1..12
            # domain parses to [1, 6]).
            numeric = float(raw)
            numeric_values = [v for v in domain.values if isinstance(v, (int, float))]
            if not numeric_values:
                raise
            candidates = [v for v in numeric_values if v < numeric] if op in {"<", "<="} else [
                v for v in numeric_values if v > numeric
            ]
            if not candidates:
                raise QueryError(f"comparison {text!r} selects nothing in the domain")
            boundary = max(candidates) if op in {"<", "<="} else min(candidates)
            op = "<=" if op in {"<", "<="} else ">="

    boundary_code = domain.encode(boundary)
    if op == "<":
        hi = domain.decode(max(boundary_code - 1, 0))
        return RangePredicate(table=table, attribute=attribute, domain=domain,
                              low=domain.decode(0), high=hi)
    if op == "<=":
        return RangePredicate(table=table, attribute=attribute, domain=domain,
                              low=domain.decode(0), high=boundary)
    if op == ">":
        lo = domain.decode(min(boundary_code + 1, domain.size - 1))
        return RangePredicate(table=table, attribute=attribute, domain=domain,
                              low=lo, high=domain.decode(domain.size - 1))
    if op == ">=":
        return RangePredicate(table=table, attribute=attribute, domain=domain,
                              low=boundary, high=domain.decode(domain.size - 1))
    raise QueryError(f"unsupported operator {op!r} in {text!r}")


def _attr_name(resolver: _SchemaResolver, table: str, attribute_token: str) -> str:
    schema = resolver.schema.table_schema(table)
    if attribute_token in schema.attributes:
        return attribute_token
    for name in schema.attributes:
        if name.lower() == attribute_token.lower():
            return name
    return attribute_token


def _parse_where(
    where_clause: str, resolver: _SchemaResolver
) -> ConjunctionPredicate:
    predicates: list[Predicate] = []
    for conjunct in _split_top_level(where_clause, "and"):
        or_parts = _split_top_level(conjunct, "or")
        if len(or_parts) == 1:
            predicate = _parse_condition(or_parts[0], resolver)
            if predicate is not None:
                predicates.append(predicate)
            continue
        # OR of equalities on the same attribute becomes a set predicate.
        parsed = [_parse_condition(part, resolver) for part in or_parts]
        parsed = [p for p in parsed if p is not None]
        if not parsed:
            continue
        first = parsed[0]
        same_attribute = all(
            isinstance(p, PointPredicate)
            and p.table == first.table
            and p.attribute == first.attribute
            for p in parsed
        )
        if not same_attribute:
            raise QueryError(
                f"OR is only supported between equalities on one attribute: {conjunct!r}"
            )
        values = tuple(p.value for p in parsed)  # type: ignore[union-attr]
        predicates.append(
            SetPredicate(
                table=first.table,
                attribute=first.attribute,
                domain=first.domain,
                values=values,
            )
        )
    return ConjunctionPredicate.of(predicates)


def _parse_group_by(clause: str, resolver: _SchemaResolver) -> GroupBy:
    keys = []
    for item in clause.split(","):
        col_match = _COLUMN_RE.match(_normalise_whitespace(item))
        if col_match is None:
            raise QueryError(f"cannot parse GROUP BY item {item!r}")
        table, _ = resolver.locate(col_match.group("table"), col_match.group("column"))
        keys.append((table, _attr_name(resolver, table, col_match.group("column"))))
    return GroupBy(tuple(keys))


def parse_star_join_sql(
    sql: str, schema: StarSchema, name: str = "query"
) -> StarJoinQuery:
    """Parse a star-join SELECT statement into a :class:`StarJoinQuery`.

    Parameters
    ----------
    sql:
        The SQL text (a single SELECT statement).
    schema:
        The star schema the query runs against; used to resolve table and
        attribute names and their domains.
    name:
        Identifier given to the resulting query object.
    """
    _reject_unsupported(sql)
    text = _normalise_whitespace(sql)
    match = _SELECT_RE.match(text)
    if match is None:
        raise QueryError(f"cannot parse SQL statement: {sql!r}")
    resolver = _SchemaResolver(schema)
    aggregate = _parse_aggregate(match.group("select"), resolver)
    predicates = (
        _parse_where(match.group("where"), resolver)
        if match.group("where")
        else ConjunctionPredicate()
    )
    group_by = (
        _parse_group_by(match.group("group"), resolver) if match.group("group") else None
    )
    return StarJoinQuery(
        name=name, aggregate=aggregate, predicates=predicates, group_by=group_by
    )
