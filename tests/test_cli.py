"""Tests for the experiment CLI."""

import pytest

from repro.evaluation.cli import EXPERIMENTS, main, run_experiments
from repro.evaluation.experiments import ExperimentConfig


@pytest.fixture()
def tiny_config():
    return ExperimentConfig(
        epsilons=(0.5,), trials=1, scale_factor=1.0, rows_per_scale_factor=4000, seed=3
    )


class TestRegistry:
    def test_all_tables_and_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
        }


class TestRunExperiments:
    def test_unknown_name_rejected_before_running(self, tiny_config):
        with pytest.raises(KeyError):
            run_experiments(["table1", "figure99"], tiny_config, echo=lambda _: None)

    def test_runs_and_writes_csv(self, tiny_config, tmp_path):
        messages = []
        results = run_experiments(
            ["figure9"], tiny_config, output_dir=tmp_path, echo=messages.append
        )
        assert "figure9" in results
        assert (tmp_path / "figure9.csv").exists()
        assert any("figure9" in message for message in messages)


class TestMain:
    def test_main_with_single_quick_experiment(self, tmp_path, monkeypatch, capsys):
        exit_code = main(
            [
                "--only",
                "figure9",
                "--trials",
                "1",
                "--rows-per-scale-factor",
                "4000",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert (tmp_path / "figure9.csv").exists()

    def test_main_unknown_experiment_returns_error_code(self, capsys):
        assert main(["--only", "not-an-experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_main_rejects_invalid_cache_size(self, capsys):
        assert main(["--only", "figure9", "--cache-size", "0"]) == 2
        assert "--cache-size" in capsys.readouterr().err

    def test_main_cache_stats_reports_counters(self, capsys):
        exit_code = main(
            [
                "--only",
                "figure9",
                "--trials",
                "1",
                "--rows-per-scale-factor",
                "4000",
                "--cache-backend",
                "shared",
                "--cache-stats",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "[cache after figure9:" in out
        assert "[cache backend 'shared' (run total):" in out
        assert "hits=" in out

    def test_cache_stats_flags_parent_only_counters_for_local_jobs(self, capsys):
        exit_code = main(
            [
                "--only",
                "figure9",
                "--trials",
                "1",
                "--rows-per-scale-factor",
                "4000",
                "--jobs",
                "2",
                "--cache-stats",
            ]
        )
        assert exit_code == 0
        assert "parent process only" in capsys.readouterr().out
