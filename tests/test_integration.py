"""End-to-end integration tests across modules.

These tests exercise full pipelines: data generation → SQL parsing → DP-starJ
session → private answers; empirical privacy behaviour on neighbouring
instances; and the qualitative claims of the evaluation at small scale.
"""

import numpy as np
import pytest

from repro.baselines import LocalSensitivityMechanism, RaceToTheTop
from repro.core.dp_starj import DPStarJoin
from repro.core.predicate_mechanism import PredicateMechanism
from repro.db.executor import QueryExecutor
from repro.dp.neighboring import NeighborhoodPolicy, PrivacyScenario, generate_neighbor
from repro.evaluation.metrics import relative_error
from repro.workloads.ssb_queries import all_ssb_queries, ssb_query


class TestEndToEndSession:
    def test_sql_to_private_answer_pipeline(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=3.0, rng=11)
        sql = """
        SELECT count(*) FROM Date, Lineorder, Customer, Supplier
        WHERE Lineorder.CK = Customer.CK
          AND Lineorder.SK = Supplier.SK
          AND Lineorder.DK = Date.DK
          AND Customer.region = 'ASIA'
          AND Supplier.region = 'ASIA'
          AND Date.year between 1992 and 1997
        """
        query = session.parse(sql, name="Qc3-sql")
        exact = session.exact(query)
        answer = session.answer(query, epsilon=1.0)
        assert answer.value >= 0.0
        # The noisy answer is an exact evaluation of some shifted query, so it
        # stays within the trivially valid range.
        assert answer.value <= ssb_small.num_fact_rows
        assert exact == QueryExecutor(ssb_small).execute(ssb_query("Qc3"))

    def test_every_ssb_query_is_answerable_by_pm(self, ssb_small):
        mechanism = PredicateMechanism(epsilon=1.0, rng=5)
        for query in all_ssb_queries():
            value = mechanism.answer_value(ssb_small, query)
            assert value is not None

    def test_multiple_queries_share_one_budget(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0, rng=7)
        session.answer(ssb_query("Qc1"), epsilon=0.5)
        session.answer(ssb_query("Qc2"), epsilon=0.5)
        assert session.remaining_epsilon == pytest.approx(0.0)


class TestNeighbourBehaviour:
    def test_pm_noise_is_data_independent(self, ssb_small):
        """PM perturbs only the query, so the *perturbation* applied on an
        instance and on its neighbour is identical under the same seed; the
        answers differ only through the data themselves."""
        scenario = PrivacyScenario.dimensions("Customer")
        neighbor = generate_neighbor(ssb_small, scenario, rng=3)
        query = ssb_query("Qc3")
        mech = PredicateMechanism(epsilon=0.5, rng=123)
        noisy_query_a, _ = mech.perturb_query(query, rng=123)
        noisy_query_b, _ = mech.perturb_query(query, rng=123)
        assert [p.describe() for p in noisy_query_a.predicates] == [
            p.describe() for p in noisy_query_b.predicates
        ]
        # And both instances can answer the same noisy query.
        a = QueryExecutor(ssb_small).execute(noisy_query_a)
        b = QueryExecutor(neighbor).execute(noisy_query_a)
        assert abs(a - b) <= ssb_small.max_fan_out("Customer")

    def test_neighbour_count_changes_at_most_by_fanout(self, ssb_small):
        """The (0,1)-private neighbouring definition: deleting a customer and
        its orders changes a COUNT(*) by at most that customer's fan-out."""
        heavy = int(np.argmax(ssb_small.fan_out("Customer")))
        neighbor = generate_neighbor(
            ssb_small,
            PrivacyScenario.dimensions("Customer"),
            policy=NeighborhoodPolicy(dimension_keys={"Customer": heavy}),
        )
        executor_a = QueryExecutor(ssb_small)
        executor_b = QueryExecutor(neighbor)
        for name in ("Qc1", "Qc2", "Qc3"):
            query = ssb_query(name)
            delta = abs(executor_a.execute(query) - executor_b.execute(query))
            assert delta <= ssb_small.max_fan_out("Customer")


class TestQualitativeEvaluationClaims:
    """Small-scale versions of the paper's headline comparisons."""

    def test_pm_beats_ls_on_counting_queries(self, ssb_small):
        scenario = PrivacyScenario.dimensions("Customer", "Supplier", "Part")
        executor = QueryExecutor(ssb_small)
        query = ssb_query("Qc2")
        exact = executor.execute(query)
        pm_errors, ls_errors = [], []
        for seed in range(8):
            pm = PredicateMechanism(epsilon=0.5, rng=seed)
            ls = LocalSensitivityMechanism(epsilon=0.5, scenario=scenario, rng=seed)
            pm_errors.append(relative_error(exact, pm.answer_value(ssb_small, query)))
            ls_errors.append(relative_error(exact, ls.answer_value(ssb_small, query)))
        assert np.mean(pm_errors) < np.mean(ls_errors)

    def test_pm_error_insensitive_to_scale(self):
        """Figure 4's claim: PM's error barely changes with the data size."""
        from repro.datagen.ssb import generate_ssb

        errors = {}
        for scale, seed in ((0.25, 1), (1.0, 1)):
            database = generate_ssb(
                scale_factor=scale, seed=seed, rows_per_scale_factor=8000
            )
            executor = QueryExecutor(database)
            query = ssb_query("Qc2")
            exact = executor.execute(query)
            trial_errors = [
                relative_error(
                    exact,
                    PredicateMechanism(epsilon=0.5, rng=s).answer_value(database, query),
                )
                for s in range(10)
            ]
            errors[scale] = np.mean(trial_errors)
        assert errors[1.0] < max(4 * errors[0.25], errors[0.25] + 25.0)

    def test_r2t_error_decreases_with_epsilon(self, ssb_small):
        scenario = PrivacyScenario.dimensions("Customer", "Supplier", "Part")
        executor = QueryExecutor(ssb_small)
        query = ssb_query("Qc1")
        exact = executor.execute(query)

        def mean_error(epsilon):
            return np.mean(
                [
                    relative_error(
                        exact,
                        RaceToTheTop(epsilon=epsilon, scenario=scenario, rng=seed).answer_value(
                            ssb_small, query
                        ),
                    )
                    for seed in range(8)
                ]
            )

        assert mean_error(5.0) <= mean_error(0.1) + 1e-9

    def test_pm_runs_faster_than_r2t(self, ssb_small):
        import time

        scenario = PrivacyScenario.dimensions("Customer", "Supplier", "Part")
        query = ssb_query("Qc3")

        start = time.perf_counter()
        for seed in range(5):
            PredicateMechanism(epsilon=0.5, rng=seed).answer_value(ssb_small, query)
        pm_time = time.perf_counter() - start

        start = time.perf_counter()
        for seed in range(5):
            RaceToTheTop(epsilon=0.5, scenario=scenario, rng=seed).answer_value(ssb_small, query)
        r2t_time = time.perf_counter() - start
        # PM needs one query evaluation; R2T needs one per threshold candidate.
        assert pm_time < r2t_time * 1.5
