"""Sensitivity notions used by the paper (Definitions 3.3–3.5).

This module computes the quantities the output-perturbation baselines are
calibrated with:

* **Global sensitivity** of a star-join aggregate, which is 1 (COUNT) or the
  measure bound (SUM) in the (1, 0)-private scenario and *unbounded* once any
  dimension table is private (Remark 1 — this is exactly why the paper needs
  something better than the Laplace mechanism).
* **Local sensitivity** of a star-join count/sum w.r.t. a private dimension
  table: the largest contribution of any single dimension key, i.e. its
  fan-out into the (filtered) fact table.
* **Local sensitivity at distance t** and the **β-smooth sensitivity** built
  from it, for both star-join counts and k-star counting queries on graphs
  (the latter is what the TM baseline of Section 6 uses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.db.database import StarDatabase
from repro.db.predicates import ConjunctionPredicate
from repro.db.query import AggregateKind, StarJoinQuery
from repro.exceptions import SensitivityError

__all__ = [
    "SensitivityBound",
    "count_query_global_sensitivity",
    "sum_query_global_sensitivity",
    "local_sensitivity_star_count",
    "local_sensitivity_at_distance",
    "smooth_sensitivity_from_local",
    "binomial",
    "kstar_local_sensitivity",
    "kstar_local_sensitivity_at_distance",
    "smooth_sensitivity_kstar",
    "smooth_sensitivity_truncated_kstar",
]


@dataclass(frozen=True)
class SensitivityBound:
    """A named sensitivity bound with provenance."""

    value: float
    kind: str
    description: str = ""

    @property
    def is_bounded(self) -> bool:
        return math.isfinite(self.value)


# ----------------------------------------------------------------------
# star-join queries
# ----------------------------------------------------------------------
def count_query_global_sensitivity(
    fact_private: bool, private_dimensions: tuple[str, ...] | list[str]
) -> SensitivityBound:
    """Global sensitivity of a star-join COUNT query.

    When only the fact table is private ((1, 0)-private), adding or removing
    one fact tuple changes the count by at most 1.  As soon as a dimension
    table is private the foreign-key constraints make a single dimension
    tuple responsible for arbitrarily many fact tuples, so the global
    sensitivity is unbounded (∞).
    """
    if private_dimensions:
        return SensitivityBound(
            value=math.inf,
            kind="global",
            description="unbounded: a private dimension tuple may be referenced by "
            "arbitrarily many fact tuples",
        )
    if not fact_private:
        raise SensitivityError("at least one table must be private")
    return SensitivityBound(value=1.0, kind="global", description="(1,0)-private COUNT")


def sum_query_global_sensitivity(
    fact_private: bool,
    private_dimensions: tuple[str, ...] | list[str],
    measure_bound: float,
) -> SensitivityBound:
    """Global sensitivity of a star-join SUM query (measure values in [0, bound])."""
    if measure_bound < 0:
        raise SensitivityError("measure bound must be non-negative")
    if private_dimensions:
        return SensitivityBound(
            value=math.inf,
            kind="global",
            description="unbounded: private dimension under foreign-key constraints",
        )
    if not fact_private:
        raise SensitivityError("at least one table must be private")
    return SensitivityBound(
        value=float(measure_bound), kind="global", description="(1,0)-private SUM"
    )


def local_sensitivity_star_count(
    database: StarDatabase,
    query: StarJoinQuery,
    private_dimension: str,
) -> float:
    """Local sensitivity of a star-join aggregate w.r.t. one private dimension.

    Removing a tuple of ``private_dimension`` (and, by the foreign-key
    constraint, every fact tuple referencing it) changes the answer by that
    key's total contribution.  The local sensitivity on the given instance is
    therefore the maximum contribution over the dimension's keys, where the
    contribution is a row count for COUNT queries and a measure sum for SUM
    queries.  Predicates on the *other* dimensions still restrict which fact
    rows count; the private dimension's own predicate is dropped because a
    neighbouring instance may contain a tuple satisfying it.
    """
    other_predicates = ConjunctionPredicate.of(
        p for p in query.predicates if p.table != private_dimension
    )
    from repro.db.engine import ExecutionEngine

    engine = ExecutionEngine.for_database(database)
    if query.kind is AggregateKind.COUNT:
        contributions = engine.contribution_per_key(other_predicates, private_dimension)
    else:
        mask = engine.selection_mask(other_predicates)
        codes = database.fact_foreign_key_codes(private_dimension)[mask]
        dim_rows = database.dimension(private_dimension).num_rows
        weights = np.abs(engine.measure_values(query.aggregate.measure))
        contributions = np.bincount(codes, weights=weights[mask], minlength=dim_rows)
    return float(contributions.max()) if contributions.size else 0.0


def local_sensitivity_at_distance(
    local_sensitivity: float, distance: int, growth_per_step: float = 1.0
) -> float:
    """Upper bound on LS^(t): ``LS(D') ≤ LS(D) + t · growth`` for d(D, D') ≤ t.

    For star-join counts, each modification step can increase a key's fan-out
    by at most one fact tuple, so ``growth_per_step = 1``; SUM queries pass
    the measure bound.
    """
    if distance < 0:
        raise SensitivityError("distance must be non-negative")
    return float(local_sensitivity) + float(distance) * float(growth_per_step)


def smooth_sensitivity_from_local(
    local_at_distance: Callable[[int], float],
    beta: float,
    max_distance: Optional[int] = None,
) -> float:
    """β-smooth sensitivity ``max_t e^{-βt} LS^{(t)}(D)`` (Definition 3.5).

    ``local_at_distance(t)`` must be a non-decreasing upper bound on the local
    sensitivity at distance ``t``.  The maximisation stops once the geometric
    decay provably dominates any further (at most linear or given) growth, or
    at ``max_distance``.
    """
    if beta <= 0:
        raise SensitivityError(f"β must be positive, got {beta!r}")
    best = 0.0
    previous_term = -math.inf
    stall = 0
    limit = max_distance if max_distance is not None else 10_000
    for t in range(limit + 1):
        value = float(local_at_distance(t))
        term = math.exp(-beta * t) * value
        best = max(best, term)
        # Stop when the weighted terms have been decreasing for a while; the
        # combination of exponential decay and (sub-)linear growth makes the
        # sequence eventually monotone decreasing.
        if term < previous_term:
            stall += 1
            if stall >= max(10, int(5.0 / beta)):
                break
        else:
            stall = 0
        previous_term = term
    return best


# ----------------------------------------------------------------------
# k-star counting queries on graphs
# ----------------------------------------------------------------------
def binomial(n: float, k: int) -> float:
    """``C(n, k)`` extended with ``C(n, k) = 0`` for n < k (float-safe)."""
    n = int(n)
    if k < 0 or n < k:
        return 0.0
    return float(math.comb(n, k))


def kstar_local_sensitivity(degrees: np.ndarray, k: int) -> float:
    """Local sensitivity of the k-star count under edge neighbouring.

    The k-star count is ``f(G) = Σ_v C(deg(v), k)``.  Adding or removing one
    edge (u, v) changes it by ``C(deg(u), k) - C(deg(u)∓1, k)`` plus the same
    for v, which is at most ``2 · C(d_max, k-1)`` where ``d_max`` is the
    maximum degree (after the change).
    """
    if k < 1:
        raise SensitivityError("k must be at least 1 for k-star counting")
    degrees = np.asarray(degrees)
    d_max = int(degrees.max()) if degrees.size else 0
    return 2.0 * binomial(d_max, k - 1)


def kstar_local_sensitivity_at_distance(degrees: np.ndarray, k: int, distance: int) -> float:
    """LS^{(t)} for the k-star count: t extra edges can raise the max degree by t."""
    degrees = np.asarray(degrees)
    d_max = int(degrees.max()) if degrees.size else 0
    return 2.0 * binomial(d_max + distance, k - 1)


def smooth_sensitivity_kstar(degrees: np.ndarray, k: int, beta: float) -> float:
    """β-smooth sensitivity of the k-star count under edge neighbouring."""
    degrees = np.asarray(degrees)

    def local_at(t: int) -> float:
        return kstar_local_sensitivity_at_distance(degrees, k, t)

    # The growth of C(d_max + t, k-1) is polynomial in t, so the exponential
    # decay dominates; cap the search generously.
    return smooth_sensitivity_from_local(local_at, beta, max_distance=int(degrees.size) + 1000)


def smooth_sensitivity_truncated_kstar(threshold: int, k: int, beta: float) -> float:
    """Smooth sensitivity of the *truncated* k-star count (TM baseline).

    After naive truncation every node has degree at most τ, so adding or
    removing one node changes the count by at most
    ``C(τ, k) + τ · C(τ-1, k-1)`` (its own stars plus its effect on at most τ
    neighbours), and this bound holds at every distance — hence it is its own
    smooth bound.
    """
    if threshold < 0:
        raise SensitivityError("truncation threshold must be non-negative")
    if beta <= 0:
        raise SensitivityError("β must be positive")
    return binomial(threshold, k) + threshold * binomial(threshold - 1, k - 1)
