"""Pluggable column storage: in-memory arrays or a mapped on-disk layout.

See ``docs/STORAGE.md`` for the layout, the manifest format and the chunked
read model the engine kernels are built on.
"""

from repro.db.storage.base import (
    DEFAULT_CHUNK_ROWS,
    ColumnStore,
    MemoryColumnStore,
    iter_chunks,
)
from repro.db.storage.mapped import (
    MANIFEST_NAME,
    MappedColumnStore,
    attach_database,
    spill_database,
)

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "MANIFEST_NAME",
    "ColumnStore",
    "MappedColumnStore",
    "MemoryColumnStore",
    "attach_database",
    "iter_chunks",
    "spill_database",
]
