"""The cache-backend protocol and its shared vocabulary.

The execution engine (:mod:`repro.db.engine`) owns no cache storage of its
own: every memoized artefact — selection masks, fan-out statistics, measure
arrays, per-key contributions, data cubes, exact answers — is read and
written through a :class:`CacheBackend`.  Backends are interchangeable
(selected by configuration, see :func:`repro.db.cache.make_backend`):

* :class:`~repro.db.cache.local.LocalCacheBackend` — in-process storage,
  the default; one bounded LRU or unbounded dict per (namespace, region).
* :class:`~repro.db.cache.shared.SharedMemoryCacheBackend` — a two-tier
  backend whose second tier lives in a ``multiprocessing.Manager`` server
  process, so pool workers share selection masks, data cubes and memoized
  exact answers with each other after fork.

Keys are namespaced: every entry is addressed by ``(namespace, region,
key)``, where the namespace is the owning database's content fingerprint
(:func:`repro.db.cache.fingerprints.database_fingerprint`) and the region
names the kind of artefact (:data:`REGIONS`).  Content-derived namespaces
make keys process-independent — two workers that built the same logical
database compute the same namespace, which is what lets them share a cache —
and make invalidation after an in-place database mutation safe: the mutated
content hashes to a new namespace, so stale entries can never be served.

Every value stored through a backend must be a *pure function of its key*
(given the namespace's database content).  That is the backend-consistency
contract: because a cache hit returns exactly the value any process would
have recomputed, results are bit-identical across backends and across
``jobs=1`` / ``jobs=N`` runs.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, fields
from typing import Any, Hashable, Optional, Protocol, runtime_checkable

from repro.obs.metrics import unified_snapshot

__all__ = [
    "BOUNDED_REGIONS",
    "CacheBackend",
    "CacheStats",
    "DEFAULT_EVICTION_POLICY",
    "EVICTION_POLICIES",
    "REGIONS",
    "SHARED_REGIONS",
    "telemetry_from_stats",
    "value_nbytes",
]


#: Every cache region the execution engine uses, with a short description.
REGIONS: dict[str, str] = {
    "predicate_mask": "boolean fact-row mask of a single predicate",
    "selection_mask": "boolean fact-row mask of a conjunction",
    "fan_out": "unfiltered fan-out vector of a direct dimension",
    "max_fan_out": "maximum fan-out of a direct dimension",
    "measure": "measure expression over every fact row",
    "contribution": "per-dimension-key contribution vector",
    "sorted_contribution": "sorted contributions + exclusive prefix sums",
    "cube": "bincount-built data cube over workload attributes",
    "result": "memoized exact query answer",
}

#: Regions kept behind a bounded LRU (noisy one-off keys must not grow the
#: cache without limit).  The complement — fan-out, measures, cubes — is
#: small, per-database statistics and stays unbounded, exactly as the
#: pre-refactor per-engine dicts did.
BOUNDED_REGIONS: frozenset[str] = frozenset(
    {"predicate_mask", "selection_mask", "contribution", "sorted_contribution", "result"}
)

#: Regions the shared backend replicates into its cross-process tier: the
#: artefacts that are expensive to recompute and cheap(er) to ship than to
#: rebuild.  Predicate masks and measure arrays are deliberately excluded —
#: they are either subsumed by selection masks or recomputed in microseconds.
SHARED_REGIONS: frozenset[str] = frozenset(
    {"selection_mask", "contribution", "sorted_contribution", "cube", "result"}
)

#: Eviction policies the bounded tiers understand.  ``"cost"`` is
#: cost-normalized utility eviction (GreedyDual-Size-Frequency: evict the
#: entry with the lowest ``recency-decay + frequency × cost / bytes``
#: priority first); ``"lru"`` is the pre-cost behaviour, kept for comparison
#: benchmarks and for workloads whose recompute costs are uniform.
EVICTION_POLICIES: tuple[str, ...] = ("cost", "lru")

#: The default policy of every bounded tier.
DEFAULT_EVICTION_POLICY: str = "cost"


def value_nbytes(value: Any) -> int:
    """A cheap byte-size estimate of a cached value.

    ndarrays report their buffer size, tuples sum their members, and
    everything else falls back to pickled length.  Estimates only steer
    eviction order and byte budgets — they never affect cached values, so a
    rough number is fine; the fallback is capped by the fact that cached
    artefacts are engine products (arrays, scalars, small tuples).
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, tuple):
        return sum(value_nbytes(item) for item in value) + 16 * len(value)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8", errors="replace"))
    if isinstance(value, (int, float, bool)) or value is None:
        return 32
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64


@dataclass
class CacheStats:
    """Hit / miss / eviction counters of a cache backend.

    ``hits`` / ``misses`` / ``puts`` / ``evictions`` count in-process tier
    traffic.  The ``shared_*`` counters count the cross-process tier of the
    shared backend (zero on the local backend): ``shared_hits`` is the number
    of entries this run obtained from *another* process's work.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    shared_hits: int = 0
    shared_misses: int = 0
    shared_puts: int = 0
    shared_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def shared_hit_rate(self) -> float:
        total = self.shared_hits + self.shared_misses
        return self.shared_hits / total if total else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """One-line human-readable form (used by ``--cache-stats``)."""
        text = (
            f"hits={self.hits} misses={self.misses} "
            f"(rate {self.hit_rate:.1%}) puts={self.puts} evictions={self.evictions}"
        )
        if self.shared_hits or self.shared_misses or self.shared_puts:
            text += (
                f" | shared: hits={self.shared_hits} misses={self.shared_misses} "
                f"(rate {self.shared_hit_rate:.1%}) puts={self.shared_puts}"
                f" evictions={self.shared_evictions}"
            )
        return text


def telemetry_from_stats(
    stats: CacheStats,
    name: str,
    gauges: Optional[dict] = None,
    subsystem_extra: Optional[dict] = None,
) -> dict:
    """A backend's :class:`CacheStats` in the unified telemetry schema.

    Every backend's ``telemetry_snapshot()`` funnels through this, so the
    conformance suite can assert one shape — ``counters`` carries the raw
    tallies, ``gauges`` the derived rates (plus backend-specific occupancy),
    and ``subsystem`` identifies the backend.  The legacy ``stats()`` /
    :meth:`CacheStats.as_dict` surfaces stay untouched as the compatibility
    shim for existing callers.
    """
    gauges = dict(gauges or {})
    gauges.setdefault("hit_rate", round(stats.hit_rate, 6))
    gauges.setdefault("shared_hit_rate", round(stats.shared_hit_rate, 6))
    subsystem = {"name": "cache", "backend": name}
    subsystem.update(subsystem_extra or {})
    return unified_snapshot(
        counters=stats.as_dict(), gauges=gauges, histograms={}, subsystem=subsystem
    )


@runtime_checkable
class CacheBackend(Protocol):
    """What the execution engine requires of a cache backend.

    ``get`` returns ``None`` on a miss — backends never store ``None`` (the
    engine only caches computed artefacts, which are all non-``None``).
    ``clear(namespace)`` drops one namespace's entries; ``clear()`` drops
    everything.  Statistics accumulate across operations until
    :meth:`reset_stats`.
    """

    name: str

    def get(self, namespace: str, region: str, key: Hashable) -> Any: ...

    def put(
        self,
        namespace: str,
        region: str,
        key: Hashable,
        value: Any,
        cost: Optional[float] = None,
    ) -> None:
        """Store ``value``; ``cost`` is the recompute wall-clock in seconds.

        The cost is *metadata*: it steers cost-aware eviction order but never
        the stored value, so callers that cannot time the computation may
        always pass ``None`` (the entry competes with a neutral utility).
        """
        ...

    def clear(self, namespace: Optional[str] = None) -> None: ...

    def release(self, namespace: str) -> None:
        """Drop *this process's* storage for a namespace whose database died.

        Unlike :meth:`clear`, which removes a namespace everywhere (the
        invalidation path), ``release`` only reclaims in-process memory: on
        the shared backend the cross-process tier is left intact, because
        another worker may still be serving the same logical database.
        Called by the engine registry when a database is garbage-collected;
        over-releasing is always safe — the next miss recomputes.
        """
        ...

    def stats(self) -> CacheStats: ...

    def reset_stats(self) -> None: ...

    def entry_count(self, namespace: Optional[str] = None) -> int: ...
