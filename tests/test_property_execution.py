"""Property-based tests for query execution, k-star identities and
matrix decomposition on randomly generated inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matrix_decomposition import MatrixDecomposition
from repro.db.database import StarDatabase
from repro.db.domains import AttributeDomain
from repro.db.executor import QueryExecutor
from repro.db.join import execute_by_materialised_join
from repro.db.predicates import PointPredicate, RangePredicate
from repro.db.query import StarJoinQuery
from repro.db.schema import ForeignKey, StarSchema, TableSchema
from repro.db.table import Column, Table
from repro.graph.edge_table import Graph
from repro.graph.kstar import KStarQuery, kstar_count, kstar_count_by_join, per_node_star_counts


@st.composite
def random_star_databases(draw):
    """A random one-dimension star database plus a random predicate."""
    domain_size = draw(st.integers(min_value=1, max_value=8))
    dim_rows = draw(st.integers(min_value=1, max_value=12))
    fact_rows = draw(st.integers(min_value=1, max_value=60))

    domain = AttributeDomain.integer_range("attr", 0, domain_size - 1)
    dim_codes = draw(
        st.lists(
            st.integers(min_value=0, max_value=domain_size - 1),
            min_size=dim_rows,
            max_size=dim_rows,
        )
    )
    fk_codes = draw(
        st.lists(
            st.integers(min_value=0, max_value=dim_rows - 1),
            min_size=fact_rows,
            max_size=fact_rows,
        )
    )
    amounts = draw(
        st.lists(
            st.integers(min_value=0, max_value=100), min_size=fact_rows, max_size=fact_rows
        )
    )

    schema = StarSchema(
        fact=TableSchema(name="F", key=None, measures=("amount",)),
        dimensions=[TableSchema(name="D", key="DK", attributes={"attr": domain})],
        foreign_keys=[ForeignKey("DK", "D", "DK")],
    )
    dimension = Table(
        "D",
        [
            Column("DK", np.arange(dim_rows)),
            Column("attr", np.asarray(dim_codes), domain=domain),
        ],
    )
    fact = Table(
        "F",
        [
            Column("DK", np.asarray(fk_codes)),
            Column("amount", np.asarray(amounts, dtype=np.float64)),
        ],
    )
    database = StarDatabase(schema=schema, fact=fact, dimensions={"D": dimension})

    low = draw(st.integers(min_value=0, max_value=domain_size - 1))
    high = draw(st.integers(min_value=low, max_value=domain_size - 1))
    predicate = RangePredicate("D", "attr", domain, low=low, high=high)
    return database, predicate


class TestExecutorProperties:
    @given(random_star_databases())
    @settings(max_examples=60, deadline=None)
    def test_semi_join_matches_materialised_join(self, case):
        database, predicate = case
        for query in (
            StarJoinQuery.count("c", [predicate]),
            StarJoinQuery.sum("s", "amount", [predicate]),
        ):
            fast = QueryExecutor(database).execute(query)
            assert fast == execute_by_materialised_join(database, query)

    @given(random_star_databases())
    @settings(max_examples=60, deadline=None)
    def test_count_bounded_by_fact_rows(self, case):
        database, predicate = case
        count = QueryExecutor(database).execute(StarJoinQuery.count("c", [predicate]))
        assert 0 <= count <= database.num_fact_rows

    @given(random_star_databases())
    @settings(max_examples=60, deadline=None)
    def test_point_counts_partition_the_fact_table(self, case):
        database, _ = case
        domain = database.dimension("D").domain("attr")
        executor = QueryExecutor(database)
        total = sum(
            executor.execute(
                StarJoinQuery.count("c", [PointPredicate("D", "attr", domain, value=v)])
            )
            for v in domain
        )
        assert total == database.num_fact_rows

    @given(random_star_databases())
    @settings(max_examples=40, deadline=None)
    def test_truncated_answer_monotone_in_threshold(self, case):
        database, predicate = case
        executor = QueryExecutor(database)
        query = StarJoinQuery.count("c", [predicate])
        answers = [
            executor.truncated_answer(query, "D", threshold) for threshold in (0, 1, 2, 5, 10**6)
        ]
        assert answers == sorted(answers)
        assert answers[-1] == executor.execute(query)


@st.composite
def random_graphs(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=25))
    num_edges = draw(st.integers(min_value=0, max_value=60))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_nodes - 1),
                st.integers(min_value=0, max_value=num_nodes - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return Graph.from_edge_list(edges, num_nodes=num_nodes)


class TestKStarProperties:
    @given(random_graphs(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_degree_formula_matches_join_enumeration(self, graph, k):
        query = KStarQuery(k=k)
        assert kstar_count(graph, query) == kstar_count_by_join(graph, query)

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_one_star_count_is_twice_edge_count(self, graph):
        assert kstar_count(graph, KStarQuery(k=1)) == 2.0 * graph.num_edges

    @given(random_graphs(), st.integers(min_value=1, max_value=3), st.integers(min_value=0, max_value=24))
    @settings(max_examples=60, deadline=None)
    def test_range_counts_are_monotone_in_range(self, graph, k, split):
        split = min(split, graph.num_nodes - 1)
        prefix = kstar_count(graph, KStarQuery(k=k, low=0, high=split))
        full = kstar_count(graph, KStarQuery(k=k))
        assert prefix <= full

    @given(random_graphs(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_truncation_never_increases_star_count(self, graph, threshold):
        truncated = graph.truncate_degrees(threshold)
        assert kstar_count(truncated, KStarQuery(k=2)) <= kstar_count(graph, KStarQuery(k=2))
        assert truncated.max_degree() <= threshold

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_per_node_counts_sum_to_total(self, graph):
        counts = per_node_star_counts(graph.degrees(), 2)
        assert counts.sum() == kstar_count(graph, KStarQuery(k=2))


@st.composite
def binary_workloads(draw):
    rows = draw(st.integers(min_value=1, max_value=10))
    cols = draw(st.integers(min_value=1, max_value=10))
    matrix = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=1), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
    )
    return np.asarray(matrix, dtype=np.float64)


class TestDecompositionProperties:
    @given(binary_workloads())
    @settings(max_examples=60, deadline=None)
    def test_chosen_strategy_reconstructs_exactly(self, workload):
        choice = MatrixDecomposition().decompose(workload)
        assert choice.reconstruction_error(workload) < 1e-7

    @given(binary_workloads())
    @settings(max_examples=60, deadline=None)
    def test_distinct_rows_never_exceed_workload_rows(self, workload):
        choice = MatrixDecomposition().decompose_with(workload, "distinct_rows")
        assert choice.num_rows <= workload.shape[0]
