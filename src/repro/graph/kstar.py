"""Exact k-star counting.

A k-star is a centre node together with k distinct neighbours; the k-star
count of a graph is ``Σ_v C(deg(v), k)``.  The paper's queries Q2* and Q3*
(Appendix A.2) additionally restrict the centre node to a contiguous id range
``from_id BETWEEN low AND high`` — that range is the query's predicate and its
domain size is the number of vertices, which is what PM perturbs.

Two counting implementations are provided: the fast degree-based one used by
all mechanisms, and a join-based reference that literally enumerates the
self-join the SQL queries describe (only viable on small graphs; used by the
test suite to validate the degree formula).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Optional

import numpy as np

from repro.exceptions import QueryError
from repro.graph.edge_table import Graph

__all__ = [
    "KStarQuery",
    "kstar_count",
    "kstar_count_by_join",
    "per_node_star_counts",
    "star_count_prefix",
]


@dataclass(frozen=True)
class KStarQuery:
    """A k-star counting query with a centre-node range predicate.

    ``low`` / ``high`` are inclusive node ids; ``None`` means the respective
    end of the full node range.  The predicate's domain size is the graph's
    number of vertices.
    """

    k: int
    low: Optional[int] = None
    high: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("k-star queries require k >= 1")
        if self.low is not None and self.high is not None and self.low > self.high:
            raise QueryError(f"k-star query range [{self.low}, {self.high}] is reversed")

    def resolved_range(self, num_nodes: int) -> tuple[int, int]:
        low = 0 if self.low is None else max(int(self.low), 0)
        high = num_nodes - 1 if self.high is None else min(int(self.high), num_nodes - 1)
        return low, high

    @property
    def label(self) -> str:
        return self.name or f"Q{self.k}*"


def per_node_star_counts(degrees: np.ndarray, k: int) -> np.ndarray:
    """``C(deg(v), k)`` for every node, as float64 (counts can be huge)."""
    degrees = np.asarray(degrees, dtype=np.int64)
    unique_degrees, inverse = np.unique(degrees, return_inverse=True)
    per_degree = np.array(
        [float(math.comb(int(d), k)) if d >= k else 0.0 for d in unique_degrees],
        dtype=np.float64,
    )
    return per_degree[inverse]


def star_count_prefix(graph: Graph, k: int) -> np.ndarray:
    """Prefix sums of the per-node k-star counts, cached on the graph.

    ``prefix[i]`` is the k-star count over centre nodes ``0 .. i-1``, so any
    centre-node range restriction is answered in O(1) — which is what makes
    repeated PM trials (each with a different noisy range) cheap.  Counts are
    integers represented exactly in float64 for any realistic graph, so the
    prefix difference equals the direct sum.
    """
    prefix = graph._star_prefix_cache.get(k)
    if prefix is None:
        counts = per_node_star_counts(graph.degrees(), k)
        prefix = np.concatenate([[0.0], np.cumsum(counts)])
        graph._star_prefix_cache[k] = prefix
    return prefix


def kstar_count(graph: Graph, query: KStarQuery) -> float:
    """Exact k-star count restricted to centre nodes in the query range."""
    low, high = query.resolved_range(graph.num_nodes)
    if low > high:
        return 0.0
    prefix = star_count_prefix(graph, query.k)
    return float(prefix[high + 1] - prefix[low])


def kstar_count_by_join(graph: Graph, query: KStarQuery, max_edges: int = 200_000) -> float:
    """Reference count by enumerating the self-join (small graphs only).

    Mirrors the SQL formulation: pick a centre node in the range, then choose
    k neighbours with strictly increasing ids (the ``to_id < to_id`` chain in
    the appendix queries removes permutations).
    """
    if graph.num_edges > max_edges:
        raise QueryError(
            f"join-based k-star counting is limited to {max_edges} edges; "
            f"graph has {graph.num_edges}"
        )
    low, high = query.resolved_range(graph.num_nodes)
    adjacency = graph.adjacency_lists()
    total = 0
    for centre in range(low, high + 1):
        neighbours = adjacency[centre]
        if neighbours.size < query.k:
            continue
        # Each sorted k-subset of neighbours is one k-star.
        total += sum(1 for _ in combinations(neighbours.tolist(), query.k))
    return float(total)
