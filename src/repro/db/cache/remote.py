"""The out-of-process cache backend (client side).

A two-tier design, deliberately parallel to
:class:`~repro.db.cache.shared.SharedMemoryCacheBackend`:

* **L1** — a private :class:`~repro.db.cache.local.LocalCacheBackend` per
  process, so hot entries cost a dict lookup.
* **L2** — a :class:`~repro.db.cache.server.CacheServer` reached over TCP.
  Entries in :data:`~repro.db.cache.backend.SHARED_REGIONS` (selection
  masks, contributions, data cubes, exact answers) are written through and,
  on an L1 miss, fetched back.  Unlike the shared backend's
  ``multiprocessing.Manager`` tier, the server is *not* tied to a fork
  family: a batch evaluation run and a separately launched serving process
  address the same entries through content-fingerprint namespaces, and a
  ``--path``-persisted server survives both.

Lifecycle mirrors the shared backend:

* Create **before** the worker pool forks (``evaluation_session`` does) so
  every worker inherits the configuration and the fork-shared counters.
  Sockets cannot cross a fork: each process lazily opens its own small
  connection pool, keyed by pid, so an inherited backend reconnects
  transparently inside the first worker that touches it.
* If the server becomes unreachable — killed mid-run, network gone — a
  :class:`~repro.db.cache.breaker.CircuitBreaker` opens and the backend
  degrades to L1-only instead of failing: sharing is an optimisation, never
  a correctness requirement.  Values are pure functions of their
  content-derived keys, so a degraded run produces byte-identical results,
  just more slowly.  Unlike the old permanent ``_broken`` flag, the breaker
  half-opens after ``breaker_reset_timeout`` and probes the server, so a
  restarted server is picked back up mid-run.  Each remote operation runs
  under an explicit per-op deadline (``op_timeout``) and is retried up to
  ``retry_attempts`` times with exponential backoff + jitter before it
  counts as a hard failure.
* ``close()`` drops this process's connections; with an *owned* embedded
  server (the ``path=`` convenience used by ``--cache-path``) the owner
  process also stops that server thread.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import socket
import struct
import threading
import time
import warnings
from typing import Any, Hashable, Optional

import hashlib

from repro.db.cache.backend import (
    DEFAULT_EVICTION_POLICY,
    SHARED_REGIONS,
    CacheStats,
    telemetry_from_stats,
)
from repro.db.cache.breaker import CircuitBreaker
from repro.db.cache.local import LocalCacheBackend
from repro.db.cache.shared import _freeze_value
from repro.db.cache.wire import (
    MAX_FRAME_PAYLOAD,
    decode_payload,
    encode_key,
    encode_payload,
    key_to_header,
    read_frame,
    write_frame,
)
from repro.obs.metrics import active_registry
from repro.obs.trace import span, wire_context

__all__ = ["RemoteCacheBackend", "parse_cache_url"]

#: Exceptions that mean "the cache server is gone or the wire/payload is
#: garbage"; the backend degrades to its local tier when it sees one.
#: ``struct.error`` (a short/corrupt payload buffer) and ``pickle.PickleError``
#: (an unpicklable value, or a corrupt pickled blob) are included for the
#: same reason the shared backend lists ``pickle.PicklingError``: a bad
#: entry must cost a recomputation, never the run.
_REMOTE_ERRORS = (OSError, EOFError, ValueError, struct.error, pickle.PickleError)


def parse_cache_url(url: str) -> tuple[str, int]:
    """``host:port`` (or ``tcp://host:port``) → ``(host, port)``."""
    text = url.strip()
    for prefix in ("tcp://", "cache://"):
        if text.startswith(prefix):
            text = text[len(prefix) :]
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValueError(f"cache url must look like host:port, got {url!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"cache url has a non-integer port: {url!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"cache url port out of range: {url!r}")
    return host, port


class _Connection:
    """One pooled blocking connection (socket + buffered file object).

    ``timeout`` bounds connection establishment; ``op_timeout`` is the
    per-operation deadline every subsequent send/recv runs under, so a
    frozen (but connected) server surfaces as a timeout instead of a hang.
    """

    def __init__(self, host: str, port: int, timeout: float, op_timeout: Optional[float] = None):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(op_timeout if op_timeout is not None else timeout)
        self.file = self.sock.makefile("rwb")

    def close(self) -> None:
        try:
            self.file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class RemoteCacheBackend:
    """Two-tier cache backend: in-process LRU over a TCP cache server."""

    name = "remote"

    def __init__(
        self,
        url: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        path: Optional[str] = None,
        max_entries: int = 192,
        remote_regions: frozenset[str] = SHARED_REGIONS,
        timeout: float = 30.0,
        max_connections: int = 4,
        server_max_entries: Optional[int] = None,
        op_timeout: Optional[float] = None,
        retry_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
        breaker_threshold: int = 3,
        breaker_reset_timeout: float = 2.0,
        policy: str = DEFAULT_EVICTION_POLICY,
        max_bytes: Optional[int] = None,
        server_max_bytes: Optional[int] = None,
    ):
        """Connect to (or start) a cache server.

        Exactly one way of naming the server: ``url`` (``host:port``),
        ``host``/``port``, or ``path`` — the last starts an *embedded*
        :class:`~repro.db.cache.server.CacheServerThread` persisting to that
        file, owned (and stopped on :meth:`close`) by this backend.  An
        unreachable server degrades the backend to local-only with a warning
        rather than failing construction.

        Resilience knobs: ``op_timeout`` is the per-operation socket
        deadline (defaults to ``timeout``); each operation is attempted up
        to ``retry_attempts`` times with exponential backoff
        (``backoff_base * 2**attempt``, capped at ``backoff_max``, plus up
        to 50% jitter); ``breaker_threshold`` consecutive hard failures
        open the circuit breaker, which half-opens to probe recovery after
        ``breaker_reset_timeout`` seconds.
        """
        self._local = LocalCacheBackend(max_entries, policy=policy, max_bytes=max_bytes)
        self.max_entries = self._local.max_entries
        self.policy = self._local.policy
        self.remote_regions = frozenset(remote_regions)
        self.timeout = float(timeout)
        self.op_timeout = float(op_timeout) if op_timeout is not None else self.timeout
        self.retry_attempts = max(1, int(retry_attempts))
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset_timeout,
        )
        # Backoff jitter RNG: lazily (re)seeded per pid by _jitter_rng().  A
        # single generator created here would be inherited byte-identically
        # by every forked pool worker, so jobs=N workers hitting a struggling
        # server would back off in lockstep — a thundering herd precisely
        # when the server least needs one.  Same pattern as the pid-keyed
        # connection pool below.  Independent of the global random stream.
        self._jitter: Optional[random.Random] = None
        self._jitter_pid: Optional[int] = None
        self.max_connections = max(1, int(max_connections))
        self._server_handle = None
        if path is not None:
            if url is not None or host is not None or port is not None:
                raise ValueError("pass either path= (embedded server) or url/host/port")
            from repro.db.cache.server import CacheServerThread

            bound = server_max_entries if server_max_entries is not None else max_entries * 16
            self._server_handle = CacheServerThread(
                path=str(path), max_entries=bound, max_bytes=server_max_bytes, policy=policy
            ).start()
            host, port = "127.0.0.1", self._server_handle.server.port
        elif url is not None:
            if host is not None or port is not None:
                raise ValueError("pass either url= or host=/port=, not both")
            host, port = parse_cache_url(url)
        elif host is None or port is None:
            raise ValueError(
                "remote cache backend needs a server: pass url='host:port' "
                "(--cache-url) or path='cache.db' (--cache-path) to start one"
            )
        self.host = str(host)
        self.port = int(port)
        self._owner_pid = os.getpid()
        self._closed = False
        self._pool: list[_Connection] = []
        self._pool_pid = os.getpid()
        self._pool_lock = threading.Lock()
        # Fork-inherited counters, exactly like the shared backend: workers
        # increment, the parent's stats() sees the whole run.  Remote-tier
        # traffic is reported through the shared_* slots of CacheStats.
        self._shared_hits = multiprocessing.Value("Q", 0)
        self._shared_misses = multiprocessing.Value("Q", 0)
        self._shared_puts = multiprocessing.Value("Q", 0)
        self._bytes_sent = multiprocessing.Value("Q", 0)
        self._bytes_received = multiprocessing.Value("Q", 0)
        self._put_short_circuits = multiprocessing.Value("Q", 0)
        self._put_bytes_saved = multiprocessing.Value("Q", 0)
        # Payload fingerprints of entries this process knows the server
        # holds (recorded on every successful put and get).  A repeated put
        # of an identical payload — the single-flight-adjacent race where
        # two workers compute the same artefact — skips the round trip.
        # Entries are dropped the moment the server reports a miss for the
        # key (it may have evicted it), so a skipped write can never leave
        # the server cold.  Bounded; per-process after fork (copy-on-write
        # snapshots stay valid — they only describe server state).
        self._digests: dict[bytes, bytes] = {}
        self._max_digests = 4096
        try:
            self._request({"op": "ping"})
        except _REMOTE_ERRORS as error:
            warnings.warn(
                f"cache server {self.host}:{self.port} is unreachable ({error}); "
                "continuing with the local tier only",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # connection pool
    # ------------------------------------------------------------------
    def _checkout(self) -> tuple[_Connection, bool]:
        """A connection plus whether it came from the pool (a pooled socket
        may predate a server restart, so its failures are retryable)."""
        with self._pool_lock:
            if self._pool_pid != os.getpid():
                # Forked child: the inherited sockets belong to the parent's
                # conversation.  Drop the references without closing — the
                # parent still holds its copies — and start a fresh pool.
                self._pool = []
                self._pool_pid = os.getpid()
            if self._pool:
                return self._pool.pop(), True
        return _Connection(self.host, self.port, self.timeout, self.op_timeout), False

    def _checkin(self, connection: _Connection) -> None:
        with self._pool_lock:
            if self._pool_pid == os.getpid() and len(self._pool) < self.max_connections:
                self._pool.append(connection)
                return
        connection.close()

    def _count(self, counter, amount: int = 1) -> None:
        with counter.get_lock():
            counter.value += amount

    def _jitter_rng(self) -> random.Random:
        """This process's backoff-jitter generator, reseeded after a fork.

        Seeded from (pid, monotonic entropy, instance id) so forked workers —
        which inherit this object's state copy-on-write — draw *divergent*
        jitter sequences instead of the parent's, and two backends in one
        process stay independent of each other.  Deliberately not derived
        from any experiment seed: jitter timing never touches results.
        """
        pid = os.getpid()
        if self._jitter is None or self._jitter_pid != pid:
            self._jitter = random.Random(f"{pid}:{time.time_ns()}:{id(self)}")
            self._jitter_pid = pid
        return self._jitter

    def _backoff(self, attempt: int) -> None:
        delay = min(self.backoff_base * (2**attempt), self.backoff_max)
        time.sleep(delay * (1.0 + 0.5 * self._jitter_rng().random()))

    def _request(self, header: dict, payload: bytes = b"") -> tuple[dict, bytes]:
        """One request/response round-trip, with bounded retry.

        A transport failure on a *pooled* socket is ambiguous — the server
        may merely have restarted since the socket was pooled (the headline
        persistence scenario) — so it costs nothing: it is not reported to
        the breaker and does not consume a retry attempt.  Failures on
        fresh connections are real: each is recorded with the breaker, and
        the operation is retried up to ``retry_attempts`` times (once while
        the breaker is probing — a probe that needed three tries did not
        recover) with exponential backoff + jitter before the last error
        propagates.  Raises one of :data:`_REMOTE_ERRORS` when the server
        is genuinely unreachable (the caller degrades) and ``RuntimeError``
        when the server answers a structured error.
        """
        connection, pooled = self._checkout()
        if pooled:
            try:
                return self._round_trip(connection, header, payload)
            except _REMOTE_ERRORS:
                connection = None  # stale pooled socket: retry fresh below
        attempts = self.retry_attempts if self.breaker.is_closed else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                if connection is None:
                    connection = _Connection(
                        self.host, self.port, self.timeout, self.op_timeout
                    )
                return self._round_trip(connection, header, payload)
            except _REMOTE_ERRORS as error:
                self.breaker.record_failure(error)
                last_error = error
                connection = None
                if attempt + 1 < attempts:
                    self._backoff(attempt)
        raise last_error

    def _round_trip(self, connection: _Connection, header: dict, payload: bytes):
        try:
            sent = write_frame(connection.file, header, payload)
            response, response_payload, received = read_frame(connection.file)
        except BaseException:
            connection.close()
            raise
        # A complete round trip — even one carrying a structured refusal —
        # proves the transport is healthy.
        self.breaker.record_success()
        self._count(self._bytes_sent, sent)
        self._count(self._bytes_received, received)
        active_registry().counter("cache_remote_roundtrips_total").inc()
        if not response.get("ok"):
            # A structured refusal may come with the server about to drop
            # the link (the bad-frame path); never pool a connection whose
            # state we cannot vouch for, or the *next* healthy request
            # would hit its EOF and wrongly mark the backend broken.
            connection.close()
            raise RuntimeError(f"cache server error: {response.get('error')}")
        self._checkin(connection)
        return response, response_payload

    # ------------------------------------------------------------------
    # the CacheBackend protocol
    # ------------------------------------------------------------------
    def _remote_allowed(self) -> bool:
        """Whether a remote round trip may be attempted right now: the
        backend is not closed and the circuit breaker admits the request
        (closed, or half-open granting this call the probe slot)."""
        return not self._closed and self.breaker.allow()

    def _remember_digest(self, encoded_key: bytes, payload: bytes) -> None:
        self._digests.pop(encoded_key, None)
        self._digests[encoded_key] = hashlib.sha256(payload).digest()
        while len(self._digests) > self._max_digests:
            self._digests.pop(next(iter(self._digests)))

    def get(self, namespace: str, region: str, key: Hashable) -> Any:
        value = self._local.get(namespace, region, key)
        if value is not None or region not in self.remote_regions:
            return value
        if not self._remote_allowed():
            return None
        encoded_key = encode_key(namespace, region, key)
        header = {
            "op": "get",
            "namespace": namespace,
            "region": region,
            "key": key_to_header(encoded_key),
        }
        with span("cache.remote.get", region=region) as current:
            # Propagate the trace over the wire (optional header field;
            # servers that predate it ignore unknown fields — v2 policy).
            context = wire_context()
            if context is not None:
                header["trace"] = context
            try:
                response, payload = self._request(header)
                if not response.get("hit"):
                    # The server does not hold the key (any more): forget its
                    # fingerprint so the next put writes it back.
                    self._digests.pop(encoded_key, None)
                    self._count(self._shared_misses)
                    if current is not None:
                        current.set(hit=False)
                    return None
                value = decode_payload(payload)
            except _REMOTE_ERRORS as error:
                # A payload that decoded to garbage trips the breaker outright:
                # the round trip "succeeded", so only an immediate trip stops
                # the next op from decoding more garbage.  Transport errors
                # have already been counted per-attempt inside _request.
                self.breaker.trip(error)
                return None
            except RuntimeError:
                self._count(self._shared_misses)
                return None
            if current is not None:
                current.set(hit=True, nbytes=len(payload))
        self._count(self._shared_hits)
        self._remember_digest(encoded_key, payload)
        value = _freeze_value(value)
        cost = response.get("cost")
        # Promote to L1 quietly: a promotion is not a new artefact, so it
        # must not inflate the put counter (same rule as the shared backend).
        self._local._put(namespace, region, key, value, cost)
        return value

    def put(
        self,
        namespace: str,
        region: str,
        key: Hashable,
        value: Any,
        cost: Optional[float] = None,
    ) -> None:
        self._local.put(namespace, region, key, value, cost)
        if region not in self.remote_regions:
            return
        try:
            payload = encode_payload(value)
        except Exception:
            # A value that cannot cross the wire (unpicklable, exotic) is a
            # value problem, not a server problem: L1 already holds it, so
            # skip the remote write without degrading the whole backend.
            return
        if len(payload) > MAX_FRAME_PAYLOAD:
            return  # same rule: an oversized value must not cost the tier
        if not self._remote_allowed():
            return
        encoded_key = encode_key(namespace, region, key)
        if self._digests.get(encoded_key) == hashlib.sha256(payload).digest():
            # Fingerprint short-circuit: the server already holds this exact
            # payload for this key — the write would be a byte-for-byte
            # no-op, so save the wire traffic and count what it would have
            # cost.  (Values are pure functions of their keys, so an equal
            # digest means an equal artefact, not a lucky collision.)
            self._count(self._put_short_circuits)
            self._count(self._put_bytes_saved, len(payload))
            return
        header = {
            "op": "put",
            "namespace": namespace,
            "region": region,
            "key": key_to_header(encoded_key),
        }
        if cost is not None:
            header["cost"] = round(float(cost), 9)
        with span("cache.remote.put", region=region, nbytes=len(payload)) as current:
            context = wire_context()
            if context is not None:
                header["trace"] = context
            try:
                response, _ = self._request(header, payload)
                self._count(self._shared_puts)
                if response.get("stored"):
                    self._remember_digest(encoded_key, payload)
                elif current is not None:
                    current.set(stored=False)
            except _REMOTE_ERRORS:
                pass  # attempts already recorded; the breaker is open by now
            except RuntimeError:
                pass  # the server refused one entry; nothing to degrade over

    def clear(self, namespace: Optional[str] = None) -> None:
        self._local.clear(namespace)
        self._digests.clear()  # conservatively: the server is losing entries
        if namespace is None:
            self.reset_stats()  # a full clear is a fresh start, counters too
        if not self._remote_allowed():
            return
        try:
            self._request({"op": "clear", "namespace": namespace})
        except _REMOTE_ERRORS:
            pass
        except RuntimeError:
            pass

    def release(self, namespace: str) -> None:
        """Drop the L1 entries only: the server may still be warming other
        processes (or future runs, through its persistence file)."""
        self._local.clear(namespace)

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        stats = self._local.stats()
        stats.shared_hits = int(self._shared_hits.value)
        stats.shared_misses = int(self._shared_misses.value)
        stats.shared_puts = int(self._shared_puts.value)
        return stats

    def reset_stats(self) -> None:
        self._local.reset_stats()
        for counter in (
            self._shared_hits,
            self._shared_misses,
            self._shared_puts,
            self._put_short_circuits,
            self._put_bytes_saved,
        ):
            with counter.get_lock():
                counter.value = 0

    def entry_count(self, namespace: Optional[str] = None) -> int:
        count = self._local.entry_count(namespace)
        if not self._remote_allowed():
            return count
        try:
            response, _ = self._request({"op": "count", "namespace": namespace})
            return count + int(response.get("count", 0))
        except _REMOTE_ERRORS:
            return count
        except RuntimeError:
            return count

    # ------------------------------------------------------------------
    # observability beyond the protocol
    # ------------------------------------------------------------------
    @property
    def _broken(self) -> bool:
        """Whether the remote tier is currently out of service: the backend
        was closed, or the circuit breaker is open / probing.  Kept as the
        historical name; unlike the flag it replaced, it flips back to
        ``False`` when a half-open probe finds the server again."""
        return self._closed or not self.breaker.is_closed

    @property
    def degraded(self) -> bool:
        """Whether this backend has fallen back to its local tier only
        (the server is unreachable right now; results are still correct,
        just recomputed instead of shared).  Clears automatically once the
        breaker's half-open probe finds the server healthy again."""
        return self._broken

    def remote_io(self) -> dict:
        """Client-side wire traffic of this backend (fork-shared totals)."""
        return {
            "bytes_sent": int(self._bytes_sent.value),
            "bytes_received": int(self._bytes_received.value),
        }

    def telemetry_snapshot(self) -> dict:
        """Client-side counters in the unified telemetry schema — wire
        traffic and short-circuit savings included (``stats()`` remains the
        legacy-shaped compatibility surface).  Deliberately no server round
        trip: the server reports itself via its own ``telemetry`` op."""
        breaker = self.breaker.stats()
        io = self.remote_io()
        snapshot = telemetry_from_stats(
            self.stats(),
            self.name,
            gauges={
                "entries": self._local.entry_count(),
                "bytes": self._local.byte_count(),
            },
            subsystem_extra={
                "policy": self._local.policy,
                "max_entries": self._local.max_entries,
                "degraded": self.degraded,
                "breaker_state": breaker.get("state"),
                "server": f"{self.host}:{self.port}",
            },
        )
        snapshot["counters"].update(
            {
                "bytes_sent": io["bytes_sent"],
                "bytes_received": io["bytes_received"],
                "put_short_circuits": int(self._put_short_circuits.value),
                "put_bytes_saved": int(self._put_bytes_saved.value),
                "breaker_trips": int(breaker.get("trips", 0)),
            }
        )
        return snapshot

    def breaker_stats(self) -> dict:
        """The circuit breaker's state and lifetime counters, plus the
        fingerprint short-circuit savings (fork-shared totals)."""
        stats = self.breaker.stats()
        stats["put_short_circuits"] = int(self._put_short_circuits.value)
        stats["put_bytes_saved"] = int(self._put_bytes_saved.value)
        return stats

    def miss_log(self, namespace: Optional[str] = None, clear: bool = False) -> Optional[dict]:
        """The server's observed-miss log (the ``warm`` op), or ``None`` when
        the server is unreachable.  ``clear=True`` drains it after reading —
        what a warm-ahead poller does so misses are handed out once."""
        if not self._remote_allowed():
            return None
        header = {"op": "warm"}
        if namespace is not None:
            header["namespace"] = namespace
        if clear:
            header["clear"] = True
        try:
            response, _ = self._request(header)
        except _REMOTE_ERRORS:
            return None
        except RuntimeError:
            return None
        return {
            "recorded": response.get("recorded", 0),
            "counts": response.get("counts", {}),
            "recent": response.get("recent", []),
        }

    def server_stats(self) -> Optional[dict]:
        """The server's own counters (hits across *all* clients), or ``None``
        when the server is unreachable."""
        if not self._remote_allowed():
            return None
        try:
            response, _ = self._request({"op": "stats"})
            return response.get("stats")
        except _REMOTE_ERRORS:
            return None
        except RuntimeError:
            return None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's connections; the owner also stops an owned
        embedded server.  Workers that inherited the backend through fork
        must never tear the server down."""
        self._closed = True
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()
        if self._server_handle is not None and os.getpid() == self._owner_pid:
            self._server_handle.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "degraded" if self._broken else "live"
        return (
            f"RemoteCacheBackend({self.host}:{self.port}, {state}, "
            f"max_entries={self.max_entries}, {self.stats().summary()})"
        )
