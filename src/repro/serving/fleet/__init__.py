"""The serving fleet: one router/gateway in front of N query servers.

``python -m repro.serving.fleet --shard host:port --shard host:port`` starts
a lightweight asyncio router speaking the ordinary JSON-line serving
protocol (:mod:`repro.serving.protocol`), so every existing client —
:class:`~repro.serving.client.ServingClient`, the demos, the benchmarks —
talks to a fleet exactly as it talks to a single server.

Routing rules (see :class:`~repro.serving.fleet.router.FleetRouter`):

* ``query`` / ``budget`` — forwarded to the analyst's **home shard**, chosen
  on a :class:`~repro.db.cache.ring.HashRing` over the shard list.  One
  analyst always lands on one server, so the per-analyst ``BudgetLedger``
  admit/refuse decision stays exactly as atomic (and exactly as durable,
  one sqlite journal per shard) as in the single-server deployment.
* ``register`` — broadcast to every shard: each serving process must hold
  the database to answer for its analysts.
* ``stats`` / ``telemetry`` / ``health`` — fan out and aggregate; the
  telemetry op sums fleet-wide counters and labels each shard's snapshot.
* ``shutdown`` — broadcast, then the router itself stops.

An unreachable shard answers with the structured ``shard_unavailable``
error code; clients that predate the code read it as ``internal`` (the
``from_payload`` downgrade rule), so old clients keep working.
"""

from repro.serving.fleet.router import FleetRouter, FleetThread, main

__all__ = ["FleetRouter", "FleetThread", "main"]
