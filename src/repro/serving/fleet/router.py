"""The asyncio fleet router (see the package docstring for the topology).

The router holds no engine, no ledger and no cache: it parses just enough of
each request to pick a shard, relays the bytes, and relays the answer back —
the deliberate thinness that makes it safe to put in front of everything.
Per-shard connections are pooled; like the cache client's pool, a failure on
a *pooled* socket is ambiguous (the shard may merely have restarted since
the socket was pooled), so it costs one free retry on a fresh connection
before the shard is declared unavailable.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
import threading
import time
from typing import Optional, Sequence

from repro.db.cache.remote import parse_cache_url
from repro.db.cache.ring import HashRing
from repro.obs.metrics import active_registry, render_prometheus, unified_snapshot
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ServingError,
    decode_line,
    encode_message,
    error_response,
    ok_response,
)

__all__ = ["FleetRouter", "FleetThread", "main"]

#: Errors that mean "this shard connection is gone" — eligible for the
#: pooled-socket free retry, then for ``shard_unavailable``.
_LINK_ERRORS = (ConnectionError, OSError, EOFError, asyncio.TimeoutError)


class _Link:
    """One pooled shard connection."""

    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    def close(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass


class FleetRouter:
    """Route serving-protocol requests across N ``QueryServer`` shards."""

    def __init__(
        self,
        shards: Sequence[str],
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = 64,
        connect_timeout: float = 10.0,
        op_timeout: float = 120.0,
        max_pool: int = 4,
        drain_timeout: float = 10.0,
    ):
        labels = []
        for shard in shards:
            for part in str(shard).split(","):
                part = part.strip()
                if not part:
                    continue
                shard_host, shard_port = parse_cache_url(part)  # same host:port grammar
                labels.append(f"{shard_host}:{shard_port}")
        if not labels:
            raise ValueError("fleet router needs at least one --shard host:port")
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate shards: {labels!r}")
        self.shards = tuple(labels)
        self.ring = HashRing(self.shards, vnodes=vnodes)
        self.host = host
        self.port = port  # 0 = ephemeral; replaced with the bound port on start
        self.connect_timeout = float(connect_timeout)
        self.op_timeout = float(op_timeout)
        self.max_pool = max(1, int(max_pool))
        self.drain_timeout = float(drain_timeout)
        self._pools: dict[str, list[_Link]] = {label: [] for label in self.shards}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._started_at = time.monotonic()
        self.requests_routed = 0
        self.forward_failures = 0
        self.routed_per_shard = {label: 0 for label in self.shards}

    # ------------------------------------------------------------------
    # lifecycle (mirrors QueryServer)
    # ------------------------------------------------------------------
    async def start(self) -> "FleetRouter":
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                installed.append(signum)
            except (ValueError, NotImplementedError, RuntimeError):
                pass
        try:
            await self._shutdown.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.aclose()

    async def aclose(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers - self._busy):
            writer.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while self._busy and loop.time() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        for pool in self._pools.values():
            while pool:
                pool.pop().close()

    # ------------------------------------------------------------------
    # shard links
    # ------------------------------------------------------------------
    async def _checkout(self, shard: str) -> tuple[_Link, bool]:
        pool = self._pools[shard]
        if pool:
            return pool.pop(), True
        shard_host, shard_port = parse_cache_url(shard)
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(shard_host, shard_port), self.connect_timeout
        )
        return _Link(reader, writer), False

    def _checkin(self, shard: str, link: _Link) -> None:
        pool = self._pools[shard]
        if len(pool) < self.max_pool and not self._draining:
            pool.append(link)
        else:
            link.close()

    async def _forward(self, shard: str, message: dict) -> dict:
        """One round trip to a shard; the raw response object comes back.

        A failure on a pooled link gets one free retry on a fresh
        connection (the shard may have restarted since the link was
        pooled); a fresh connection failing means the shard is down —
        ``shard_unavailable``.
        """
        line = encode_message(message)
        last_error: Optional[Exception] = None
        for _ in range(2):
            try:
                link, pooled = await self._checkout(shard)
            except _LINK_ERRORS as error:
                last_error = error
                break
            try:
                link.writer.write(line)
                await link.writer.drain()
                raw = await asyncio.wait_for(link.reader.readline(), self.op_timeout)
                if not raw:
                    raise ConnectionError("shard closed the connection")
                response = decode_line(raw)
            except (_LINK_ERRORS + (ServingError,)) as error:
                link.close()
                last_error = error
                if pooled:
                    continue
                break
            self._checkin(shard, link)
            self.routed_per_shard[shard] += 1
            return response
        self.forward_failures += 1
        active_registry().counter("fleet_forward_failures_total").inc()
        raise ServingError(
            "shard_unavailable",
            f"shard {shard} is unreachable: {last_error}",
            shard=shard,
        )

    async def _broadcast(self, message: dict) -> dict:
        """Send one message to every shard; per-shard responses (exceptions
        mapped to their error payloads) keyed by shard label."""
        results = await asyncio.gather(
            *(self._forward(shard, message) for shard in self.shards),
            return_exceptions=True,
        )
        responses = {}
        for shard, result in zip(self.shards, results):
            if isinstance(result, ServingError):
                responses[shard] = error_response(result)
            elif isinstance(result, BaseException):
                raise result
            else:
                responses[shard] = result
        return responses

    # ------------------------------------------------------------------
    # connection handling (mirrors QueryServer._handle)
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except ValueError:
                    too_long = ServingError("bad_request", "request line too long")
                    try:
                        writer.write(encode_message(error_response(too_long)))
                        await writer.drain()
                    except ConnectionError:
                        pass
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._busy.add(writer)
                try:
                    response, stop_after = await self._respond(line)
                    try:
                        writer.write(encode_message(response))
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._busy.discard(writer)
                if stop_after:
                    self.request_shutdown()
                    break
                if self._draining:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _respond(self, line: bytes) -> tuple[dict, bool]:
        request_id = None
        try:
            message = decode_line(line)
            request_id = message.get("id")
            response, stop_after = await self._dispatch(message, request_id)
            self.requests_routed += 1
            return response, stop_after
        except ServingError as error:
            return error_response(error, request_id), False
        except Exception as error:  # never leak a traceback onto the wire
            internal = ServingError("internal", f"{type(error).__name__}: {error}")
            return error_response(internal, request_id), False

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def home_shard(self, analyst: str) -> str:
        """The analyst's home shard: every request of one analyst lands on
        one server, so that server's ledger is the one source of truth for
        the analyst's budget — admit/refuse needs no cross-shard protocol."""
        return self.ring.node(f"analyst:{analyst}")

    async def _dispatch(self, message: dict, request_id) -> tuple[dict, bool]:
        op = message.get("op")
        if op == "query" or (op == "budget" and message.get("analyst")):
            analyst = str(message.get("analyst") or "anonymous")
            # Relay the shard's response object verbatim (it already carries
            # ok/result-or-error and echoes the id we forwarded), so budget
            # refusals, overload hints etc. reach the client untouched.
            return await self._forward(self.home_shard(analyst), message), False
        if op == "budget":
            # No analyst named: a global summary only exists as the union of
            # every shard's ledger, so return it per shard.
            responses = await self._broadcast({"op": "budget"})
            shards = {
                shard: (response.get("result") if response.get("ok") else None)
                for shard, response in responses.items()
            }
            return ok_response({"shards": shards}, request_id), False
        if op == "ping":
            return await self._op_ping(message, request_id), False
        if op == "register":
            return await self._op_register(message, request_id), False
        if op == "stats":
            return await self._op_stats(message, request_id), False
        if op == "telemetry":
            return await self._op_telemetry(message, request_id), False
        if op == "health":
            return await self._op_health(message, request_id), False
        if op == "shutdown":
            await self._broadcast({"op": "shutdown"})
            return ok_response(
                {"stopping": True, "shards": len(self.shards)}, request_id
            ), True
        raise ServingError(
            "unknown_op",
            f"unknown op {op!r}; available: "
            "ping, register, query, budget, stats, telemetry, health, shutdown",
        )

    async def _op_ping(self, message: dict, request_id) -> dict:
        response = await self._forward(self.shards[0], {"op": "ping"})
        result = dict(response.get("result") or {})
        result["fleet"] = {
            "router": True,
            "shards": list(self.shards),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }
        return ok_response(result, request_id)

    async def _op_register(self, message: dict, request_id) -> dict:
        """Broadcast a registration: every shard must hold the database.

        Registration is idempotent per (name, spec) — re-registering the
        same spec is a no-op on a shard that already has it — so a partial
        failure is safe to retry: the shards that succeeded simply confirm.
        """
        forwarded = {key: value for key, value in message.items() if key != "id"}
        responses = await self._broadcast(forwarded)
        failed = {
            shard: response.get("error")
            for shard, response in responses.items()
            if not response.get("ok")
        }
        if failed:
            # Relay the first real failure (e.g. already_registered with a
            # conflicting spec) so the client sees the shard's own code; a
            # transport-level failure surfaces as shard_unavailable.
            first = next(iter(failed.values())) or {}
            raise ServingError.from_payload({**first, "failed_shards": sorted(failed)})
        first_ok = next(iter(responses.values()))
        result = dict(first_ok.get("result") or {})
        result["registered_on"] = sorted(responses)
        return ok_response(result, request_id)

    async def _op_stats(self, message: dict, request_id) -> dict:
        responses = await self._broadcast({"op": "stats"})
        shards = {
            shard: (response.get("result") if response.get("ok") else None)
            for shard, response in responses.items()
        }
        served = sum(
            (result or {}).get("requests_served", 0) for result in shards.values()
        )
        return ok_response(
            {
                "router": self.router_stats(),
                "requests_served": served,
                "shards": shards,
            },
            request_id,
        )

    async def _op_telemetry(self, message: dict, request_id) -> dict:
        """The fleet-wide ``telemetry`` op: counters summed across shards,
        one labelled subsystem entry per shard, full per-shard snapshots on
        the side.  Gauges are *not* summed (most are levels or ratios);
        in-flight/queued depth — the two meaningfully additive ones — are.
        """
        responses = await self._broadcast({"op": "telemetry"})
        counters: dict = {}
        gauges = {"shards_reachable": 0, "in_flight": 0, "queued": 0}
        subsystems = []
        per_shard = {}
        for shard, response in responses.items():
            if not response.get("ok"):
                per_shard[shard] = None
                subsystems.append({"shard": shard, "reachable": False})
                continue
            snapshot = (response.get("result") or {}).get("telemetry") or {}
            per_shard[shard] = snapshot
            gauges["shards_reachable"] += 1
            for key, amount in (snapshot.get("counters") or {}).items():
                if isinstance(amount, (int, float)) and not isinstance(amount, bool):
                    counters[key] = counters.get(key, 0) + amount
            shard_gauges = snapshot.get("gauges") or {}
            for key in ("in_flight", "queued"):
                amount = shard_gauges.get(key, 0)
                if isinstance(amount, (int, float)) and not isinstance(amount, bool):
                    gauges[key] += amount
            subsystems.append(
                {"shard": shard, "reachable": True, **(snapshot.get("subsystem") or {})}
            )
        counters.update(
            {f"fleet_{key}": value for key, value in self.router_stats()["counters"].items()}
        )
        aggregated = unified_snapshot(
            counters=counters,
            gauges=gauges,
            histograms={},
            subsystem={
                "name": "fleet",
                "protocol": PROTOCOL_VERSION,
                "router": f"{self.host}:{self.port}",
                "shards": subsystems,
            },
        )
        return ok_response(
            {
                "telemetry": aggregated,
                "prometheus": render_prometheus(aggregated, prefix="repro_fleet"),
                "shards": per_shard,
            },
            request_id,
        )

    async def _op_health(self, message: dict, request_id) -> dict:
        responses = await self._broadcast({"op": "health"})
        shards = {}
        for shard, response in responses.items():
            if response.get("ok"):
                shards[shard] = response.get("result")
            else:
                shards[shard] = {"status": "unreachable", "error": response.get("error")}
        statuses = [(result or {}).get("status") for result in shards.values()]
        status = "ok" if all(item == "ok" for item in statuses) else "degraded"
        return ok_response(
            {
                "status": status,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "router": self.router_stats(),
                "shards": shards,
            },
            request_id,
        )

    def router_stats(self) -> dict:
        return {
            "shards": list(self.shards),
            "counters": {
                "requests_routed": self.requests_routed,
                "forward_failures": self.forward_failures,
            },
            "routed_per_shard": dict(self.routed_per_shard),
        }


class FleetThread:
    """Host a :class:`FleetRouter` on a background event-loop thread —
    the embedded form for tests and benchmarks, mirroring ``ServerThread``
    (including its loud ``stop``: a hung drain raises, never leaks)."""

    def __init__(self, router: FleetRouter):
        self.router = router
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    def start(self) -> "FleetThread":
        self._thread = threading.Thread(target=self._run, name="fleet-loop", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("fleet event loop failed to start within 30s")
        if self._error is not None:
            raise self._error
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.router.start())
        except BaseException as error:
            self._error = error
            self._started.set()
            self._loop.close()
            return
        self._started.set()
        try:
            self._loop.run_until_complete(self.router.serve_until_shutdown())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        self._loop.call_soon_threadsafe(self.router.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(
                f"fleet event loop did not stop within {timeout}s "
                "(a relay or drain is hung); the thread is still alive"
            )

    def __enter__(self) -> "FleetThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()


# ----------------------------------------------------------------------
# command line
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Route DP serving traffic across query-server shards.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8640, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="a query-server shard (repeat per shard; comma lists accepted)",
    )
    parser.add_argument(
        "--vnodes", type=int, default=64, help="virtual nodes per shard on the hash ring"
    )
    parser.add_argument(
        "--op-timeout",
        type=float,
        default=120.0,
        help="per-request deadline for a shard round trip (seconds)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    router = FleetRouter(
        shards=args.shard,
        host=args.host,
        port=args.port,
        vnodes=args.vnodes,
        op_timeout=args.op_timeout,
    )
    await router.start()
    print(
        f"fleet router on {router.host}:{router.port} "
        f"fronting {len(router.shards)} shard(s): {', '.join(router.shards)}",
        flush=True,
    )
    await router.serve_until_shutdown()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
