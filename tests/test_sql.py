"""Tests for the SQL parser against the paper's appendix queries."""

import pytest

from repro.datagen.ssb import ssb_schema
from repro.db.executor import QueryExecutor
from repro.db.predicates import PointPredicate, RangePredicate, SetPredicate
from repro.db.query import AggregateKind
from repro.db.sql import parse_star_join_sql
from repro.exceptions import QueryError
from repro.workloads.ssb_queries import ssb_query

QC2_SQL = """
SELECT count(*)
FROM Date, Lineorder, Part, Supplier
WHERE Lineorder.SK = Supplier.SK
  AND Lineorder.PK = Part.PK
  AND Lineorder.DK = Date.DK
  AND Part.category = 'MFGR#12'
  AND Supplier.region = 'AMERICA';
"""

QC3_SQL = """
SELECT count(*)
FROM Date, Lineorder, Customer, Supplier
WHERE Lineorder.SK = Supplier.SK
  AND Lineorder.CK = Customer.CK
  AND Lineorder.DK = Date.DK
  AND Customer.region = 'ASIA'
  AND Supplier.region = 'ASIA'
  AND Date.year between 1992 and 1997;
"""

QS2_SQL = """
SELECT sum(Lineorder.revenue)
FROM Date, Lineorder, Part, Supplier
WHERE Lineorder.SK = Supplier.SK
  AND Part.category = 'MFGR#12'
  AND Supplier.region = 'AMERICA';
"""

QG4_SQL = """
SELECT sum(Lineorder.revenue - Lineorder.supplycost), Date.year, Part.category
FROM Date, Lineorder, Customer, Part, Supplier
WHERE Customer.region = 'AMERICA'
  AND Supplier.nation = 'UNITED STATES'
  AND Date.year between 1997 and 1998
  AND Part.mfgr = 'MFGR#1' OR Part.mfgr = 'MFGR#2'
GROUP BY Date.year, Part.category
ORDER BY Date.year, Part.category;
"""


@pytest.fixture(scope="module")
def schema():
    return ssb_schema()


class TestParsing:
    def test_count_query_predicates(self, schema):
        query = parse_star_join_sql(QC2_SQL, schema, name="Qc2")
        assert query.kind is AggregateKind.COUNT
        assert query.num_predicates == 2
        kinds = {type(p) for p in query.predicates}
        assert kinds == {PointPredicate}
        assert {p.table for p in query.predicates} == {"Part", "Supplier"}

    def test_join_conditions_are_dropped(self, schema):
        query = parse_star_join_sql(QC3_SQL, schema)
        assert query.num_predicates == 3

    def test_between_becomes_range(self, schema):
        query = parse_star_join_sql(QC3_SQL, schema)
        ranges = [p for p in query.predicates if isinstance(p, RangePredicate)]
        assert len(ranges) == 1
        assert ranges[0].low == 1992
        assert ranges[0].high == 1997

    def test_sum_measure(self, schema):
        query = parse_star_join_sql(QS2_SQL, schema)
        assert query.kind is AggregateKind.SUM
        assert query.aggregate.measure.column == "revenue"

    def test_group_by_and_or_and_measure_difference(self, schema):
        query = parse_star_join_sql(QG4_SQL, schema, name="Qg4")
        assert query.is_grouped
        assert [key for key in query.group_by] == [("Date", "year"), ("Part", "category")]
        assert query.aggregate.measure.subtract == "supplycost"
        sets = [p for p in query.predicates if isinstance(p, SetPredicate)]
        assert len(sets) == 1
        assert set(sets[0].values) == {"MFGR#1", "MFGR#2"}

    def test_less_than_becomes_prefix_range(self, schema):
        sql = "SELECT count(*) FROM Date, Lineorder WHERE Date.year < 1995"
        query = parse_star_join_sql(sql, schema)
        predicate = query.predicates.predicates[0]
        assert isinstance(predicate, RangePredicate)
        assert predicate.low == 1992
        assert predicate.high == 1994

    def test_greater_equal_becomes_suffix_range(self, schema):
        sql = "SELECT count(*) FROM Date, Lineorder WHERE Date.year >= 1996"
        query = parse_star_join_sql(sql, schema)
        predicate = query.predicates.predicates[0]
        assert predicate.low == 1996
        assert predicate.high == 1998

    def test_case_insensitive_table_and_value(self, schema):
        sql = "select count(*) from lineorder, customer where customer.region = 'asia'"
        query = parse_star_join_sql(sql, schema)
        predicate = query.predicates.predicates[0]
        assert predicate.value == "ASIA"

    def test_unknown_table_raises(self, schema):
        with pytest.raises(QueryError):
            parse_star_join_sql("SELECT count(*) FROM Ghost WHERE Ghost.x = 1", schema)

    def test_unknown_value_raises(self, schema):
        with pytest.raises(QueryError):
            parse_star_join_sql(
                "SELECT count(*) FROM Customer, Lineorder WHERE Customer.region = 'MARS'",
                schema,
            )

    def test_malformed_sql_raises(self, schema):
        with pytest.raises(QueryError):
            parse_star_join_sql("UPDATE Customer SET region = 'ASIA'", schema)

    def test_missing_aggregate_raises(self, schema):
        with pytest.raises(QueryError):
            parse_star_join_sql("SELECT region FROM Customer", schema)


class TestParsedQueriesMatchHandBuiltOnes:
    def test_qc2_answer_matches(self, schema, ssb_small):
        executor = QueryExecutor(ssb_small)
        parsed = parse_star_join_sql(QC2_SQL, schema, name="Qc2")
        assert executor.execute(parsed) == executor.execute(ssb_query("Qc2", schema))

    def test_qc3_answer_matches(self, schema, ssb_small):
        executor = QueryExecutor(ssb_small)
        parsed = parse_star_join_sql(QC3_SQL, schema, name="Qc3")
        assert executor.execute(parsed) == executor.execute(ssb_query("Qc3", schema))

    def test_qg4_answer_matches(self, schema, ssb_small):
        executor = QueryExecutor(ssb_small)
        parsed = parse_star_join_sql(QG4_SQL, schema, name="Qg4")
        expected = executor.execute(ssb_query("Qg4", schema))
        actual = executor.execute(parsed)
        assert actual.groups == pytest.approx(expected.groups)


class TestUnsupportedConstructsRejected:
    """The parser refuses, loudly, what its grammar cannot represent.

    The query server feeds it untrusted analyst input, so every construct
    outside the star-join grammar must raise a clear QueryError instead of
    silently mis-parsing into a plausible-but-wrong query.
    """

    def _reject(self, schema, sql, fragment):
        with pytest.raises(QueryError, match=fragment):
            parse_star_join_sql(sql, schema)

    def test_having_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder, Date "
            "GROUP BY Date.year HAVING count(*) > 10",
            "HAVING",
        )

    def test_subquery_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder, Date "
            "WHERE Date.year = (SELECT max(year) FROM Date)",
            "[Ss]ubquer",
        )

    def test_union_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder UNION SELECT count(*) FROM Lineorder",
            "not supported",
        )

    def test_explicit_join_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder JOIN Date ON Lineorder.orderdate = Date.datekey",
            "JOIN",
        )

    def test_in_list_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder, Customer WHERE Customer.region IN ('ASIA')",
            "IN lists",
        )

    def test_multiple_statements_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder; SELECT count(*) FROM Lineorder",
            "[Mm]ultiple SQL statements",
        )

    def test_unbalanced_quote_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder, Customer WHERE Customer.region = 'ASIA",
            "unbalanced",
        )

    def test_literal_with_tab_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder, Supplier "
            "WHERE Supplier.nation = 'UNITED\tSTATES'",
            "single spaces",
        )

    def test_literal_with_double_space_rejected(self, schema):
        self._reject(
            schema,
            "SELECT count(*) FROM Lineorder, Supplier "
            "WHERE Supplier.nation = 'UNITED  STATES'",
            "single spaces",
        )

    def test_single_space_literal_still_parses(self, schema):
        query = parse_star_join_sql(
            "SELECT count(*) FROM Lineorder, Supplier "
            "WHERE Supplier.nation = 'UNITED STATES'",
            schema,
        )
        assert query.predicates.predicates[0].value == "UNITED STATES"

    def test_single_space_literal_in_between_parses(self, schema):
        query = parse_star_join_sql(
            "SELECT count(*) FROM Lineorder, Supplier "
            "WHERE Supplier.nation BETWEEN 'UNITED STATES' AND 'UNITED KINGDOM'",
            schema,
        )
        predicate = query.predicates.predicates[0]
        assert (predicate.low, predicate.high) == ("UNITED STATES", "UNITED KINGDOM")

    def test_keywords_inside_literals_are_not_rejected(self, schema):
        # A quoted value that *contains* a forbidden keyword is data, not SQL.
        with pytest.raises(QueryError, match="not in domain"):
            parse_star_join_sql(
                "SELECT count(*) FROM Lineorder, Customer "
                "WHERE Customer.region = 'HAVING'",
                schema,
            )

    def test_count_distinct_rejected(self, schema):
        # Regression: COUNT(DISTINCT x) used to silently parse as COUNT(*).
        self._reject(
            schema,
            "SELECT count(DISTINCT Customer.nation) FROM Lineorder, Customer",
            "DISTINCT",
        )
