"""Benchmark: regenerate Figure 4 (error and time vs data scale, COUNT queries).

Expected shape (paper Figure 4): PM's error barely changes across scale
factors, while LS's error grows with the data size; running times grow with
the scale for every mechanism, with PM's remaining the smallest.
"""

import numpy as np

from _bench_utils import errors_of, times_of
from repro.evaluation.experiments import figure4


def test_figure4(benchmark, full_config, record_result):
    result = benchmark.pedantic(
        lambda: figure4.run(full_config, scales=(0.25, 0.5, 1.0)), rounds=1, iterations=1
    )
    record_result(result, "figure4")

    scales = sorted({row["scale"] for row in result.rows})
    # PM error does not grow with the data size (the paper's claim); on the
    # scaled-down generator it in fact shrinks as per-region counts stabilise.
    for query in figure4.QUERIES:
        pm_errors = [
            np.mean(errors_of(result, mechanism="PM", query=query, scale=scale))
            for scale in scales
        ]
        assert pm_errors[-1] <= pm_errors[0] + 10.0

    # LS error grows by an order of magnitude more than PM's across the sweep.
    ls_small = np.mean(errors_of(result, mechanism="LS", scale=scales[0]))
    ls_large = np.mean(errors_of(result, mechanism="LS", scale=scales[-1]))
    pm_large = np.mean(errors_of(result, mechanism="PM", scale=scales[-1]))
    assert ls_large > pm_large

    # PM is the cheapest mechanism at the largest scale.
    pm_time = np.mean(times_of(result, mechanism="PM", scale=scales[-1]))
    ls_time = np.mean(times_of(result, mechanism="LS", scale=scales[-1]))
    r2t_time = np.mean(times_of(result, mechanism="R2T", scale=scales[-1]))
    assert pm_time <= max(ls_time, r2t_time)
    assert ls_small >= 0.0
