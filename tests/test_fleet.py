"""Tests for the sharded serving fleet (see docs/SERVING.md, "Sharded fleet").

The contracts under test:

* the consistent-hash ring is deterministic across processes, spreads keys
  roughly evenly, and moves only ~1/n of the keyspace when a node joins;
* ``ShardedCacheBackend`` places each artefact on a stable shard, writes
  replicas when asked, fails reads over to a replica *only* when the
  primary's breaker is open, and aggregates stats/telemetry fleet-wide;
* the fleet router pins each analyst to one home shard (ledger atomicity),
  relays answers byte-identically, and aggregates stats/telemetry/health;
* router × shards × replicated cache serves the exact bytes of a single
  server and of the offline runner — including with one cache shard killed
  mid-run.
"""

import json

import pytest

from repro.db.cache import (
    RemoteCacheBackend,
    ShardedCacheBackend,
    backend_scope,
    make_backend,
    parse_shard_urls,
)
from repro.db.cache.ring import HashRing
from repro.db.cache.server import CacheServerThread
from repro.db.cache.wire import encode_key
from repro.db.executor import QueryExecutor
from repro.dp.accountant import PrivacyBudget
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.serving import (
    BudgetLedger,
    FleetRouter,
    FleetThread,
    QueryPlanner,
    QueryServer,
    ServerThread,
    ServingClient,
    ServingError,
    request_stream,
    serialize_answer,
)

SEED = 515151
DEMO_SPEC = dict(scale_factor=1.0, rows_per_scale_factor=2000, seed=5)


def _fresh_planner():
    planner = QueryPlanner(seed=SEED)
    planner.register("demo", "ssb", **DEMO_SPEC)
    return planner


# ----------------------------------------------------------------------
# the hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    NODES = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"]

    def test_placement_is_deterministic(self):
        a = HashRing(self.NODES)
        b = HashRing(list(self.NODES))  # a fresh, identically configured ring
        keys = [f"key-{i}" for i in range(200)]
        assert [a.node(k) for k in keys] == [b.node(k) for k in keys]

    def test_placement_ignores_node_declaration_order(self):
        # Every participant that knows the shard *set* must agree on
        # placement, whatever order its --shard flags arrived in.
        a = HashRing(self.NODES)
        b = HashRing(list(reversed(self.NODES)))
        keys = [f"key-{i}" for i in range(200)]
        assert [a.node(k) for k in keys] == [b.node(k) for k in keys]

    def test_spread_is_roughly_even(self):
        ring = HashRing(self.NODES, vnodes=64)
        counts = ring.spread([f"key-{i}" for i in range(3000)])
        assert sum(counts.values()) == 3000
        for node in self.NODES:
            assert 3000 * 0.15 <= counts[node] <= 3000 * 0.55

    def test_adding_a_node_moves_a_minority_of_keys(self):
        keys = [f"key-{i}" for i in range(2000)]
        before = HashRing(self.NODES)
        after = HashRing(self.NODES + ["127.0.0.1:9004"])
        moved = sum(1 for k in keys if before.node(k) != after.node(k))
        # The textbook guarantee: ~1/n of the keyspace, never a reshuffle.
        assert 0 < moved < len(keys) * 0.45

    def test_preference_lists_distinct_nodes_primary_first(self):
        ring = HashRing(self.NODES)
        for i in range(50):
            order = ring.preference(f"key-{i}", 3)
            assert len(order) == 3
            assert len(set(order)) == 3
            assert order[0] == ring.node(f"key-{i}")

    def test_preference_count_is_clamped(self):
        ring = HashRing(self.NODES)
        assert len(ring.preference("k", 99)) == len(self.NODES)
        assert len(ring.preference("k", 0)) == 1

    def test_bytes_keys_hash_as_given(self):
        # encode_key() output must not be round-tripped through str() —
        # the ring hashes the canonical bytes directly.
        ring = HashRing(self.NODES)
        payload = encode_key("ns", "result", ("q", 1))
        assert ring.key_position(payload) != ring.key_position(str(payload))

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)


class TestParseShardUrls:
    def test_normalises_and_splits(self):
        assert parse_shard_urls("tcp://h:1, h2:9") == ["h:1", "h2:9"]

    def test_single_url_is_fine(self):
        assert parse_shard_urls("localhost:8642") == ["localhost:8642"]

    def test_duplicates_are_rejected(self):
        with pytest.raises(ValueError):
            parse_shard_urls("h:1,h:1")

    def test_empty_is_rejected(self):
        with pytest.raises(ValueError):
            parse_shard_urls(" , ")


# ----------------------------------------------------------------------
# the sharded cache backend
# ----------------------------------------------------------------------
@pytest.fixture()
def cache_servers():
    handles = [CacheServerThread(max_entries=256) for _ in range(2)]
    for handle in handles:
        handle.start()
    try:
        yield handles
    finally:
        for handle in handles:
            handle.stop()


def _sharded(handles, **kwargs):
    urls = [f"127.0.0.1:{handle.server.port}" for handle in handles]
    kwargs.setdefault("op_timeout", 2.0)
    kwargs.setdefault("retry_attempts", 1)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("backoff_max", 0.02)
    return ShardedCacheBackend(urls=urls, **kwargs)


class TestShardedCacheBackend:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError):
            ShardedCacheBackend()
        with pytest.raises(ValueError):
            ShardedCacheBackend(urls=["h:1"], shards=[])

    def test_round_trip_and_stable_placement(self, cache_servers):
        backend = _sharded(cache_servers)
        try:
            for i in range(32):
                backend.put("ns", "result", ("q", i), {"value": i})
            for i in range(32):
                assert backend.get("ns", "result", ("q", i)) == {"value": i}
            # Placement is a pure function of the address: a second,
            # independently constructed backend reads the same shards.
            twin = _sharded(cache_servers)
            try:
                for i in range(32):
                    assert twin.get("ns", "result", ("q", i)) == {"value": i}
            finally:
                twin.close()
        finally:
            backend.close()

    def test_keys_spread_across_shards(self, cache_servers):
        backend = _sharded(cache_servers)
        try:
            for i in range(64):
                backend.put("ns", "result", ("q", i), i)
            held = [shard.server_stats() for shard in backend.shards]
            # Both shards ended up holding something (64 keys, 2 shards —
            # an empty shard would mean the ring is degenerate).
            per_shard = [stats["entries"] for stats in held]
            assert all(count > 0 for count in per_shard)
            assert sum(per_shard) == 64
        finally:
            backend.close()

    def test_replicated_put_lands_on_both_shards(self, cache_servers):
        backend = _sharded(cache_servers, replicas=2)
        try:
            for i in range(8):
                backend.put("ns", "result", ("q", i), i)
            for stats in (shard.server_stats() for shard in backend.shards):
                assert stats["entries"] == 8
            # entry_count is a capacity gauge over real storage: each copy
            # counts once per holding tier (2 shards × (L1 + server) × 8).
            assert backend.entry_count() == 32
        finally:
            backend.close()

    def test_replicate_namespaces_restricts_copies(self, cache_servers):
        backend = _sharded(cache_servers, replicas=2, replicate_namespaces={"hot"})
        try:
            assert backend._copies("hot") == 2
            assert backend._copies("cold") == 1
        finally:
            backend.close()

    def test_healthy_primary_miss_does_not_failover(self, cache_servers):
        backend = _sharded(cache_servers, replicas=2)
        try:
            assert backend.get("ns", "result", ("absent", 1)) is None
            assert backend.failover_hits == 0
        finally:
            backend.close()

    def test_read_fails_over_when_primary_breaker_opens(self, cache_servers):
        backend = _sharded(
            cache_servers,
            replicas=2,
            breaker_threshold=1,
            breaker_reset_timeout=60.0,
        )
        try:
            backend.put("ns", "result", ("q", 0), {"value": 0})
            placement = backend._placement("ns", "result", ("q", 0))
            primary = backend._by_label[placement[0]]
            replica = backend._by_label[placement[1]]
            # Kill the primary shard's server and open its breaker.
            victim = next(
                handle
                for handle in cache_servers
                if handle.server.port == primary.port
            )
            victim.stop()
            primary._local.clear()  # drop the L1 copy: force the remote path
            replica._local.clear()
            # The first read already recovers in-line: the failed primary
            # request trips the breaker (threshold=1), the ladder sees the
            # primary degraded and consults the replica within the same get.
            assert backend.get("ns", "result", ("q", 0)) == {"value": 0}
            assert primary.degraded is True
            assert backend.failover_hits == 1
            assert backend.degraded is False  # one healthy shard remains
            breaker = backend.breaker_stats()
            assert breaker["state"] == "degraded"
            assert breaker["open_shards"] == [placement[0]]
            assert breaker["failover_hits"] == 1
        finally:
            backend.close()

    def test_stats_and_telemetry_aggregate(self, cache_servers):
        backend = _sharded(cache_servers)
        try:
            backend.put("ns", "result", ("q", 0), 1)
            backend.get("ns", "result", ("q", 0))
            backend.get("ns", "result", ("missing", 0))
            stats = backend.stats()
            assert stats.hits >= 1 and stats.misses >= 1
            snapshot = backend.telemetry_snapshot()
            assert snapshot["subsystem"]["backend"] == "sharded"
            assert snapshot["gauges"]["shards"] == 2
            labels = {sub["shard"] for sub in snapshot["subsystem"]["shards"]}
            assert labels == set(backend.labels)
            assert snapshot["counters"]["failover_hits"] == 0
            assert snapshot["counters"]["bytes_sent"] > 0
        finally:
            backend.close()

    def test_clear_fans_out(self, cache_servers):
        backend = _sharded(cache_servers)
        try:
            for i in range(8):
                backend.put("ns", "result", ("q", i), i)
            backend.clear()
            for stats in (shard.server_stats() for shard in backend.shards):
                assert stats["entries"] == 0
        finally:
            backend.close()


class TestMakeBackendSharding:
    def test_comma_list_builds_sharded_backend(self, cache_servers):
        urls = ",".join(f"127.0.0.1:{h.server.port}" for h in cache_servers)
        backend = make_backend("remote", url=urls, replicas=2)
        try:
            assert isinstance(backend, ShardedCacheBackend)
            assert backend.replicas == 2
            assert len(backend.shards) == 2
        finally:
            backend.close()

    def test_single_url_stays_unsharded(self, cache_servers):
        backend = make_backend(
            "remote", url=f"127.0.0.1:{cache_servers[0].server.port}"
        )
        try:
            assert isinstance(backend, RemoteCacheBackend)
        finally:
            backend.close()

    def test_sharding_refuses_embedded_path(self, cache_servers, tmp_path):
        urls = ",".join(f"127.0.0.1:{h.server.port}" for h in cache_servers)
        with pytest.raises(ValueError):
            make_backend("remote", url=urls, path=str(tmp_path / "cache.db"))


# ----------------------------------------------------------------------
# the fleet router
# ----------------------------------------------------------------------
@pytest.fixture()
def fleet():
    """Two serving shards behind one router, each with its own ledger."""
    servers = [
        QueryServer(_fresh_planner(), BudgetLedger(PrivacyBudget(1.0)), workers=2)
        for _ in range(2)
    ]
    threads = [ServerThread(server) for server in servers]
    for thread in threads:
        thread.start()
    router = FleetRouter([f"127.0.0.1:{server.port}" for server in servers])
    fleet_thread = FleetThread(router)
    fleet_thread.start()
    try:
        yield router, servers
    finally:
        fleet_thread.stop()
        for thread in threads:
            thread.stop()


class TestFleetRouting:
    def test_ping_reports_fleet(self, fleet):
        router, _ = fleet
        with ServingClient(port=router.port) as client:
            info = client.ping()
        assert info["protocol"] == 1
        assert info["fleet"]["router"] is True
        assert set(info["fleet"]["shards"]) == set(router.shards)

    def test_analyst_is_pinned_to_home_shard(self, fleet):
        router, servers = fleet
        by_label = {
            f"127.0.0.1:{server.port}": server for server in servers
        }
        analysts = [f"analyst-{i}" for i in range(8)]
        with ServingClient(port=router.port) as client:
            for analyst in analysts:
                client.query("demo", "PM", 0.1, query="Qc1", analyst=analyst)
        for analyst in analysts:
            home = by_label[router.home_shard(analyst)]
            # The analyst's budget lives on exactly its home shard's ledger.
            assert home.ledger.summary(analyst)["spent_epsilon"] == pytest.approx(0.1)
            for server in by_label.values():
                if server is not home:
                    assert analyst not in set(server.ledger.analysts())

    def test_budget_with_analyst_routes_home(self, fleet):
        router, _ = fleet
        with ServingClient(port=router.port) as client:
            client.query("demo", "PM", 0.25, query="Qc1", analyst="alice")
            budget = client.budget("alice")
        assert budget["spent_epsilon"] == pytest.approx(0.25)

    def test_budget_refusal_is_atomic_across_the_fleet(self, fleet):
        router, _ = fleet
        with ServingClient(port=router.port) as client:
            client.query("demo", "PM", 0.6, query="Qc1", analyst="carol")
            with pytest.raises(ServingError) as info:
                client.query("demo", "PM", 0.6, query="Qc1", analyst="carol")
            assert info.value.code == "budget_exhausted"
            assert client.budget("carol")["spent_epsilon"] == pytest.approx(0.6)

    def test_global_budget_broadcasts(self, fleet):
        router, _ = fleet
        with ServingClient(port=router.port) as client:
            client.query("demo", "PM", 0.2, query="Qc1", analyst="alice")
            summary = client.budget()
        assert set(summary["shards"]) == set(router.shards)

    def test_register_broadcasts_to_every_shard(self, fleet):
        router, servers = fleet
        with ServingClient(port=router.port) as client:
            info = client.register("demo", "ssb", **DEMO_SPEC)
            assert info["already_registered"] is True
            assert set(info["registered_on"]) == set(router.shards)
            client.register(
                "g9", "kstar", generator="powerlaw", num_nodes=50, num_edges=100, seed=2
            )
        for server in servers:
            names = {entry["name"] for entry in server.planner.databases()}
            assert "g9" in names

    def test_stats_and_telemetry_aggregate(self, fleet):
        router, _ = fleet
        with ServingClient(port=router.port) as client:
            client.query("demo", "PM", 0.1, query="Qc1", analyst="alice")
            client.query("demo", "PM", 0.1, query="Qc1", analyst="bob")
            stats = client.stats()
            telemetry = client.telemetry()
            health = client.health()
        assert set(stats["shards"]) == set(router.shards)
        assert stats["requests_served"] >= 2
        assert stats["router"]["counters"]["requests_routed"] >= 2
        assert sum(stats["router"]["routed_per_shard"].values()) >= 2
        snapshot = telemetry["telemetry"]
        assert snapshot["subsystem"]["name"] == "fleet"
        assert snapshot["gauges"]["shards_reachable"] == 2
        shard_labels = {sub["shard"] for sub in snapshot["subsystem"]["shards"]}
        assert shard_labels == set(router.shards)
        assert health["status"] == "ok"
        assert set(health["shards"]) == set(router.shards)

    def test_unknown_op_is_structured(self, fleet):
        router, _ = fleet
        with ServingClient(port=router.port) as client:
            with pytest.raises(ServingError) as info:
                client.request("wibble")
        assert info.value.code == "unknown_op"

    def test_dead_shard_is_a_structured_refusal(self, fleet):
        import time

        router, servers = fleet
        victim = servers[0]
        victim_label = f"127.0.0.1:{victim.port}"
        survivor_label = f"127.0.0.1:{servers[1].port}"
        unlucky = next(
            f"unlucky-{i}"
            for i in range(100)
            if router.home_shard(f"unlucky-{i}") == victim_label
        )
        lucky = next(
            f"lucky-{i}"
            for i in range(100)
            if router.home_shard(f"lucky-{i}") == survivor_label
        )
        # Kill the victim shard via its own shutdown op (the fixture's
        # stop() is a no-op on an already-stopped thread), then wait for
        # the port to actually close.
        with ServingClient(port=victim.port) as direct:
            direct.shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                with ServingClient(port=victim.port, timeout=0.2) as probe:
                    probe.ping()
            except OSError:
                break
            time.sleep(0.05)
        with ServingClient(port=router.port) as client:
            with pytest.raises(ServingError) as info:
                client.query("demo", "PM", 0.1, query="Qc1", analyst=unlucky)
            assert info.value.code == "shard_unavailable"
            assert info.value.details.get("shard") == victim_label
            # The healthy shard keeps serving its own analysts.
            result = client.query("demo", "PM", 0.1, query="Qc1", analyst=lucky)
            assert "answer" in result
            health = client.health()
            assert health["status"] == "degraded"
            assert health["shards"][victim_label]["status"] == "unreachable"


# ----------------------------------------------------------------------
# fleet parity: router × shards × jobs == single server == offline runner
# ----------------------------------------------------------------------
class TestFleetParity:
    REQUESTS = [
        ("PM", "Qc1", 0.5, 2),
        ("R2T", "Qs2", 0.5, 2),
        ("PM", "Qc3", 0.3, 3),
    ]

    def _offline_answers(self, planner, planned):
        entry = planned.entry
        mechanism = make_star_mechanism(
            planned.mechanism, planned.epsilon, scenario=entry.scenario
        )
        return evaluate_mechanism(
            mechanism,
            entry.database,
            planned.query,
            trials=planned.trials,
            rng=request_stream(
                planner.seed,
                entry.name,
                planned.mechanism,
                planned.query_label,
                planned.epsilon,
                planned.trials,
            ),
            exact_answer=QueryExecutor(entry.database).execute(planned.query),
            record_answers=True,
        )

    def test_fleet_matches_single_server_and_offline(self, fleet):
        router, _ = fleet
        # Reference 1: one standalone server, its own planner and ledger.
        single = QueryServer(_fresh_planner(), BudgetLedger(PrivacyBudget(10.0)))
        with ServerThread(single):
            with ServingClient(port=single.port) as direct, ServingClient(
                port=router.port
            ) as routed:
                for index, (mechanism, query, epsilon, trials) in enumerate(
                    self.REQUESTS
                ):
                    analyst = f"parity-{index}"
                    via_fleet = routed.query(
                        "demo", mechanism, epsilon,
                        query=query, trials=trials, analyst=analyst,
                    )
                    via_single = direct.query(
                        "demo", mechanism, epsilon,
                        query=query, trials=trials, analyst=analyst,
                    )
                    assert json.dumps(via_fleet["answers"]) == json.dumps(
                        via_single["answers"]
                    )
                    assert (
                        via_fleet["mean_relative_error"]
                        == via_single["mean_relative_error"]
                    )
                    # Reference 2: the offline runner path.
                    reference = _fresh_planner()
                    planned = reference.plan(
                        {
                            "database": "demo",
                            "mechanism": mechanism,
                            "epsilon": epsilon,
                            "query": query,
                            "trials": trials,
                        }
                    )
                    offline = self._offline_answers(reference, planned)
                    assert via_fleet["answers"] == [
                        serialize_answer(a) for a in offline.answers
                    ]

    def test_repeat_query_through_router_is_deterministic(self, fleet):
        router, _ = fleet
        with ServingClient(port=router.port) as client:
            first = client.query("demo", "PM", 0.1, query="Qc1", analyst="det")
            second = client.query("demo", "PM", 0.1, query="Qc1", analyst="det")
        assert json.dumps(first["answers"]) == json.dumps(second["answers"])


class TestFleetWithShardedCache:
    """The full topology: router × serving shards × sharded+replicated cache,
    with one cache shard killed mid-run — the bytes must not move."""

    REQUEST = {"mechanism": "PM", "epsilon": 0.5, "query": "Qc3", "trials": 2}

    def test_kill_a_cache_shard_mid_run_answers_identical(self, cache_servers):
        urls = [f"127.0.0.1:{h.server.port}" for h in cache_servers]
        backend = ShardedCacheBackend(
            urls=urls,
            replicas=2,
            op_timeout=1.0,
            retry_attempts=1,
            backoff_base=0.01,
            backoff_max=0.02,
            breaker_threshold=1,
            breaker_reset_timeout=60.0,
        )
        reference_planner = _fresh_planner()
        request = {"database": "demo", **self.REQUEST}
        reference = reference_planner.execute(reference_planner.plan(request))
        try:
            with backend_scope(backend):
                planner = _fresh_planner()
                before = planner.execute(planner.plan(request))
                # Kill one cache shard mid-run and drop the L1 copies so the
                # next pass exercises the remote failover ladder.
                cache_servers[0].stop()
                for shard in backend.shards:
                    shard._local.clear()
                after = planner.execute(planner.plan(request))
            assert (
                json.dumps(before["answers"])
                == json.dumps(after["answers"])
                == json.dumps(reference["answers"])
            )
            assert before["mean_relative_error"] == reference["mean_relative_error"]
        finally:
            backend.close()


# ----------------------------------------------------------------------
# CLI wiring for the sharded flags
# ----------------------------------------------------------------------
class TestFleetCLIWiring:
    def test_eval_cli_rejects_replicas_without_a_shard_list(self, capsys):
        from repro.evaluation.cli import main as cli_main

        code = cli_main(
            ["--cache-backend", "remote", "--cache-url", "h:1", "--cache-replicas", "2"]
        )
        assert code == 2
        assert "--cache-replicas" in capsys.readouterr().err

    def test_eval_cli_rejects_nonpositive_replicas(self, capsys):
        from repro.evaluation.cli import main as cli_main

        assert cli_main(["--cache-replicas", "0"]) == 2

    def test_serving_main_rejects_replicas_without_a_shard_list(self, capsys):
        from repro.serving.server import main as serve_main

        code = serve_main(
            [
                "--port",
                "0",
                "--cache-backend",
                "remote",
                "--cache-url",
                "h:1",
                "--cache-replicas",
                "2",
            ]
        )
        assert code == 2
        assert "--cache-replicas" in capsys.readouterr().err

    def test_eval_cli_forwards_shard_list_and_replicas_to_serve(self, monkeypatch):
        import repro.serving.server as server_module
        from repro.evaluation.cli import main as cli_main

        captured = {}

        def fake_main(argv):
            captured["argv"] = list(argv)
            return 0

        monkeypatch.setattr(server_module, "main", fake_main)
        code = cli_main(
            [
                "--serve",
                "--cache-backend",
                "remote",
                "--cache-url",
                "h:1,h:2",
                "--cache-replicas",
                "2",
            ]
        )
        assert code == 0
        argv = captured["argv"]
        assert argv[argv.index("--cache-url") + 1] == "h:1,h:2"
        assert argv[argv.index("--cache-replicas") + 1] == "2"

    def test_fleet_main_requires_a_shard(self, capsys):
        from repro.serving.fleet.router import main as fleet_main

        with pytest.raises(SystemExit):
            fleet_main([])  # --shard is required

    def test_fleet_router_rejects_duplicate_shards(self):
        with pytest.raises(ValueError):
            FleetRouter(["h:1", "h:1"])
