"""Privacy budgets and composition accounting.

The paper's mechanisms rely on the two classical composition rules:

* **Sequential composition** — running k mechanisms with budgets ε_1..ε_k on
  the same data costs ε_1 + ... + ε_k (used when the Predicate Mechanism
  splits ε over the n dimension-table predicates, Theorem 5.4, and when R2T
  runs log(GS_Q) truncated trials).
* **Parallel composition** — mechanisms run on disjoint partitions of the
  data compose at max(ε_i) (used by GROUP BY analyses).

:class:`PrivacyBudget` is a small value object; :class:`PrivacyAccountant`
tracks cumulative spend and refuses to exceed the total budget, which the
tests use to assert that every mechanism's internal budget split adds up to
exactly ε.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.exceptions import PrivacyBudgetError

__all__ = ["PrivacyBudget", "PrivacyAccountant", "split_budget"]

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PrivacyBudget:
    """An (ε, δ) privacy budget; δ defaults to 0 (pure DP)."""

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyBudgetError(f"ε must be positive, got {self.epsilon!r}")
        if self.delta < 0 or self.delta >= 1:
            raise PrivacyBudgetError(f"δ must lie in [0, 1), got {self.delta!r}")

    @property
    def is_pure(self) -> bool:
        return self.delta == 0.0

    def split(self, parts: int) -> "PrivacyBudget":
        """Return the per-part budget of an even sequential split into ``parts``."""
        if parts <= 0:
            raise PrivacyBudgetError(f"cannot split a budget into {parts} parts")
        return PrivacyBudget(self.epsilon / parts, self.delta / parts)

    def __mul__(self, factor: float) -> "PrivacyBudget":
        return PrivacyBudget(self.epsilon * factor, self.delta * factor)


def split_budget(epsilon: float, parts: int) -> float:
    """Per-part ε of an even sequential split (``ε_i = ε / n`` in Algorithm 1)."""
    if parts <= 0:
        raise PrivacyBudgetError(f"cannot split a budget into {parts} parts")
    if epsilon <= 0:
        raise PrivacyBudgetError(f"ε must be positive, got {epsilon!r}")
    return epsilon / parts


class PrivacyAccountant:
    """Tracks the cumulative privacy spend of a sequence of mechanism calls."""

    def __init__(self, total: PrivacyBudget):
        self.total = total
        self._spent_epsilon = 0.0
        self._spent_delta = 0.0
        self._ledger: list[tuple[str, PrivacyBudget]] = []

    # ------------------------------------------------------------------
    @property
    def spent_epsilon(self) -> float:
        return self._spent_epsilon

    @property
    def spent_delta(self) -> float:
        return self._spent_delta

    @property
    def remaining_epsilon(self) -> float:
        return max(self.total.epsilon - self._spent_epsilon, 0.0)

    @property
    def ledger(self) -> list[tuple[str, PrivacyBudget]]:
        return list(self._ledger)

    # ------------------------------------------------------------------
    def charge(self, budget: PrivacyBudget, label: str = "mechanism") -> None:
        """Record a sequential-composition charge; refuse to exceed the total."""
        new_epsilon = self._spent_epsilon + budget.epsilon
        new_delta = self._spent_delta + budget.delta
        if new_epsilon > self.total.epsilon + _TOLERANCE:
            raise PrivacyBudgetError(
                f"charging {budget.epsilon:.6g} would exceed the total ε budget "
                f"({new_epsilon:.6g} > {self.total.epsilon:.6g})"
            )
        if new_delta > self.total.delta + _TOLERANCE:
            raise PrivacyBudgetError(
                f"charging δ={budget.delta:.3g} would exceed the total δ budget"
            )
        self._spent_epsilon = new_epsilon
        self._spent_delta = new_delta
        self._ledger.append((label, budget))

    def charge_parallel(self, budgets: Iterable[PrivacyBudget], label: str = "parallel") -> None:
        """Record a parallel-composition charge (cost = max over the partitions)."""
        budgets = list(budgets)
        if not budgets:
            return
        epsilon = max(b.epsilon for b in budgets)
        delta = max(b.delta for b in budgets)
        self.charge(PrivacyBudget(epsilon, delta), label=label)

    def restore_spend(
        self, epsilon: float, delta: float = 0.0, label: str = "restored"
    ) -> None:
        """Reinstall spend replayed from a durable journal.

        Unlike :meth:`charge`, this bypasses the budget cap: the spend
        already happened in a previous process, and a total that was
        *lowered* across a restart must not make historical charges
        unrepresentable — the account simply starts (over-)exhausted.
        Recorded in the ledger under ``label`` when non-zero.
        """
        self._spent_epsilon = max(float(epsilon), 0.0)
        self._spent_delta = max(float(delta), 0.0)
        if self._spent_epsilon > 0 or self._spent_delta > 0:
            # Audit entry only; PrivacyBudget's validity bounds (ε > 0,
            # δ < 1) are kept by clamping, the spend fields above are exact.
            entry = PrivacyBudget(
                max(self._spent_epsilon, 1e-12), min(self._spent_delta, 1.0 - 1e-12)
            )
            self._ledger.append((label, entry))

    def refund(self, budget: PrivacyBudget, label: str = "refund") -> None:
        """Return a charge whose mechanism never released an answer.

        Admission control (the serving ledger) charges *before* executing; if
        the execution then fails without releasing anything — an unsupported
        (mechanism, query) combination, an engine error — the charge is
        returned so the analyst does not pay for an answer they never saw.
        The refund is clamped at zero and recorded in the ledger with a
        ``refund:`` label so the audit trail keeps both movements.
        """
        self._spent_epsilon = max(self._spent_epsilon - budget.epsilon, 0.0)
        self._spent_delta = max(self._spent_delta - budget.delta, 0.0)
        self._ledger.append((f"refund:{label}", budget))

    def assert_exhausted(self, tolerance: float = 1e-6) -> None:
        """Assert that exactly the total ε has been spent (used in tests)."""
        if abs(self._spent_epsilon - self.total.epsilon) > tolerance:
            raise PrivacyBudgetError(
                f"budget not exactly consumed: spent {self._spent_epsilon:.6g} of "
                f"{self.total.epsilon:.6g}"
            )
