"""Figure 4: running time and error of PM, R2T, LS vs data scale (COUNT).

The paper varies the SSB scale factor from 0.25 to 1 and reports, for the
four counting queries Qc1–Qc4, both the error level and the running time of
each mechanism.  The headline observations to reproduce: PM's error barely
changes with the data size (its noise depends only on the predicate domains),
LS's error grows with the data size, and every mechanism's running time grows
roughly linearly, with PM's growth the smallest.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datagen.ssb import ssb_schema
from repro.db.executor import QueryExecutor
from repro.evaluation.experiments.common import ExperimentConfig, PAPER_SCALES, build_ssb_database, cell_seed
from repro.evaluation.reporting import ExperimentResult
from repro.evaluation.runner import evaluate_mechanism, make_star_mechanism
from repro.workloads.ssb_queries import ssb_query

__all__ = ["run", "MECHANISMS", "QUERIES"]

MECHANISMS = ("PM", "R2T", "LS")
QUERIES = ("Qc1", "Qc2", "Qc3", "Qc4")


def run(
    config: Optional[ExperimentConfig] = None,
    scales: Sequence[float] = PAPER_SCALES,
    epsilon: float = 0.5,
    query_names: Sequence[str] = QUERIES,
    mechanisms: Sequence[str] = MECHANISMS,
) -> ExperimentResult:
    """Regenerate Figure 4 (COUNT queries; error and running time vs scale)."""
    config = config or ExperimentConfig()
    schema = ssb_schema()
    result = ExperimentResult(
        title="Figure 4: error level and running time vs data scale (COUNT queries)",
        notes=f"epsilon = {epsilon}, {config.trials} trials per cell.",
    )
    for scale in scales:
        database = build_ssb_database(config, scale_factor=scale, seed_offset=int(scale * 100))
        executor = QueryExecutor(database)
        for query_name in query_names:
            query = ssb_query(query_name, schema)
            exact = executor.execute(query)
            for mechanism_name in mechanisms:
                mechanism = make_star_mechanism(mechanism_name, epsilon, scenario=config.scenario)
                evaluation = evaluate_mechanism(
                    mechanism,
                    database,
                    query,
                    trials=config.trials,
                    rng=config.seed + cell_seed(scale, query_name, mechanism_name),
                    exact_answer=exact,
                )
                result.add_row(
                    scale=scale,
                    query=query_name,
                    mechanism=mechanism_name,
                    relative_error_pct=(
                        None if evaluation.unsupported else evaluation.mean_relative_error
                    ),
                    mean_time_s=None if evaluation.unsupported else evaluation.mean_time,
                    fact_rows=database.num_fact_rows,
                )
    return result
