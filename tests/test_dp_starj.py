"""Tests for the DPStarJoin session facade."""

import pytest

from repro.core.dp_starj import DPStarJoin
from repro.db.executor import GroupedResult
from repro.exceptions import PrivacyBudgetError
from repro.workloads.ssb_queries import ssb_query
from repro.workloads.workload_matrices import workload_w1


class TestSession:
    def test_answer_charges_budget(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0, rng=1)
        session.answer(ssb_query("Qc1"), epsilon=0.4)
        assert session.remaining_epsilon == pytest.approx(0.6)

    def test_budget_exhaustion_is_enforced(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=0.5, rng=1)
        session.answer(ssb_query("Qc1"), epsilon=0.4)
        with pytest.raises(PrivacyBudgetError):
            session.answer(ssb_query("Qc2"), epsilon=0.2)

    def test_default_scenario_marks_all_dimensions_private(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0)
        assert set(session.scenario.private_dimensions) == set(
            ssb_small.schema.dimension_names
        )

    def test_answer_sql_roundtrip(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=2.0, rng=3)
        sql = (
            "SELECT count(*) FROM Date, Lineorder WHERE Lineorder.DK = Date.DK "
            "AND Date.year = 1993"
        )
        answer = session.answer_sql(sql, epsilon=0.5, name="Qc1-sql")
        assert isinstance(answer.value, float)
        assert answer.noisy_query.num_predicates == 1

    def test_exact_answer_matches_executor(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0)
        query = ssb_query("Qc3")
        from repro.db.executor import QueryExecutor

        assert session.exact(query) == QueryExecutor(ssb_small).execute(query)

    def test_exact_is_free_of_charge(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0)
        session.exact(ssb_query("Qc3"))
        assert session.remaining_epsilon == pytest.approx(1.0)

    def test_grouped_answer(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0, rng=5)
        answer = session.answer(ssb_query("Qg2"), epsilon=0.5)
        assert isinstance(answer.value, GroupedResult)

    def test_parse_uses_schema(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0)
        query = session.parse(
            "SELECT count(*) FROM Customer, Lineorder WHERE Customer.region = 'ASIA'",
            name="asia",
        )
        assert query.name == "asia"
        assert query.num_predicates == 1


class TestWorkloadEntryPoint:
    def test_workload_with_decomposition(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=2.0, rng=7)
        queries = workload_w1()
        answer = session.answer_workload(queries, epsilon=1.0, use_decomposition=True)
        assert answer.values.shape == (len(queries),)
        assert answer.strategies  # WD records the chosen strategies
        assert session.remaining_epsilon == pytest.approx(1.0)

    def test_workload_with_independent_pm(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=2.0, rng=9)
        queries = workload_w1()
        answer = session.answer_workload(queries, epsilon=1.0, use_decomposition=False)
        assert answer.values.shape == (len(queries),)
        assert answer.strategies == {}

    def test_exact_workload(self, ssb_small):
        session = DPStarJoin(ssb_small, total_epsilon=1.0)
        queries = workload_w1()
        exact = session.exact_workload(queries)
        assert exact.shape == (len(queries),)
        assert (exact >= 0).all()
