"""Unit tests for StarDatabase navigation and fan-out statistics."""

import numpy as np
import pytest

from repro.db.database import StarDatabase
from repro.db.predicates import PointPredicate, RangePredicate
from repro.db.table import Column, Table
from repro.exceptions import SchemaError


class TestValidation:
    def test_fact_name_must_match_schema(self, tiny_db):
        renamed = Table(
            "WrongName",
            [tiny_db.fact.column(name) for name in tiny_db.fact.column_names],
        )
        with pytest.raises(SchemaError):
            StarDatabase(tiny_db.schema, renamed, tiny_db.dimensions)

    def test_missing_dimension_rejected(self, tiny_db):
        with pytest.raises(SchemaError):
            StarDatabase(tiny_db.schema, tiny_db.fact, {"Color": tiny_db.dimension("Color")})

    def test_foreign_key_out_of_range_rejected(self, tiny_db):
        bad_fact = Table(
            "Sales",
            [
                Column("ColorKey", np.array([0, 99])),
                Column("SizeKey", np.array([0, 1])),
                Column("amount", np.array([1.0, 2.0])),
            ],
        )
        with pytest.raises(SchemaError):
            StarDatabase(tiny_db.schema, bad_fact, tiny_db.dimensions)


class TestAccessors:
    def test_sizes(self, tiny_db):
        assert tiny_db.num_fact_rows == 12
        assert tiny_db.size == 12 + 6 + 4

    def test_dimension_lookup(self, tiny_db):
        assert tiny_db.dimension("Color").num_rows == 6
        with pytest.raises(SchemaError):
            tiny_db.dimension("Ghost")

    def test_table_lookup_includes_fact(self, tiny_db):
        assert tiny_db.table("Sales").name == "Sales"
        assert tiny_db.table("Size").name == "Size"

    def test_fact_foreign_key_codes(self, tiny_db):
        codes = tiny_db.fact_foreign_key_codes("Color")
        assert list(codes) == list(np.arange(12) % 6)


class TestNavigation:
    def test_dimension_mask(self, tiny_db):
        color_domain = tiny_db.dimension("Color").domain("color")
        predicate = PointPredicate("Color", "color", color_domain, value="red")
        mask = tiny_db.dimension_mask(predicate)
        assert list(mask) == [True, True, False, False, False, False]

    def test_fact_mask_for_dimension_mask(self, tiny_db):
        dim_mask = np.array([True, False, False, False, False, False])
        fact_mask = tiny_db.fact_mask_for_dimension_mask("Color", dim_mask)
        # Fact ColorKey cycles 0..5, so rows 0 and 6 reference colour row 0.
        assert list(np.flatnonzero(fact_mask)) == [0, 6]

    def test_fact_mask_for_predicate(self, tiny_db):
        color_domain = tiny_db.dimension("Color").domain("color")
        predicate = PointPredicate("Color", "color", color_domain, value="red")
        fact_mask = tiny_db.fact_mask_for_predicate(predicate)
        # Colour rows 0 and 1 are red; fact rows referencing them: 0,6,1,7.
        assert sorted(np.flatnonzero(fact_mask)) == [0, 1, 6, 7]

    def test_fact_mask_for_fact_attribute_predicate(self, tiny_db):
        # Predicates on the fact table itself evaluate directly; the tiny fact
        # table has no dictionary-encoded attributes, so use a dimension
        # attribute check instead via the Size table.
        size_domain = tiny_db.dimension("Size").domain("size")
        predicate = RangePredicate("Size", "size", size_domain, low=1, high=2)
        fact_mask = tiny_db.fact_mask_for_predicate(predicate)
        # Size rows 0 (size 1) and 1 (size 2); fact SizeKey cycles 0..3.
        assert int(fact_mask.sum()) == 6


class TestFanOut:
    def test_fan_out_counts_references(self, tiny_db):
        counts = tiny_db.fan_out("Color")
        assert list(counts) == [2, 2, 2, 2, 2, 2]
        assert tiny_db.max_fan_out("Color") == 2

    def test_fan_out_with_mask(self, tiny_db):
        mask = np.zeros(12, dtype=bool)
        mask[:6] = True
        counts = tiny_db.fan_out("Color", fact_mask=mask)
        assert list(counts) == [1, 1, 1, 1, 1, 1]

    def test_fan_out_size_dimension(self, tiny_db):
        counts = tiny_db.fan_out("Size")
        assert list(counts) == [3, 3, 3, 3]
        assert tiny_db.max_fan_out("Size") == 3


class TestSnowflakeResolution:
    def test_resolve_direct_dimension_is_identity(self, tiny_db):
        mask = np.array([True] * 6)
        name, resolved = tiny_db.resolve_to_direct_dimension("Color", mask)
        assert name == "Color"
        assert list(resolved) == list(mask)

    def test_resolve_month_to_date(self, snowflake_small):
        month_table = snowflake_small.dimension("Month")
        month_domain = month_table.domain("month")
        predicate = PointPredicate("Month", "month", month_domain, value=1)
        month_mask = snowflake_small.dimension_mask(predicate)
        name, date_mask = snowflake_small.resolve_to_direct_dimension("Month", month_mask)
        assert name == "Date"
        assert date_mask.shape[0] == snowflake_small.dimension("Date").num_rows
        # January days exist in every year.
        assert date_mask.sum() > 0

    def test_unreachable_table_raises(self, tiny_db):
        with pytest.raises(SchemaError):
            tiny_db.resolve_to_direct_dimension("Ghost", np.array([True]))
