"""The column-store seam: where table bytes live and how kernels read them.

A :class:`ColumnStore` owns the physical bytes of one table's columns and
exposes exactly two read paths:

* :meth:`ColumnStore.array` — the whole column as one array.  The in-memory
  store returns the array it owns; the mapped store returns a read-only
  ``numpy.memmap`` (lazy: the file is only mapped when the column is first
  requested, and pages are only read when touched).
* :meth:`ColumnStore.read_chunk` — a half-open row range ``[start, stop)`` of
  one column.  The in-memory store returns a view; the mapped store performs a
  plain positioned file read (``np.fromfile``) with **no persistent mapping**,
  so a streaming kernel's address-space footprint stays at one chunk buffer
  regardless of the column's size.  This is what lets the out-of-core demo run
  under a hard ``RLIMIT_AS`` cap smaller than the data.

The chunked :class:`~repro.db.engine.ExecutionEngine` kernels consume
``read_chunk`` through :func:`iter_chunks` and never materialise a mapped fact
column; everything else (``Table.codes``, the reference join, filters)
continues to see whole arrays through ``array``.  See ``docs/STORAGE.md``.
"""

from __future__ import annotations

import abc
from typing import Iterator, Mapping, Optional

import numpy as np

from repro.exceptions import SchemaError

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "ColumnStore",
    "MemoryColumnStore",
    "iter_chunks",
]

#: Default row-chunk size of the streaming kernels: 256 Ki rows = 2 MiB per
#: int64/float64 chunk buffer — large enough that per-chunk numpy dispatch
#: overhead is negligible, small enough that a handful of in-flight chunk
#: buffers never threatens a memory cap.
DEFAULT_CHUNK_ROWS = 1 << 18


def iter_chunks(num_rows: int, chunk_rows: Optional[int]) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` half-open row ranges covering ``[0, num_rows)``.

    ``chunk_rows=None`` yields the single full range (the unchunked reference
    behaviour); every kernel that is bit-exact per chunk is therefore also
    bit-exact against its pre-chunking implementation by construction.
    """
    if num_rows < 0:
        raise ValueError(f"num_rows must be non-negative, got {num_rows}")
    if chunk_rows is None or chunk_rows >= num_rows:
        yield 0, num_rows
        return
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be at least 1, got {chunk_rows}")
    for start in range(0, num_rows, chunk_rows):
        yield start, min(start + chunk_rows, num_rows)


class ColumnStore(abc.ABC):
    """Physical storage of one table's equally sized columns."""

    #: Storage kind label (``"memory"`` / ``"mapped"``), for introspection.
    kind: str = "abstract"

    @property
    @abc.abstractmethod
    def num_rows(self) -> int:
        """Number of rows every column has."""

    @property
    @abc.abstractmethod
    def column_names(self) -> list[str]:
        """Column names, in table order."""

    @abc.abstractmethod
    def array(self, name: str) -> np.ndarray:
        """The whole column (in-memory array, or a lazy read-only memmap)."""

    @abc.abstractmethod
    def read_chunk(self, name: str, start: int, stop: int) -> np.ndarray:
        """Rows ``[start, stop)`` of column ``name``.

        May return a view (in-memory) or a freshly read buffer (mapped);
        callers must treat the result as read-only scratch for one chunk.
        """

    @abc.abstractmethod
    def dtype(self, name: str) -> np.dtype:
        """Dtype of column ``name`` (without reading any data)."""

    def digest(self) -> Optional[str]:
        """A precomputed content digest of the table, if the store carries one.

        The mapped store returns the digest recorded in its manifest at spill
        time so attaching never has to re-hash the files; stores without a
        trustworthy precomputed digest return ``None`` and the table hashes
        its bytes as usual.
        """
        return None

    def _unknown_column(self, name: str) -> SchemaError:
        return SchemaError(
            f"{self.kind} column store has no column {name!r}; "
            f"available: {self.column_names}"
        )


class MemoryColumnStore(ColumnStore):
    """The default store: eager in-memory arrays (zero behaviour change)."""

    kind = "memory"

    def __init__(self, arrays: Mapping[str, np.ndarray]):
        if not arrays:
            raise SchemaError("a column store needs at least one column")
        self._arrays: dict[str, np.ndarray] = {
            name: np.asarray(values) for name, values in arrays.items()
        }
        lengths = {array.shape[0] for array in self._arrays.values()}
        if len(lengths) != 1:
            raise SchemaError(
                f"column store has columns of differing lengths: {sorted(lengths)}"
            )
        self._num_rows = lengths.pop()

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def column_names(self) -> list[str]:
        return list(self._arrays)

    def array(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise self._unknown_column(name) from None

    def read_chunk(self, name: str, start: int, stop: int) -> np.ndarray:
        return self.array(name)[start:stop]

    def dtype(self, name: str) -> np.dtype:
        return self.array(name).dtype

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryColumnStore(rows={self._num_rows}, columns={self.column_names})"
